// Training / prediction throughput for the hot classifiers (J48, MLR,
// IBk, MLP) on a synthetic 50k-row dataset shaped like the thesis data
// (16 features, 6 classes). Unlike the figure benches this one does not
// collect the HPC dataset — it exists to track the cost of the training
// inner loops across perf PRs, so it must be cheap, deterministic and
// dependency-free.
//
// Emits BENCH_throughput.json (rows/sec train + predict, serial and
// pooled) in the working directory and mirrors the numbers as [bench]
// lines for CI greps.
//
// Scale knobs (environment):
//   HMD_TPUT_ROWS     dataset rows            (default 50000)
//   HMD_TPUT_PREDICT  rows scored per predict (default 2048)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "ml/dataset.hpp"
#include "ml/j48.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0')
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 6;

/// Gaussian blobs in the thesis dataset's shape; deterministic in `seed`.
ml::Dataset synthetic_dataset(std::size_t rows, std::uint64_t seed) {
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kFeatures; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  std::vector<std::string> names;
  for (std::size_t c = 0; c < kClasses; ++c)
    names.push_back("c" + std::to_string(c));
  attrs.emplace_back("class", names);
  ml::Dataset data(std::move(attrs), "throughput_blobs");
  Rng rng(seed);
  const std::size_t per_class = rows / kClasses;
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ml::Instance row;
      for (std::size_t f = 0; f < kFeatures; ++f)
        row.values.push_back(
            rng.normal(2.0 * static_cast<double>((c + f) % kClasses), 1.5));
      row.values.push_back(static_cast<double>(c));
      data.add(std::move(row));
    }
  }
  return data;
}

struct SchemeResult {
  std::string scheme;
  double train_serial = 0.0;    ///< rows/sec
  double train_pooled = 0.0;    ///< rows/sec (aggregate across pool)
  double predict_serial = 0.0;  ///< rows/sec
  double predict_pooled = 0.0;  ///< rows/sec (aggregate across pool)
};

using Factory = std::unique_ptr<ml::Classifier> (*)();

/// Serial + pooled train and predict throughput for one scheme. Pooled
/// train runs `pool.size()` independent trainings concurrently (aggregate
/// throughput); pooled predict fans chunks of the scoring slice across the
/// pool. Predictions are summed into a checksum so the work cannot be
/// optimized away.
SchemeResult run_scheme(const std::string& scheme, Factory make,
                        const ml::Dataset& train, const ml::Dataset& test,
                        std::size_t predict_rows, ThreadPool& pool) {
  SchemeResult r;
  r.scheme = scheme;
  const auto n_train = static_cast<double>(train.num_instances());
  predict_rows = std::min(predict_rows, test.num_instances());

  std::unique_ptr<ml::Classifier> model;
  {
    TraceSpan t("tput/" + scheme + "/train_serial");
    model = make();
    model->train(train);
    r.train_serial = n_train / t.elapsed_seconds();
  }
  {
    const std::size_t jobs = pool.size();
    std::vector<std::unique_ptr<ml::Classifier>> models(jobs);
    TraceSpan t("tput/" + scheme + "/train_pooled");
    parallel_for(&pool, jobs, [&](std::size_t j) {
      models[j] = make();
      models[j]->train(train);
    });
    r.train_pooled =
        n_train * static_cast<double>(jobs) / t.elapsed_seconds();
  }

  std::size_t checksum = 0;
  {
    TraceSpan t("tput/" + scheme + "/predict_serial");
    for (std::size_t i = 0; i < predict_rows; ++i)
      checksum += model->predict(test.features_of(i));
    r.predict_serial = static_cast<double>(predict_rows) / t.elapsed_seconds();
  }
  {
    constexpr std::size_t kChunk = 256;
    const std::size_t chunks = (predict_rows + kChunk - 1) / kChunk;
    std::vector<std::size_t> sums(chunks, 0);
    TraceSpan t("tput/" + scheme + "/predict_pooled");
    parallel_for(&pool, chunks, [&](std::size_t c) {
      const std::size_t hi = std::min(predict_rows, (c + 1) * kChunk);
      for (std::size_t i = c * kChunk; i < hi; ++i)
        sums[c] += model->predict(test.features_of(i));
    });
    r.predict_pooled = static_cast<double>(predict_rows) / t.elapsed_seconds();
    for (std::size_t s : sums) checksum += s;
  }

  std::fprintf(stderr,
               "[bench] throughput %-4s train %9.0f rows/s serial %9.0f "
               "pooled | predict %9.0f rows/s serial %9.0f pooled "
               "(checksum %zu)\n",
               scheme.c_str(), r.train_serial, r.train_pooled,
               r.predict_serial, r.predict_pooled, checksum);
  return r;
}

void write_json(const std::string& path, std::size_t rows,
                std::size_t train_rows, std::size_t predict_rows,
                std::size_t jobs, const std::vector<SchemeResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"metadata\": " << bench::metadata_json("  ").substr(2) << ",\n"
      << "  \"rows\": " << rows << ",\n"
      << "  \"features\": " << kFeatures << ",\n"
      << "  \"classes\": " << kClasses << ",\n"
      << "  \"train_rows\": " << train_rows << ",\n"
      << "  \"predict_rows\": " << predict_rows << ",\n"
      << "  \"pool_jobs\": " << jobs << ",\n"
      << "  \"schemes\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SchemeResult& r = results[i];
    out << "    \"" << r.scheme << "\": {\n"
        << "      \"train_rows_per_s\": {\"serial\": " << r.train_serial
        << ", \"pooled\": " << r.train_pooled << "},\n"
        << "      \"predict_rows_per_s\": {\"serial\": " << r.predict_serial
        << ", \"pooled\": " << r.predict_pooled << "}\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  bench::init_observability();
  const std::size_t rows = env_or("HMD_TPUT_ROWS", 50000);
  const std::size_t predict_rows = env_or("HMD_TPUT_PREDICT", 2048);

  const ml::Dataset data = synthetic_dataset(rows, 7);
  Rng split_rng(42);
  const auto [train, test] = data.stratified_split(0.7, split_rng);
  ThreadPool& pool = bench::bench_pool();
  std::fprintf(stderr,
               "[bench] throughput dataset: %zu rows (%zu train / %zu test), "
               "%zu features, %zu classes, %zu pool jobs\n",
               data.num_instances(), train.num_instances(),
               test.num_instances(), kFeatures, kClasses, pool.size());

  // Bench-sized iteration budgets for the gradient schemes: enough work to
  // measure the inner loops, small enough for a CI smoke run.
  const std::vector<std::pair<std::string, Factory>> schemes = {
      {"J48", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::J48>();
       }},
      {"MLR", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::Logistic>(
             ml::Logistic::Params{.iterations = 100});
       }},
      {"IBk", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::Knn>(5);
       }},
      {"MLP", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::Mlp>(ml::Mlp::Params{.epochs = 6});
       }},
  };

  std::vector<SchemeResult> results;
  for (const auto& [scheme, make] : schemes)
    results.push_back(
        run_scheme(scheme, make, train, test, predict_rows, pool));

  const std::string path = "BENCH_throughput.json";
  write_json(path, data.num_instances(), train.num_instances(),
             std::min(predict_rows, test.num_instances()), pool.size(),
             results);
  std::fprintf(stderr, "[bench] throughput results written to %s\n",
               path.c_str());
  return 0;
}
