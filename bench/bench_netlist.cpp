// Netlist pipeline bench: compiles every RTL-capable scheme through
// hw::compile(), scores the held-out split on the cycle-accurate
// NetlistSimulator, and writes BENCH_netlist.json.
//
// Three families of numbers per scheme:
//   - fidelity: simulator decisions vs the QuantizedModel Q16.16 reference
//     on the same input grid. Bit-identity is a hard gate for the
//     rtl_exact schemes (non-zero exit on any mismatch); the LUT-ROM
//     schemes (NaiveBayes, MLP) report an agreement rate instead.
//   - hardware: measured cycles/window and area from CompiledDesign's
//     report() next to the old analytic lower_classifier + synthesize
//     estimate the netlist numbers replaced.
//   - software: simulator throughput in windows/s (how fast the
//     interpreter itself scores, relevant for the serve fpga tier).
//
// Scale knobs (environment):
//   HMD_NETLIST_ROWS  held-out rows scored per scheme (default 2000)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "hw/lowering.hpp"
#include "hw/netlist_sim.hpp"
#include "hw/synthesis.hpp"
#include "ml/dataset.hpp"
#include "ml/quantized.hpp"
#include "ml/registry.hpp"

namespace {

using namespace hmd;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0')
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

/// Aliasing shared_ptr: lets QuantizedModel borrow a stack-owned model.
std::shared_ptr<const ml::Classifier> borrow(const ml::Classifier& c) {
  return {std::shared_ptr<const ml::Classifier>(), &c};
}

struct SchemeResult {
  std::string scheme;
  bool exact = false;          ///< in ml::rtl_exact_schemes()
  std::size_t nets = 0;
  std::size_t rows = 0;        ///< held-out rows scored
  std::size_t mismatches = 0;  ///< sim vs Q16 reference decisions
  double agreement = 1.0;
  // Measured (netlist) vs analytic (lower + synthesize) hardware numbers.
  std::uint32_t cycles_per_window = 0;
  double latency_us = 0.0;
  double area_slices = 0.0;
  std::uint32_t analytic_latency_cycles = 0;
  double analytic_area_slices = 0.0;
  double sim_windows_per_s = 0.0;  ///< software interpreter throughput
};

SchemeResult run_scheme(const std::string& scheme, const ml::Dataset& train,
                        const ml::Dataset& test, std::size_t max_rows,
                        const std::vector<std::string>& exact_set) {
  SchemeResult r;
  r.scheme = scheme;
  for (const std::string& e : exact_set) r.exact = r.exact || e == scheme;

  auto clf = ml::make_classifier(scheme);
  clf->train(train);

  hw::CompileOptions opts;
  opts.num_features = train.num_features();
  opts.feature_absmax = hw::calibrate_feature_absmax(test);
  const hw::CompiledDesign design = hw::compile(*clf, std::move(opts));
  const hw::NetlistSimulator sim(design);
  const hw::SynthesisReport measured = design.report();

  // The estimate this pipeline replaced: schedule the analytic dataflow
  // graph with full spatial parallelism at the same 100 MHz clock.
  const hw::DataflowGraph graph =
      hw::lower_classifier(*clf, train.num_features());
  const hw::SynthesisReport analytic = hw::synthesize(graph, scheme);

  r.nets = design.netlist().num_nodes();
  r.cycles_per_window = measured.latency_cycles;
  r.latency_us = measured.latency_us();
  r.area_slices = measured.area_slices();
  r.analytic_latency_cycles = analytic.latency_cycles;
  r.analytic_area_slices = analytic.area_slices();

  // Fidelity: the simulator vs the QuantizedModel reference on the SAME
  // Q16.16 input grid (both quantize with the calibrated absmax).
  const ml::QuantizedModel reference(borrow(*clf),
                                     ml::QuantizedModel::Mode::kQ16Input,
                                     hw::calibrate_feature_absmax(test));
  r.rows = std::min(max_rows, test.num_instances());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < r.rows; ++i) {
    const auto row = test.features_of(i);
    if (sim.run(row) != reference.predict(row)) ++r.mismatches;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.sim_windows_per_s =
      secs > 0.0 ? static_cast<double>(r.rows) / secs : 0.0;
  r.agreement = r.rows == 0
                    ? 1.0
                    : 1.0 - static_cast<double>(r.mismatches) /
                                static_cast<double>(r.rows);
  return r;
}

void write_json(const std::string& path, std::size_t train_rows,
                std::size_t test_rows, const std::vector<SchemeResult>& rs) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"metadata\": " << bench::metadata_json("  ").substr(2) << ",\n"
      << "  \"train_rows\": " << train_rows << ",\n"
      << "  \"test_rows\": " << test_rows << ",\n"
      << "  \"clock_mhz\": 100.0,\n"
      << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const SchemeResult& r = rs[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"scheme\": \"%s\", \"exact\": %s, \"nets\": %zu, "
        "\"rows\": %zu, \"mismatches\": %zu, \"agreement\": %.6f, "
        "\"cycles_per_window\": %u, \"latency_us\": %.4f, "
        "\"area_slices\": %.2f, \"analytic_latency_cycles\": %u, "
        "\"analytic_area_slices\": %.2f, \"sim_windows_per_s\": %.0f}%s\n",
        r.scheme.c_str(), r.exact ? "true" : "false", r.nets, r.rows,
        r.mismatches, r.agreement, r.cycles_per_window, r.latency_us,
        r.area_slices, r.analytic_latency_cycles, r.analytic_area_slices,
        r.sim_windows_per_s, i + 1 < rs.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main() {
  bench::print_banner("netlist pipeline (hw::compile + simulator)");
  const auto [train, test] = bench::binary_split();
  const std::size_t max_rows = env_or("HMD_NETLIST_ROWS", 2000);
  const std::vector<std::string> exact_set = ml::rtl_exact_schemes();

  std::printf("%-14s %6s %8s %10s %10s %12s %10s\n", "scheme", "nets",
              "cycles", "area", "analytic", "sim win/s", "agreement");
  std::vector<SchemeResult> results;
  for (const std::string& scheme : ml::rtl_schemes()) {
    SchemeResult r = run_scheme(scheme, train, test, max_rows, exact_set);
    std::printf("%-14s %6zu %8u %10.1f %10.1f %12.0f %10.4f\n",
                r.scheme.c_str(), r.nets, r.cycles_per_window, r.area_slices,
                r.analytic_area_slices, r.sim_windows_per_s, r.agreement);
    std::fprintf(stderr,
                 "[bench] netlist %-14s nets=%zu cycles/window=%u "
                 "latency=%.3fus area=%.1f (analytic %.1f) sim=%.0f win/s "
                 "rows=%zu mismatches=%zu%s\n",
                 r.scheme.c_str(), r.nets, r.cycles_per_window, r.latency_us,
                 r.area_slices, r.analytic_area_slices, r.sim_windows_per_s,
                 r.rows, r.mismatches, r.exact ? " [exact gate]" : "");
    results.push_back(std::move(r));
  }

  const std::string path = "BENCH_netlist.json";
  write_json(path, train.num_instances(), test.num_instances(), results);
  std::fprintf(stderr, "[bench] netlist results written to %s\n",
               path.c_str());

  // Hard gate: for the rtl_exact schemes, the simulated netlist must be
  // bit-identical to the fixed-point reference on every scored row. CI
  // treats a non-zero exit as a regression.
  bool ok = true;
  for (const SchemeResult& r : results) {
    if (r.exact && r.mismatches != 0) {
      ok = false;
      std::fprintf(stderr,
                   "[bench] ERROR: %s simulator diverged from the Q16.16 "
                   "reference on %zu/%zu rows\n",
                   r.scheme.c_str(), r.mismatches, r.rows);
    }
  }
  return ok ? 0 : 1;
}
