// Figure 16: Accuracy/Area comparison — the thesis's headline efficiency
// metric. Paper shape: JRip and OneR dominate; the MLP's accuracy edge is
// dwarfed by its area, especially after PCA feature reduction.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig16() {
  bench::print_banner("Figure 16: Accuracy/Area comparison");
  const bench::BinaryStudyResults& r = bench::binary_study_results();

  TextTable table("accuracy %% per slice-equivalent (higher is better)");
  table.set_header({"classifier", "16 feat", "8 feat", "4 feat",
                    "power mW (16)"});
  for (std::size_t i = 0; i < r.full.size(); ++i) {
    table.add_row(
        {r.full[i].scheme,
         format("%.4f", r.full[i].accuracy_per_slice() * 100.0),
         format("%.4f", r.top8[i].accuracy_per_slice() * 100.0),
         format("%.4f", r.top4[i].accuracy_per_slice() * 100.0),
         format("%.3f", r.full[i].synthesis.total_power_mw())});
  }
  table.print(std::cout);

  // Ranking at 4 features — the embedded-deployment sweet spot.
  std::vector<std::pair<double, std::string>> ranking;
  for (const auto& row : r.top4)
    ranking.emplace_back(row.accuracy_per_slice(), row.scheme);
  std::sort(ranking.rbegin(), ranking.rend());
  std::cout << "efficiency ranking at 4 features: ";
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (i) std::cout << " > ";
    std::cout << ranking[i].second;
  }
  std::cout << "\n";
}

void BM_FullStudyRowEvaluation(benchmark::State& state) {
  // Evaluate an already-trained accuracy/area row: test-set pass + synth.
  const auto& [train, test] = bench::binary_split();
  const core::BinaryStudy study(train, test);
  for (auto _ : state) {
    auto rows = study.run({"OneR"});
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FullStudyRowEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig16();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
