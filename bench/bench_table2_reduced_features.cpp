// Table 2: Reduced features from PCA — 4 features common to all malware
// classes plus each class's custom 8-feature set (4 common + class-specific
// principal features).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_table2() {
  bench::print_banner("Table 2: Reduced features from PCA");
  const core::FeatureReducer& reducer = bench::feature_reducer();
  const core::ReducedFeatureTable table = reducer.reduced_table(4, 8);

  TextTable common("Common features (high PCA rank for every class)");
  common.set_header({"#", "feature"});
  for (std::size_t i = 0; i < table.common.names.size(); ++i)
    common.add_row({std::to_string(i + 1), table.common.names[i]});
  common.print(std::cout);

  TextTable custom("Custom 8-feature set per malware class");
  std::vector<std::string> header = {"rank"};
  for (const auto& [cls, fs] : table.custom)
    header.emplace_back(workload::app_class_name(cls));
  custom.set_header(header);
  for (std::size_t rank = 0; rank < 8; ++rank) {
    std::vector<std::string> row = {std::to_string(rank + 1)};
    for (const auto& [cls, fs] : table.custom) {
      std::string name = fs.names[rank];
      // Mark features shared with the common set, as Table 2 groups them.
      if (std::find(table.common.names.begin(), table.common.names.end(),
                    name) != table.common.names.end())
        name += " *";
      row.push_back(std::move(name));
    }
    custom.add_row(row);
  }
  custom.print(std::cout);
  std::cout << "(* = one of the common features)\n";
}

void BM_ReducedTable(benchmark::State& state) {
  const core::FeatureReducer& reducer = bench::feature_reducer();
  for (auto _ : state) {
    auto table = reducer.reduced_table(4, 8);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_ReducedTable)->Unit(benchmark::kMillisecond);

void BM_RankOneClass(benchmark::State& state) {
  const core::FeatureReducer& reducer = bench::feature_reducer();
  for (auto _ : state) {
    auto ranked = reducer.rank_for_class(workload::AppClass::kTrojan);
    benchmark::DoNotOptimize(ranked);
  }
}
BENCHMARK(BM_RankOneClass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
