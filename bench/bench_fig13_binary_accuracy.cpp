// Figure 13: Accuracy comparison for binary (malware vs benign)
// classification — each classifier at 16 (all), 8 and 4 PCA-selected
// features. Paper shape: most classifiers lose accuracy with fewer
// features, while J48/OneR barely move.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

/// Times the Fig. 13 classifier sweep serial vs pooled and logs the
/// wall-clock speedup (the parallel engine's acceptance metric; expect
/// >= 3x on a 4+-core machine, bounded by the slowest scheme, MLP).
void log_sweep_speedup() {
  const auto& [train, test] = bench::binary_split();
  const core::BinaryStudy study(train, test);
  const auto schemes = ml::binary_study_classifiers();
  ThreadPool& pool = bench::bench_pool();

  const auto time_run = [&](ThreadPool* p) {
    TraceSpan timer(p == nullptr ? "fig13/sweep_serial"
                                 : "fig13/sweep_parallel");
    const auto rows = study.run(schemes, nullptr, p);
    return std::pair{timer.elapsed_seconds(), rows};
  };
  const auto [serial_s, serial_rows] = time_run(nullptr);
  const auto [parallel_s, parallel_rows] = time_run(&pool);

  bool identical = serial_rows.size() == parallel_rows.size();
  for (std::size_t i = 0; identical && i < serial_rows.size(); ++i)
    identical = serial_rows[i].scheme == parallel_rows[i].scheme &&
                serial_rows[i].accuracy() == parallel_rows[i].accuracy();
  std::fprintf(stderr,
               "[bench] fig13 sweep: serial %.2f s, %zu jobs %.2f s -> "
               "%.2fx speedup, results %s\n",
               serial_s, pool.size(), parallel_s,
               parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
               identical ? "bit-identical" : "DIVERGED");
}

void print_fig13() {
  bench::print_banner("Figure 13: Binary classification accuracy");
  const bench::BinaryStudyResults& r = bench::binary_study_results();

  TextTable table("accuracy (%) vs number of features");
  table.set_header({"classifier", "16 features", "8 features", "4 features",
                    "drop 16->4 (pp)"});
  for (std::size_t i = 0; i < r.full.size(); ++i) {
    table.add_row(
        {r.full[i].scheme, format("%.2f", r.full[i].accuracy() * 100.0),
         format("%.2f", r.top8[i].accuracy() * 100.0),
         format("%.2f", r.top4[i].accuracy() * 100.0),
         format("%+.2f",
                (r.top4[i].accuracy() - r.full[i].accuracy()) * 100.0)});
  }
  table.print(std::cout);
}

void BM_PredictThroughput(benchmark::State& state,
                          const std::string& scheme) {
  const auto& [train, test] = bench::binary_split();
  auto clf = ml::make_classifier(scheme);
  clf->train(train);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clf->predict(test.features_of(i++ % test.num_instances())));
  }
}

void BM_TrainOneR(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("OneR");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainOneR)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_PredictThroughput, OneR, std::string("OneR"));
BENCHMARK_CAPTURE(BM_PredictThroughput, J48, std::string("J48"));
BENCHMARK_CAPTURE(BM_PredictThroughput, MLP, std::string("MLP"));

}  // namespace

int main(int argc, char** argv) {
  print_fig13();
  log_sweep_speedup();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
