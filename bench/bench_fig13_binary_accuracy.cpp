// Figure 13: Accuracy comparison for binary (malware vs benign)
// classification — each classifier at 16 (all), 8 and 4 PCA-selected
// features. Paper shape: most classifiers lose accuracy with fewer
// features, while J48/OneR barely move.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig13() {
  bench::print_banner("Figure 13: Binary classification accuracy");
  const bench::BinaryStudyResults& r = bench::binary_study_results();

  TextTable table("accuracy (%) vs number of features");
  table.set_header({"classifier", "16 features", "8 features", "4 features",
                    "drop 16->4 (pp)"});
  for (std::size_t i = 0; i < r.full.size(); ++i) {
    table.add_row({r.full[i].scheme,
                   format("%.2f", r.full[i].accuracy * 100.0),
                   format("%.2f", r.top8[i].accuracy * 100.0),
                   format("%.2f", r.top4[i].accuracy * 100.0),
                   format("%+.2f", (r.top4[i].accuracy - r.full[i].accuracy) *
                                       100.0)});
  }
  table.print(std::cout);
}

void BM_PredictThroughput(benchmark::State& state,
                          const std::string& scheme) {
  const auto& [train, test] = bench::binary_split();
  auto clf = ml::make_classifier(scheme);
  clf->train(train);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clf->predict(test.features_of(i++ % test.num_instances())));
  }
}

void BM_TrainOneR(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("OneR");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainOneR)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_PredictThroughput, OneR, std::string("OneR"));
BENCHMARK_CAPTURE(BM_PredictThroughput, J48, std::string("J48"));
BENCHMARK_CAPTURE(BM_PredictThroughput, MLP, std::string("MLP"));

}  // namespace

int main(int argc, char** argv) {
  print_fig13();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
