// Scoring-path throughput for the serving-critical predict loops:
//
//  * IBk — the plain brute-force scan (every acceleration hook off) vs
//    the int16-screened scan vs the KD-tree index built at train time.
//    All three paths are bit-identical by contract; this bench pins that
//    with a prediction/distribution fingerprint and reports the indexed
//    speedup over the brute path (target: >= 5x at thesis-shaped
//    dimensionality) plus the screened intermediate.
//  * MLR / SVM / MLP — per-row distribution() vs one distribution_batch
//    call routed through the runtime-dispatched GEMM kernels (target:
//    >= 2x, bit-identical).
//  * int8 / q16 low-latency tiers — batch rows/s of the int8 path plus
//    the accuracy delta of both quantized tiers vs float on the held-out
//    slice, per scheme.
//
// Emits BENCH_batch_scoring.json (with build/CPU provenance metadata) in
// the working directory and mirrors the numbers as [bench] lines for CI
// greps. Cheap, deterministic, dependency-free — no HPC collection pass.
//
// Scale knobs (environment):
//   HMD_BATCH_ROWS     dataset rows            (default 40000)
//   HMD_BATCH_PREDICT  rows scored per timing  (default 4096)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "ml/dataset.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/quantized.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0')
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

constexpr std::size_t kFeatures = 16;
constexpr std::size_t kClasses = 6;

/// IBk predict throughput recorded by bench_train_throughput in the PR 3
/// run that introduced the screened brute scan (BENCH_throughput.json,
/// same dataset shape and container class). The KD-tree index's headline
/// speedup is reported against this fixed reference, not the same-run
/// brute pass, so the JSON tracks the cross-PR trajectory.
constexpr double kPr3IbkBaselineRowsPerS = 11622.0;

/// Gaussian blobs in the thesis dataset's shape; deterministic in `seed`.
/// Same generator as bench_train_throughput so the rows/s numbers are
/// comparable across the two benches.
ml::Dataset synthetic_dataset(std::size_t rows, std::uint64_t seed) {
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kFeatures; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  std::vector<std::string> names;
  for (std::size_t c = 0; c < kClasses; ++c)
    names.push_back("c" + std::to_string(c));
  attrs.emplace_back("class", names);
  ml::Dataset data(std::move(attrs), "batch_scoring_blobs");
  Rng rng(seed);
  const std::size_t per_class = rows / kClasses;
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ml::Instance row;
      for (std::size_t f = 0; f < kFeatures; ++f)
        row.values.push_back(
            rng.normal(2.0 * static_cast<double>((c + f) % kClasses), 1.5));
      row.values.push_back(static_cast<double>(c));
      data.add(std::move(row));
    }
  }
  return data;
}

// -- FNV-1a over prediction indices and distribution bit patterns, so
//    "bit_identical" below means exactly that.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t fnv_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return fnv_mix(h, bits);
}

/// Scoring pass: fingerprint of every row's argmax + distribution bits
/// (computed outside the timed region), plus best-epoch throughput — one
/// pass is well under a millisecond on the GEMM paths, so single-shot
/// timing would be noise, and on a shared box even a long average
/// absorbs scheduler interference. Splitting the budget into epochs and
/// keeping the best one filters that interference the same way for every
/// measured path (best-of-N, applied symmetrically).
struct ScorePass {
  std::uint64_t fingerprint = kFnvOffset;
  double rows_per_s = 0.0;
};

double min_measure_seconds() {
  return static_cast<double>(env_or("HMD_BATCH_MIN_TIME_MS", 250)) / 1000.0;
}

template <typename Fn>
ScorePass run_pass(std::size_t rows, std::size_t k, const std::string& span,
                   Fn&& fill_out) {
  ScorePass pass;
  std::vector<double> out(rows * k);
  fill_out(out);  // warm-up; also the buffer that gets fingerprinted
  constexpr std::size_t kEpochs = 3;
  const double epoch_budget = min_measure_seconds() / kEpochs;
  double best = 0.0;
  TraceSpan t(span);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    double total = 0.0;
    std::size_t reps = 0;
    do {
      const auto t0 = std::chrono::steady_clock::now();
      fill_out(out);
      total += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      ++reps;
    } while (total < epoch_budget && reps < 10000);
    best = std::max(best, static_cast<double>(rows * reps) / total);
  }
  pass.rows_per_s = best;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = out.data() + r * k;
    const std::size_t p =
        static_cast<std::size_t>(std::max_element(row, row + k) - row);
    pass.fingerprint = fnv_mix(pass.fingerprint, p);
    for (std::size_t c = 0; c < k; ++c)
      pass.fingerprint = fnv_double(pass.fingerprint, row[c]);
  }
  return pass;
}

ScorePass score_batch(const ml::Classifier& model,
                      const std::vector<double>& flat, std::size_t rows,
                      const std::string& span) {
  return run_pass(rows, model.num_classes(), span,
                  [&](std::vector<double>& out) {
                    model.distribution_batch(flat, kFeatures, out);
                  });
}

/// The pre-GEMM baseline: the Classifier base class's per-row fallback —
/// exactly what StreamEngine's one-call-per-batch contract resolved to
/// before the schemes gained real distribution_batch overrides.
ScorePass score_per_row(const ml::Classifier& model,
                        const std::vector<double>& flat, std::size_t rows,
                        const std::string& span) {
  return run_pass(rows, model.num_classes(), span,
                  [&](std::vector<double>& out) {
                    model.ml::Classifier::distribution_batch(flat, kFeatures,
                                                             out);
                  });
}

double accuracy_of(const ml::Classifier& model, const ml::DatasetView& test) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.num_instances(); ++i)
    hits += model.predict(test.features_of(i)) == test.class_of(i) ? 1 : 0;
  return static_cast<double>(hits) /
         static_cast<double>(test.num_instances());
}

/// Non-owning Classifier handle for QuantizedModel's shared_ptr ctor.
std::shared_ptr<const ml::Classifier> borrow(const ml::Classifier& c) {
  return {std::shared_ptr<void>(), &c};
}

struct KnnResult {
  double brute_rows_per_s = 0.0;
  double screened_rows_per_s = 0.0;
  double indexed_rows_per_s = 0.0;
  bool bit_identical = false;
  bool index_built = false;
};

struct GemmResult {
  std::string scheme;
  double per_row_rows_per_s = 0.0;
  double batch_rows_per_s = 0.0;
  bool bit_identical = false;
  // Low-latency tiers (int8 for the affine schemes, q16 everywhere).
  double int8_rows_per_s = 0.0;
  double float_accuracy = 0.0;
  double int8_accuracy = 0.0;
  double q16_accuracy = 0.0;
};

/// Per-feature |x| bound over the scoring slice — the same calibration
/// hw/evaluate_fixed_point derives from its test set.
std::vector<double> absmax_of(const std::vector<double>& flat,
                              std::size_t rows) {
  std::vector<double> absmax(kFeatures, 0.0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t f = 0; f < kFeatures; ++f)
      absmax[f] = std::max(absmax[f], std::abs(flat[r * kFeatures + f]));
  return absmax;
}

void write_json(const std::string& path, std::size_t rows,
                std::size_t train_rows, std::size_t predict_rows,
                const KnnResult& knn, double q16_knn_delta,
                const std::vector<GemmResult>& gemm) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"metadata\": " << bench::metadata_json("  ").substr(2) << ",\n"
      << "  \"rows\": " << rows << ",\n"
      << "  \"features\": " << kFeatures << ",\n"
      << "  \"classes\": " << kClasses << ",\n"
      << "  \"train_rows\": " << train_rows << ",\n"
      << "  \"predict_rows\": " << predict_rows << ",\n"
      << "  \"knn\": {\n"
      << "    \"brute_rows_per_s\": " << knn.brute_rows_per_s << ",\n"
      << "    \"screened_rows_per_s\": " << knn.screened_rows_per_s << ",\n"
      << "    \"indexed_rows_per_s\": " << knn.indexed_rows_per_s << ",\n"
      << "    \"speedup\": "
      << (knn.brute_rows_per_s > 0.0
              ? knn.indexed_rows_per_s / knn.brute_rows_per_s
              : 0.0)
      << ",\n"
      << "    \"speedup_vs_screened\": "
      << (knn.screened_rows_per_s > 0.0
              ? knn.indexed_rows_per_s / knn.screened_rows_per_s
              : 0.0)
      << ",\n"
      << "    \"bit_identical\": " << (knn.bit_identical ? "true" : "false")
      << ",\n"
      << "    \"index_built\": " << (knn.index_built ? "true" : "false")
      << ",\n"
      << "    \"pr3_baseline_rows_per_s\": " << kPr3IbkBaselineRowsPerS
      << ",\n"
      << "    \"speedup_vs_pr3\": "
      << knn.indexed_rows_per_s / kPr3IbkBaselineRowsPerS << ",\n"
      << "    \"q16_accuracy_delta\": " << q16_knn_delta << "\n"
      << "  },\n"
      << "  \"schemes\": {\n";
  for (std::size_t i = 0; i < gemm.size(); ++i) {
    const GemmResult& g = gemm[i];
    out << "    \"" << g.scheme << "\": {\n"
        << "      \"per_row_rows_per_s\": " << g.per_row_rows_per_s << ",\n"
        << "      \"batch_rows_per_s\": " << g.batch_rows_per_s << ",\n"
        << "      \"batch_speedup\": "
        << (g.per_row_rows_per_s > 0.0
                ? g.batch_rows_per_s / g.per_row_rows_per_s
                : 0.0)
        << ",\n"
        << "      \"bit_identical\": " << (g.bit_identical ? "true" : "false")
        << ",\n"
        << "      \"int8_rows_per_s\": " << g.int8_rows_per_s << ",\n"
        << "      \"float_accuracy\": " << g.float_accuracy << ",\n"
        << "      \"int8_accuracy\": " << g.int8_accuracy << ",\n"
        << "      \"int8_accuracy_delta\": "
        << g.int8_accuracy - g.float_accuracy << ",\n"
        << "      \"q16_accuracy\": " << g.q16_accuracy << ",\n"
        << "      \"q16_accuracy_delta\": "
        << g.q16_accuracy - g.float_accuracy << "\n"
        << "    }" << (i + 1 < gemm.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  bench::init_observability();
  const std::size_t rows = env_or("HMD_BATCH_ROWS", 40000);
  const std::size_t predict_rows = env_or("HMD_BATCH_PREDICT", 4096);

  const ml::Dataset data = synthetic_dataset(rows, 7);
  Rng split_rng(42);
  const auto [train, test] = data.stratified_split(0.7, split_rng);
  const std::size_t score_rows =
      std::min(predict_rows, test.num_instances());
  std::vector<double> flat(score_rows * kFeatures);
  for (std::size_t r = 0; r < score_rows; ++r) {
    const auto x = test.features_of(r);
    std::copy(x.begin(), x.end(), flat.begin() + r * kFeatures);
  }
  std::fprintf(stderr,
               "[bench] batch scoring dataset: %zu rows (%zu train), "
               "%zu scored per pass, %zu features, %zu classes\n",
               data.num_instances(), train.num_instances(), score_rows,
               kFeatures, kClasses);

  // ---- IBk: plain brute scan vs int16-screened scan vs KD-tree index,
  //      same model, same rows. The brute pass caps its measured rows so
  //      a ~2 rows/ms linear scan cannot stall the bench; rows/s is
  //      row-count-invariant for a full scan, and the fingerprint check
  //      below still covers every scored row via the screened pass.
  KnnResult knn_result;
  {
    ml::Knn knn(5);
    knn.train(train);
    knn_result.index_built = knn.has_index();
    knn.set_index_enabled(false);
    knn.set_screen_enabled(false);
    const std::size_t brute_rows = std::min<std::size_t>(score_rows, 512);
    const std::vector<double> brute_flat(
        flat.begin(), flat.begin() + brute_rows * kFeatures);
    const ScorePass brute =
        score_batch(knn, brute_flat, brute_rows, "batch/IBk/brute");
    knn.set_screen_enabled(true);
    const ScorePass screened =
        score_batch(knn, flat, score_rows, "batch/IBk/screened");
    knn.set_index_enabled(true);
    const ScorePass indexed =
        score_batch(knn, flat, score_rows, "batch/IBk/indexed");
    // Reference fingerprint of the brute path over the full scoring slice
    // (one untimed pass — the timed brute pass covers a prefix).
    knn.set_index_enabled(false);
    knn.set_screen_enabled(false);
    std::vector<double> ref(score_rows * knn.num_classes());
    knn.distribution_batch(flat, kFeatures, ref);
    std::uint64_t ref_fp = kFnvOffset;
    for (std::size_t r = 0; r < score_rows; ++r) {
      const double* row = ref.data() + r * knn.num_classes();
      const std::size_t p = static_cast<std::size_t>(
          std::max_element(row, row + knn.num_classes()) - row);
      ref_fp = fnv_mix(ref_fp, p);
      for (std::size_t c = 0; c < knn.num_classes(); ++c)
        ref_fp = fnv_double(ref_fp, row[c]);
    }
    knn_result.brute_rows_per_s = brute.rows_per_s;
    knn_result.screened_rows_per_s = screened.rows_per_s;
    knn_result.indexed_rows_per_s = indexed.rows_per_s;
    knn_result.bit_identical =
        ref_fp == screened.fingerprint && ref_fp == indexed.fingerprint;
    std::fprintf(stderr,
                 "[bench] batch IBk  brute %9.0f rows/s | screened %9.0f "
                 "rows/s | indexed %9.0f rows/s | speedup %5.1fx "
                 "(vs screened %4.1fx) | bit_identical=%s\n",
                 brute.rows_per_s, screened.rows_per_s, indexed.rows_per_s,
                 indexed.rows_per_s / brute.rows_per_s,
                 indexed.rows_per_s / screened.rows_per_s,
                 knn_result.bit_identical ? "yes" : "NO");
  }

  // ---- IBk q16 tier: accuracy under the hardware input grid.
  double q16_knn_delta = 0.0;
  {
    ml::Knn knn(5);
    knn.train(train);
    const double base = accuracy_of(knn, test);
    const ml::QuantizedModel q16(borrow(knn),
                                 ml::QuantizedModel::Mode::kQ16Input,
                                 absmax_of(flat, score_rows));
    q16_knn_delta = accuracy_of(q16, test) - base;
  }

  // ---- GEMM schemes + quantized tiers.
  using Factory = std::unique_ptr<ml::Classifier> (*)();
  const std::vector<std::pair<std::string, Factory>> schemes = {
      {"MLR", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::Logistic>(
             ml::Logistic::Params{.iterations = 100});
       }},
      {"SVM", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::LinearSvm>();
       }},
      {"MLP", +[]() -> std::unique_ptr<ml::Classifier> {
         return std::make_unique<ml::Mlp>(ml::Mlp::Params{.epochs = 6});
       }},
  };

  std::vector<GemmResult> gemm_results;
  for (const auto& [scheme, make] : schemes) {
    GemmResult g;
    g.scheme = scheme;
    const std::unique_ptr<ml::Classifier> model = make();
    model->train(train);

    const ScorePass per_row =
        score_per_row(*model, flat, score_rows, "batch/" + scheme + "/row");
    const ScorePass batch =
        score_batch(*model, flat, score_rows, "batch/" + scheme + "/batch");
    g.per_row_rows_per_s = per_row.rows_per_s;
    g.batch_rows_per_s = batch.rows_per_s;
    g.bit_identical = per_row.fingerprint == batch.fingerprint;
    g.float_accuracy = accuracy_of(*model, test);

    const ml::QuantizedModel int8(borrow(*model),
                                  ml::QuantizedModel::Mode::kInt8);
    const ScorePass int8_pass =
        score_batch(int8, flat, score_rows, "batch/" + scheme + "/int8");
    g.int8_rows_per_s = int8_pass.rows_per_s;
    g.int8_accuracy = accuracy_of(int8, test);

    const ml::QuantizedModel q16(borrow(*model),
                                 ml::QuantizedModel::Mode::kQ16Input);
    g.q16_accuracy = accuracy_of(q16, test);

    std::fprintf(stderr,
                 "[bench] batch %-4s row %9.0f rows/s | batch %9.0f rows/s "
                 "| speedup %5.1fx | int8 %9.0f rows/s | bit_identical=%s | "
                 "acc %.4f int8 %+.4f q16 %+.4f\n",
                 scheme.c_str(), g.per_row_rows_per_s, g.batch_rows_per_s,
                 g.batch_rows_per_s / g.per_row_rows_per_s,
                 g.int8_rows_per_s, g.bit_identical ? "yes" : "NO",
                 g.float_accuracy, g.int8_accuracy - g.float_accuracy,
                 g.q16_accuracy - g.float_accuracy);
    gemm_results.push_back(std::move(g));
  }

  const std::string path = "BENCH_batch_scoring.json";
  write_json(path, data.num_instances(), train.num_instances(), score_rows,
             knn_result, q16_knn_delta, gemm_results);
  std::fprintf(stderr, "[bench] batch scoring results written to %s\n",
               path.c_str());

  // Fail loudly when a fast path diverges from its reference — CI treats a
  // non-zero exit as a regression.
  bool ok = knn_result.bit_identical;
  for (const GemmResult& g : gemm_results) ok = ok && g.bit_identical;
  if (!ok)
    std::fprintf(stderr,
                 "[bench] ERROR: a fast path is not bit-identical to its "
                 "reference\n");
  return ok ? 0 : 1;
}
