#include "bench/bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "ml/kernels.hpp"
#include "ml/registry.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace hmd::bench {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return parse_double(v);
}

struct Splits {
  ml::Dataset multi_train, multi_test;
  ml::Dataset binary_train, binary_test;
};

const Splits& splits() {
  static const Splits s = [] {
    Rng rng(20180717);  // thesis defense summer 2018
    auto [mtrain, mtest] =
        multiclass_dataset().stratified_split(bench_config().train_fraction,
                                              rng);
    Rng rng2(20170618);  // DAC'17
    auto [btrain, btest] =
        binary_dataset().stratified_split(bench_config().train_fraction,
                                          rng2);
    return Splits{std::move(mtrain), std::move(mtest), std::move(btrain),
                  std::move(btest)};
  }();
  return s;
}

}  // namespace

core::PipelineConfig bench_config() {
  const double scale = env_double("HMD_BENCH_SCALE", 0.30);
  const auto windows =
      static_cast<std::size_t>(env_double("HMD_BENCH_WINDOWS", 12));
  core::PipelineConfig cfg;
  cfg.composition = workload::DatabaseComposition::scaled(scale);
  cfg.collector.num_windows = windows;
  cfg.collector.ops_per_window = 3000;
  return cfg;
}

const ml::Dataset& multiclass_dataset() {
  static const ml::Dataset data = [] {
    const core::PipelineConfig cfg = bench_config();
    std::filesystem::create_directories("hmd_bench_cache");
    const std::string path =
        "hmd_bench_cache/" + cfg.cache_key() + ".csv";
    core::DatasetBuilder builder(cfg);
    if (!std::filesystem::exists(path))
      std::fprintf(stderr,
                   "[bench] collecting HPC dataset (%zu samples x %zu "
                   "windows, %zu jobs) -> %s\n",
                   cfg.composition.total(), cfg.collector.num_windows,
                   bench_pool().size(), path.c_str());
    // Collection fans per-sample simulation across the pool; the cached
    // CSV is bit-identical to a serial build (see DatasetBuilder).
    return builder.load_or_build(path, &bench_pool());
  }();
  return data;
}

const ml::Dataset& binary_dataset() {
  static const ml::Dataset data =
      core::DatasetBuilder::to_binary(multiclass_dataset());
  return data;
}

std::pair<const ml::Dataset&, const ml::Dataset&> multiclass_split() {
  return {splits().multi_train, splits().multi_test};
}

std::pair<const ml::Dataset&, const ml::Dataset&> binary_split() {
  return {splits().binary_train, splits().binary_test};
}

const core::FeatureReducer& feature_reducer() {
  static const core::FeatureReducer reducer(splits().multi_train);
  return reducer;
}

ThreadPool& bench_pool() { return global_pool(); }

namespace {

/// Commit under bench: CI exports GITHUB_SHA; locally ask git. Either can
/// be missing (tarball checkout) — then "unknown".
std::string git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA");
      sha != nullptr && *sha != '\0')
    return sha;
  std::string sha;
  if (FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

}  // namespace

std::string metadata_json(const std::string& indent) {
  const bool avx2 = ml::kernels::isa_supported(ml::kernels::Isa::kAvx2);
  const bool avx512 = ml::kernels::isa_supported(ml::kernels::Isa::kAvx512);
  std::string out;
  out += indent + "{\n";
  out += indent + "  \"git_sha\": \"" + git_sha() + "\",\n";
  out += indent + "  \"kernel_isa\": \"" +
         ml::kernels::to_string(ml::kernels::active_isa()) + "\",\n";
  out += indent + "  \"cpu_flags\": {\"avx2\": " +
         (avx2 ? "true" : "false") + ", \"avx512\": " +
         (avx512 ? "true" : "false") + "},\n";
  out += indent + "  \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + "\n";
  out += indent + "}";
  return out;
}

const BinaryStudyResults& binary_study_results() {
  static const BinaryStudyResults results = [] {
    const auto& [train, test] = binary_split();
    const core::BinaryStudy study(train, test);
    const auto schemes = ml::binary_study_classifiers();
    const core::FeatureSet top8 = feature_reducer().binary_top_features(8);
    const core::FeatureSet top4 = feature_reducer().binary_top_features(4);
    ThreadPool& pool = bench_pool();
    std::fprintf(stderr,
                 "[bench] training %zu classifiers x 3 feature sets "
                 "(%zu jobs)\n",
                 schemes.size(), pool.size());
    TraceSpan sweep("bench/binary_study");
    BinaryStudyResults r{study.run(schemes, nullptr, &pool),
                         study.run(schemes, &top8, &pool),
                         study.run(schemes, &top4, &pool)};
    std::fprintf(stderr, "[bench] classifier sweep took %.2f s\n",
                 sweep.elapsed_seconds());
    return r;
  }();
  return results;
}

void init_observability() {
  static const bool initialized = [] {
    const char* metrics_out = std::getenv("HMD_METRICS_OUT");
    const char* trace_out = std::getenv("HMD_TRACE_OUT");
    if (trace_out != nullptr && *trace_out != '\0')
      tracer().set_enabled(true);
    if ((metrics_out != nullptr && *metrics_out != '\0') ||
        (trace_out != nullptr && *trace_out != '\0')) {
      std::atexit([] {
        if (const char* path = std::getenv("HMD_METRICS_OUT");
            path != nullptr && *path != '\0') {
          std::ofstream out(path);
          metrics().write_json(out);
        }
        if (const char* path = std::getenv("HMD_TRACE_OUT");
            path != nullptr && *path != '\0') {
          std::ofstream out(path);
          tracer().write_chrome_json(out);
        }
      });
    }
    return true;
  }();
  (void)initialized;
}

void print_banner(const std::string& title) {
  init_observability();
  const auto& d = multiclass_dataset();
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("dataset: %zu windows x %zu counters, %zu samples, "
              "70/30 split\n",
              d.num_instances(), d.num_features(),
              bench_config().composition.total());
  std::printf("==========================================================\n");
}

}  // namespace hmd::bench
