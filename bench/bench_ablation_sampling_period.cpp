// Ablation: sampling period.
//
// The thesis samples HPCs every 10 ms. Shorter windows react faster but
// each sample is noisier (fewer events per window); longer windows smooth
// phases together. This sweep varies the window size (expressed through
// ops-per-window in the miniature model) and reports detection accuracy.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_ablation() {
  bench::print_banner("Ablation: sampling period (window size)");

  TextTable table("binary MLR accuracy vs sampling window");
  table.set_header({"window (model ops)", "~period", "accuracy %",
                    "rows"});
  // 3000 ops ≙ the paper's 10 ms window in the miniature model.
  for (const auto& [ops, label] :
       std::vector<std::pair<std::size_t, const char*>>{{300, "1 ms"},
                                                        {1500, "5 ms"},
                                                        {3000, "10 ms"},
                                                        {9000, "30 ms"},
                                                        {30000, "100 ms"}}) {
    core::PipelineConfig cfg;
    cfg.composition = workload::DatabaseComposition::scaled(0.08);
    // Hold total observation time per sample constant: windows shrink as
    // they lengthen.
    cfg.collector.ops_per_window = ops;
    cfg.collector.num_windows =
        std::max<std::size_t>(2, 36000 / std::max<std::size_t>(ops, 1));
    core::DatasetBuilder builder(cfg);
    const ml::Dataset binary =
        core::DatasetBuilder::to_binary(builder.build_multiclass_dataset());
    Rng rng(5);
    const auto [train, test] =
        binary.stratified_split(cfg.train_fraction, rng);
    const auto tm = core::train_and_evaluate("MLR", train, test);
    table.add_row({std::to_string(ops), label,
                   format("%.2f", tm.evaluation.accuracy() * 100.0),
                   std::to_string(binary.num_instances())});
  }
  table.print(std::cout);
}

void BM_WindowCollection(benchmark::State& state) {
  workload::SampleRecord rec{.id = "b", .label = workload::AppClass::kWorm,
                             .seed = 7};
  workload::Sandbox sandbox(rec);
  hwsim::Core core(hwsim::CoreConfig{}, hwsim::MemoryHierarchy::miniature());
  perf::HpcCollector collector(
      {.ops_per_window = static_cast<std::size_t>(state.range(0)),
       .num_windows = 1});
  for (auto _ : state) {
    auto w = collector.collect(core, sandbox);
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowCollection)->Arg(300)->Arg(3000)->Arg(30000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
