// Figure 14: Area comparison — FPGA resources of each classifier's
// hardware implementation at 16/8/4 features. Paper shape: rule/tree
// learners cost a handful of comparators; MLP costs hundreds of DSP-mapped
// multipliers — orders of magnitude more area.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "hw/lowering.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig14() {
  bench::print_banner("Figure 14: Area comparison (HLS-style estimate)");
  const bench::BinaryStudyResults& r = bench::binary_study_results();

  TextTable table("slice-equivalent area vs number of features");
  table.set_header({"classifier", "16 feat", "8 feat", "4 feat", "LUT(16)",
                    "FF(16)", "DSP(16)", "BRAM(16)"});
  for (std::size_t i = 0; i < r.full.size(); ++i) {
    const auto& res = r.full[i].synthesis.resources;
    table.add_row({r.full[i].scheme,
                   format("%.0f", r.full[i].synthesis.area_slices()),
                   format("%.0f", r.top8[i].synthesis.area_slices()),
                   format("%.0f", r.top4[i].synthesis.area_slices()),
                   std::to_string(res.luts), std::to_string(res.ffs),
                   std::to_string(res.dsps), std::to_string(res.brams)});
  }
  table.print(std::cout);

  // Headline ratio the thesis's Fig. 14 bar chart shows.
  double mlp_area = 0.0, oner_area = 0.0;
  for (const auto& row : r.full) {
    if (row.scheme == "MLP") mlp_area = row.synthesis.area_slices();
    if (row.scheme == "OneR") oner_area = row.synthesis.area_slices();
  }
  std::cout << format("MLP / OneR area ratio: %.0fx\n",
                      mlp_area / oner_area);
}

void BM_SynthesizeMlp(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  auto clf = ml::make_classifier("MLP");
  clf->train(train);
  for (auto _ : state) {
    auto report = hw::synthesize_classifier(*clf, train.num_features());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SynthesizeMlp)->Unit(benchmark::kMicrosecond);

void BM_SynthesizeJRip(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  auto clf = ml::make_classifier("JRip");
  clf->train(train);
  for (auto _ : state) {
    auto report = hw::synthesize_classifier(*clf, train.num_features());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SynthesizeJRip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig14();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
