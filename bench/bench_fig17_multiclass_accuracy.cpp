// Figure 17: Average accuracy for multiclass (malware family)
// classification with MLR, MLP and SVM. Paper shape: the neural network
// (MLP) leads, MLR close behind, linear SVM trails.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig17() {
  bench::print_banner("Figure 17: Average multiclass accuracy");
  const auto& [train, test] = bench::multiclass_split();

  TextTable table("6-class (benign + 5 families) test accuracy");
  table.set_header({"classifier", "accuracy %", "macro recall %", "kappa"});
  // Fan the scheme sweep (plus the ZeroR reference) across the pool; rows
  // come back in scheme order.
  std::vector<std::string> schemes = ml::multiclass_study_classifiers();
  schemes.push_back("ZeroR");
  const auto evals =
      parallel_map(&bench::bench_pool(), schemes, [&](const std::string& s) {
        return core::train_and_evaluate(s, train, test).evaluation;
      });
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    // ZeroR is the majority-class reference line (majority = trojan).
    const std::string label =
        schemes[i] == "ZeroR" ? "ZeroR (ref)" : schemes[i];
    table.add_row({label, format("%.2f", evals[i].accuracy() * 100.0),
                   format("%.2f", evals[i].macro_recall() * 100.0),
                   format("%.3f", evals[i].kappa())});
  }
  table.print(std::cout);
}

void BM_TrainMulticlassMLR(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("MLR");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainMulticlassMLR)->Unit(benchmark::kMillisecond);

void BM_TrainMulticlassSVM(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("SVM");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainMulticlassSVM)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig17();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
