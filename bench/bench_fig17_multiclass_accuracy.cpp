// Figure 17: Average accuracy for multiclass (malware family)
// classification with MLR, MLP and SVM. Paper shape: the neural network
// (MLP) leads, MLR close behind, linear SVM trails.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig17() {
  bench::print_banner("Figure 17: Average multiclass accuracy");
  const auto& [train, test] = bench::multiclass_split();

  TextTable table("6-class (benign + 5 families) test accuracy");
  table.set_header({"classifier", "accuracy %", "macro recall %", "kappa"});
  for (const std::string& scheme : ml::multiclass_study_classifiers()) {
    const auto tm = core::train_and_evaluate(scheme, train, test);
    table.add_row({scheme, format("%.2f", tm.evaluation.accuracy() * 100.0),
                   format("%.2f", tm.evaluation.macro_recall() * 100.0),
                   format("%.3f", tm.evaluation.kappa())});
  }
  // ZeroR reference line (majority class = trojan).
  const auto zero = core::train_and_evaluate("ZeroR", train, test);
  table.add_row({"ZeroR (ref)",
                 format("%.2f", zero.evaluation.accuracy() * 100.0),
                 format("%.2f", zero.evaluation.macro_recall() * 100.0),
                 format("%.3f", zero.evaluation.kappa())});
  table.print(std::cout);
}

void BM_TrainMulticlassMLR(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("MLR");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainMulticlassMLR)->Unit(benchmark::kMillisecond);

void BM_TrainMulticlassSVM(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    auto clf = ml::make_classifier("SVM");
    clf->train(train);
    benchmark::DoNotOptimize(clf);
  }
}
BENCHMARK(BM_TrainMulticlassSVM)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig17();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
