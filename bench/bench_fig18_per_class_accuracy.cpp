// Figure 18: Per-class accuracy (recall) for the multiclass classifiers —
// which malware families each of MLR/MLP/SVM recognizes well. Paper shape:
// rootkits and viruses (distinctive microarchitectural signatures) score
// high; benign and the smallest family (worm) are hardest.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig18() {
  bench::print_banner("Figure 18: Per-class accuracy");
  const auto& [train, test] = bench::multiclass_split();

  TextTable table("per-class recall (%) on the test split");
  std::vector<std::string> header = {"class"};
  const std::vector<std::string> schemes = ml::multiclass_study_classifiers();
  for (const std::string& scheme : schemes) header.push_back(scheme);
  const std::vector<ml::EvaluationReport> evals =
      parallel_map(&bench::bench_pool(), schemes, [&](const std::string& s) {
        return core::train_and_evaluate(s, train, test).evaluation;
      });
  table.set_header(header);
  for (std::size_t c = 0; c < test.num_classes(); ++c) {
    std::vector<std::string> row = {test.class_attribute().values()[c]};
    for (const auto& ev : evals)
      row.push_back(format("%.1f", ev.recall(c) * 100.0));
    table.add_row(row);
  }
  table.print(std::cout);

  // Full confusion matrix for the best scheme (MLP) — the detail behind
  // the per-class bars.
  std::cout << "\nMLP detail:\n"
            << evals[1].to_string();
}

void BM_EvaluateMulticlass(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  auto clf = ml::make_classifier("MLR");
  clf->train(train);
  for (auto _ : state) {
    auto ev = ml::evaluate(*clf, test);
    benchmark::DoNotOptimize(ev);
  }
}
BENCHMARK(BM_EvaluateMulticlass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig18();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
