// Figure 15: Latency comparison — per-inference latency of each
// classifier's hardware implementation (cycles and µs at the 100 MHz HLS
// target clock), at 16/8/4 features. Paper shape: trees/rules classify in a
// few cycles; the MLP's MAC layers take an order of magnitude longer.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_common.hpp"
#include "hw/lowering.hpp"
#include "hw/pareto.hpp"
#include "ml/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

void print_fig15() {
  bench::print_banner("Figure 15: Latency comparison (100 MHz target)");
  const bench::BinaryStudyResults& r = bench::binary_study_results();

  TextTable table("latency vs number of features");
  table.set_header({"classifier", "cycles(16)", "cycles(8)", "cycles(4)",
                    "us(16)"});
  for (std::size_t i = 0; i < r.full.size(); ++i) {
    table.add_row({r.full[i].scheme,
                   std::to_string(r.full[i].synthesis.latency_cycles),
                   std::to_string(r.top8[i].synthesis.latency_cycles),
                   std::to_string(r.top4[i].synthesis.latency_cycles),
                   format("%.2f", r.full[i].synthesis.latency_us())});
  }
  table.print(std::cout);

  // Resource-shared variant: the latency cost of sharing multipliers.
  const auto& [train, test] = bench::binary_split();
  (void)test;
  auto mlp = ml::make_classifier("MLP");
  mlp->train(train);
  const hw::DataflowGraph g =
      hw::lower_classifier(*mlp, train.num_features());
  TextTable sharing("MLP latency under multiplier sharing");
  sharing.set_header({"multipliers", "latency cycles"});
  for (std::uint32_t muls : {1u, 4u, 16u, 64u}) {
    hw::SynthesisOptions opt;
    opt.allocation = hw::OperatorAllocation{.multipliers = muls};
    sharing.add_row({std::to_string(muls),
                     std::to_string(hw::synthesize(g, "MLP", opt)
                                        .latency_cycles)});
  }
  sharing.add_row({"unbounded",
                   std::to_string(hw::synthesize(g, "MLP").latency_cycles)});
  sharing.print(std::cout);

  // The Pareto-optimal area/latency designs an implementer would pick from.
  TextTable pareto("MLP area-latency Pareto front (design-space sweep)");
  pareto.set_header({"area (slices)", "latency (cycles)"});
  for (const hw::DesignPoint& p :
       hw::pareto_front(hw::explore_design_space(g)))
    pareto.add_row({format("%.0f", p.area_slices),
                    std::to_string(p.latency_cycles)});
  pareto.print(std::cout);
}

void BM_ScheduleAsap(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  auto mlp = ml::make_classifier("MLP");
  mlp->train(train);
  const hw::DataflowGraph g =
      hw::lower_classifier(*mlp, train.num_features());
  for (auto _ : state) {
    auto sched = g.schedule_asap();
    benchmark::DoNotOptimize(sched);
  }
}
BENCHMARK(BM_ScheduleAsap)->Unit(benchmark::kMicrosecond);

void BM_ScheduleConstrained(benchmark::State& state) {
  const auto& [train, test] = bench::binary_split();
  (void)test;
  auto mlp = ml::make_classifier("MLP");
  mlp->train(train);
  const hw::DataflowGraph g =
      hw::lower_classifier(*mlp, train.num_features());
  const hw::OperatorAllocation alloc{.multipliers = 8};
  for (auto _ : state) {
    auto sched = g.schedule_constrained(alloc);
    benchmark::DoNotOptimize(sched);
  }
}
BENCHMARK(BM_ScheduleConstrained)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig15();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
