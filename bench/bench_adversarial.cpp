// Adversarial robustness: evasion attack vs the stochastic ensemble
// defense (Kuruvila et al., arXiv:2005.03644), on the thesis's detectors.
//
// One seeded evasion campaign (workload/evasion.hpp) perturbs every
// malware family's generative parameters toward the benign footprint,
// scored against a frozen surrogate detector; the clean and adversarial
// datasets are then built from the SAME composition and seeds, so the
// benign rows are byte-identical and only the malware windows move. Every
// registry scheme is trained once on the clean training split and
// evaluated on both test splits — the classic transfer study: the
// white-box victim is the surrogate, everyone else sees a transferred
// attack.
//
// For each ATTACKED scheme (adversarial accuracy drop > 2 points) the
// bench then serves that scheme as the primary of a five-member ensemble
// (four frozen diverse members from a fixed preference list) and scores
// the test windows through the real serve::ScoringPolicy — majority vote
// and seeded stochastic selection — measuring how much of the attacked
// scheme's accuracy drop each policy recovers:
//
//   recovery = (policy_adv_acc - scheme_adv_acc) / (clean - adv drop)
//
// The headline criterion (mirrored into the JSON summary): the stochastic
// policy recovers >= 50% of the drop for a majority of attacked schemes.
//
// Emits BENCH_adversarial.json and mirrors every row as a [bench] stderr
// line for CI greps.
//
// Scale knobs (environment):
//   HMD_ADV_SCALE_PCT  database scale vs Table 1, percent (default 5)
//   HMD_ADV_WINDOWS    windows per sample          (default 6)
//   HMD_ADV_OPS        simulated ops per window    (default 2000)
//   HMD_ADV_ITERS      evasion iterations/family   (default 128)
//   HMD_ADV_SURROGATE  surrogate scheme            (default MLR)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/dataset_builder.hpp"
#include "ml/evaluation.hpp"
#include "ml/registry.hpp"
#include "serve/ensemble_policy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/app_class.hpp"
#include "workload/evasion.hpp"

namespace {

using namespace hmd;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0')
             ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
             : fallback;
}

std::string env_or_str(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : fallback;
}

/// Accuracy drop below which a scheme counts as unaffected by the attack.
constexpr double kAttackedDrop = 0.02;
constexpr std::uint64_t kSplitSeed = 7;
constexpr std::uint64_t kPolicySeed = 0xd5;

struct FamilyRow {
  std::string family;
  double clean_score = 0.0;   ///< surrogate P(malware), unperturbed
  double evaded_score = 0.0;  ///< surrogate P(malware), perturbed
  std::uint64_t fingerprint = 0;
};

struct SchemeRow {
  std::string scheme;
  double clean_acc = 0.0;
  double adv_acc = 0.0;
  double majority_clean = 0.0;
  double majority_adv = 0.0;
  double stochastic_clean = 0.0;
  double stochastic_adv = 0.0;
  double best_single_adv = 0.0;  ///< best member model alone, under attack
  bool attacked = false;
  double recovery = 0.0;  ///< stochastic, fraction of the drop recovered
  bool recovered = false;
};

/// Window-level accuracy of a ScoringPolicy over a binary test set, with
/// each row treated as one window of one stream (ordinal = row index) —
/// the same keying the engine derives from per-stream scored-window
/// counts, so the stochastic selection here is the one serving would make.
double policy_accuracy(const serve::ScoringPolicy& policy,
                       const ml::Classifier& primary,
                       const ml::Dataset& test) {
  const std::size_t n = test.num_instances();
  const std::size_t width = test.num_features();
  std::vector<double> flat;
  flat.reserve(n * width);
  std::vector<serve::ScoringPolicy::WindowKey> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = test.features_of(i);
    flat.insert(flat.end(), row.begin(), row.end());
    keys[i] = {0, i};
  }
  std::vector<double> dist(n * 2);
  std::vector<std::uint64_t> versions(n);
  serve::ScoringPolicy::Scratch scratch;
  policy.score(primary, 1, flat, width, keys, dist, versions, scratch);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t predicted = dist[i * 2 + 1] > 0.5 ? 1 : 0;
    if (predicted == test.class_of(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

void write_json(const std::string& path, const core::PipelineConfig& cfg,
                double scale, std::size_t iters,
                const std::string& surrogate,
                const std::vector<FamilyRow>& families,
                const std::vector<SchemeRow>& schemes,
                std::size_t attacked, std::size_t recovered,
                bool criterion_met) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"metadata\": " << bench::metadata_json("  ").substr(2) << ",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"windows\": " << cfg.collector.num_windows << ",\n"
      << "  \"ops_per_window\": " << cfg.collector.ops_per_window << ",\n"
      << "  \"evade_iterations\": " << iters << ",\n"
      << "  \"surrogate\": \"" << surrogate << "\",\n"
      << "  \"families\": [\n";
  for (std::size_t i = 0; i < families.size(); ++i) {
    const FamilyRow& f = families[i];
    out << "    {\"family\": \"" << f.family
        << "\", \"surrogate_clean_score\": " << f.clean_score
        << ", \"surrogate_evaded_score\": " << f.evaded_score
        << ", \"perturbation_fingerprint\": " << f.fingerprint << "}"
        << (i + 1 < families.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const SchemeRow& r = schemes[i];
    out << "    {\"scheme\": \"" << r.scheme
        << "\", \"clean_accuracy\": " << r.clean_acc
        << ", \"adversarial_accuracy\": " << r.adv_acc
        << ", \"drop\": " << r.clean_acc - r.adv_acc
        << ", \"majority_clean\": " << r.majority_clean
        << ", \"majority_adversarial\": " << r.majority_adv
        << ", \"stochastic_clean\": " << r.stochastic_clean
        << ", \"stochastic_adversarial\": " << r.stochastic_adv
        << ", \"best_single_adversarial\": " << r.best_single_adv
        << ", \"attacked\": " << (r.attacked ? "true" : "false")
        << ", \"stochastic_recovery\": " << r.recovery
        << ", \"recovered\": " << (r.recovered ? "true" : "false") << "}"
        << (i + 1 < schemes.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"summary\": {\"attacked_schemes\": " << attacked
      << ", \"recovered_schemes\": " << recovered
      << ", \"criterion\": \"stochastic recovers >= 50% of the drop for a "
         "majority of attacked schemes\""
      << ", \"criterion_met\": " << (criterion_met ? "true" : "false")
      << "}\n}\n";
}

}  // namespace

int main() {
  bench::init_observability();
  const double scale =
      static_cast<double>(env_or("HMD_ADV_SCALE_PCT", 5)) / 100.0;
  core::PipelineConfig cfg;
  cfg.composition = workload::DatabaseComposition::scaled(scale);
  cfg.collector.num_windows = env_or("HMD_ADV_WINDOWS", 6);
  cfg.collector.ops_per_window = env_or("HMD_ADV_OPS", 2000);
  const std::size_t iters = env_or("HMD_ADV_ITERS", 128);
  const std::string surrogate_scheme = env_or_str("HMD_ADV_SURROGATE", "MLR");

  std::fprintf(stderr,
               "[bench] adversarial: scale %.2f, %zu samples x %zu windows, "
               "%zu evasion iters, surrogate %s\n",
               scale, cfg.composition.total(), cfg.collector.num_windows,
               iters, surrogate_scheme.c_str());

  const auto build_binary = [&cfg](const char* what) {
    core::DatasetBuilder builder(cfg);
    std::fprintf(stderr, "[bench] building %s dataset...\n", what);
    return core::DatasetBuilder::to_binary(
        builder.build_multiclass_dataset({}, &bench::bench_pool()));
  };

  const ml::Dataset clean = build_binary("clean");
  Rng split_rng(kSplitSeed);
  const auto [clean_train, clean_test] =
      clean.stratified_split(0.7, split_rng);

  // Train every registry scheme once on the clean training split; frozen
  // shared models double as ensemble members below.
  const std::vector<std::string> schemes = ml::known_schemes();
  std::vector<std::shared_ptr<const ml::Classifier>> models;
  std::vector<SchemeRow> rows(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    std::shared_ptr<ml::Classifier> model =
        ml::make_classifier(schemes[s]);
    model->train(clean_train);
    rows[s].scheme = schemes[s];
    rows[s].clean_acc = ml::evaluate(*model, clean_test).accuracy();
    models.push_back(std::move(model));
  }

  const auto scheme_index = [&schemes](const std::string& name) {
    const auto it = std::find(schemes.begin(), schemes.end(), name);
    HMD_REQUIRE(it != schemes.end(),
                "bench_adversarial: unknown scheme " + name);
    return static_cast<std::size_t>(it - schemes.begin());
  };
  const std::size_t surrogate_idx = scheme_index(surrogate_scheme);

  // The seeded evasion campaign: one within-budget perturbation per
  // malware family, attacking the frozen surrogate.
  workload::EvasionConfig evasion;
  evasion.iterations = iters;
  // A strong but structure-preserving attacker: wider per-knob rescaling
  // and a heavier benign facade than the library defaults, still within
  // the budget the property tests pin (phases never removed/reordered).
  evasion.budget.max_rel_step = 0.45;
  evasion.budget.max_facade_weight = 0.50;
  evasion.step = 0.18;
  {
    // Probe windows keep the real per-window op count (counter magnitudes
    // must match the surrogate's training data) but the short probe shape.
    const std::size_t probe_windows = evasion.collector.num_windows;
    const std::size_t probe_warmup = evasion.collector.warmup_windows;
    evasion.collector = cfg.collector;
    evasion.collector.num_windows = probe_windows;
    evasion.collector.warmup_windows = probe_warmup;
  }
  const std::uint64_t base_seed = evasion.seed;
  workload::EvasionPlan plan;
  std::vector<FamilyRow> families;
  for (workload::AppClass family : workload::malware_classes()) {
    evasion.seed = base_seed + static_cast<std::uint64_t>(family);
    const workload::EvasionResult r = workload::evade_family(
        family, *models[surrogate_idx], evasion);
    FamilyRow row;
    row.family = std::string(workload::app_class_name(family));
    row.clean_score = r.clean_score;
    row.evaded_score = r.evaded_score;
    row.fingerprint = r.perturbation.fingerprint();
    families.push_back(row);
    std::fprintf(stderr,
                 "[bench] evade %-9s surrogate P(malware) %.3f -> %.3f "
                 "(%zu accepted steps)\n",
                 row.family.c_str(), row.clean_score, row.evaded_score,
                 r.accepted_steps);
    plan.set(family, r.perturbation);
  }
  cfg.evasion = plan;

  // Same composition + seeds, perturbed malware: the adversarial twin.
  // Identical row order and labels, so the same split RNG state yields
  // the row-for-row matching test partition.
  const ml::Dataset adv = build_binary("adversarial");
  Rng adv_split_rng(kSplitSeed);
  const auto [adv_train, adv_test] = adv.stratified_split(0.7, adv_split_rng);

  for (std::size_t s = 0; s < schemes.size(); ++s)
    rows[s].adv_acc = ml::evaluate(*models[s], adv_test).accuracy();

  // Ensemble members: the first four preference-list schemes that are
  // neither the primary nor the attack's white-box surrogate (odd total
  // of 5, as majority vote requires). Preference order is by resistance
  // to TRANSFERRED evasion: margin- (SVM), density- (KDE) and
  // single-feature (OneR/stump) decision surfaces barely move under an
  // attack tuned against a different model — that resistance is what the
  // ensemble spends while the attacked primary stays in the rotation.
  const std::vector<std::string> member_prefs = {
      "SVM", "KdeAnomaly", "OneR", "DecisionStump", "JRip"};
  std::size_t attacked = 0, recovered = 0;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    SchemeRow& r = rows[s];
    serve::EnsembleConfig ens;
    ens.seed = kPolicySeed;
    r.best_single_adv = r.adv_acc;
    for (const std::string& pref : member_prefs) {
      if (pref == r.scheme || pref == surrogate_scheme ||
          ens.members.size() == 4)
        continue;
      const std::size_t m = scheme_index(pref);
      ens.members.push_back({pref, models[m], 1001 + ens.members.size()});
      r.best_single_adv = std::max(r.best_single_adv, rows[m].adv_acc);
    }

    ens.kind = serve::EnsembleConfig::Kind::kMajority;
    {
      const serve::ScoringPolicy majority(ens);
      r.majority_clean = policy_accuracy(majority, *models[s], clean_test);
      r.majority_adv = policy_accuracy(majority, *models[s], adv_test);
    }
    ens.kind = serve::EnsembleConfig::Kind::kStochastic;
    {
      const serve::ScoringPolicy stochastic(ens);
      r.stochastic_clean =
          policy_accuracy(stochastic, *models[s], clean_test);
      r.stochastic_adv = policy_accuracy(stochastic, *models[s], adv_test);
    }

    const double drop = r.clean_acc - r.adv_acc;
    r.attacked = drop > kAttackedDrop;
    r.recovery = drop > 0.0 ? (r.stochastic_adv - r.adv_acc) / drop : 0.0;
    r.recovered = r.attacked && r.recovery >= 0.5;
    attacked += r.attacked ? 1 : 0;
    recovered += r.recovered ? 1 : 0;
    std::fprintf(stderr,
                 "[bench] %-20s clean %.3f adv %.3f | majority %.3f | "
                 "stochastic %.3f (recovery %5.1f%%)%s\n",
                 r.scheme.c_str(), r.clean_acc, r.adv_acc, r.majority_adv,
                 r.stochastic_adv, 100.0 * r.recovery,
                 r.attacked ? (r.recovered ? "  ATTACKED+RECOVERED"
                                           : "  ATTACKED") : "");
  }

  const bool criterion_met = attacked > 0 && 2 * recovered > attacked;
  std::fprintf(stderr,
               "[bench] adversarial summary: %zu/%zu attacked schemes "
               "recovered >= 50%% by the stochastic ensemble -> criterion "
               "%s\n",
               recovered, attacked, criterion_met ? "MET" : "NOT MET");

  const std::string path = "BENCH_adversarial.json";
  write_json(path, cfg, scale, iters, surrogate_scheme, families, rows,
             attacked, recovered, criterion_met);
  std::fprintf(stderr, "[bench] adversarial results written to %s\n",
               path.c_str());
  return 0;
}
