// Table 1 + Figure 6: the labelled malware database — per-class sample
// counts and the class distribution of the samples used, mirroring the
// internet-wide distribution of Figure 3 (trojans dominate).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workload/sample_database.hpp"

namespace {

using namespace hmd;

void print_table1() {
  const auto comp = workload::DatabaseComposition::paper_table1();
  const auto db = workload::SampleDatabase::generate(comp, 2018);

  TextTable table("Table 1: Number of samples of different application");
  table.set_header({"Application", "Class", "Samples"});
  for (workload::AppClass c : workload::malware_classes())
    table.add_row({"Malware", std::string(workload::app_class_name(c)),
                   std::to_string(db.count(c))});
  table.add_row({"Benign", "inbuilt/installed programs",
                 std::to_string(db.count(workload::AppClass::kBenign))});
  table.add_row({"", "Total", std::to_string(db.size())});
  table.print(std::cout);

  TextTable dist("Figure 6: Distribution of malware (used) into classes");
  dist.set_header({"Class", "Share of malware"});
  for (const auto& [cls, share] : db.distribution(/*malware_only=*/true))
    dist.add_row({std::string(workload::app_class_name(cls)),
                  hmd::format("%.1f%%", share * 100.0)});
  dist.print(std::cout);

  // A few registry entries, to show the VirusShare/VirusTotal-style
  // metadata the database carries.
  TextTable examples("Sample registry (first entries)");
  examples.set_header({"id", "class", "AV detections"});
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& s = db.samples()[i];
    examples.add_row({s.id, std::string(workload::app_class_name(s.label)),
                      hmd::format("%d/%d", s.av_positives, s.av_total)});
  }
  examples.print(std::cout);
}

void BM_DatabaseGeneration(benchmark::State& state) {
  const auto comp = workload::DatabaseComposition::paper_table1();
  for (auto _ : state) {
    auto db = workload::SampleDatabase::generate(comp, 2018);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_DatabaseGeneration);

void BM_ProfileInstantiation(benchmark::State& state) {
  const auto comp = workload::DatabaseComposition::scaled(0.05);
  const auto db = workload::SampleDatabase::generate(comp, 2018);
  std::size_t i = 0;
  for (auto _ : state) {
    auto profile = db.samples()[i++ % db.size()].profile();
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_ProfileInstantiation);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
