// Figure 19: PCA-assisted MLR vs normal MLR — the thesis's contribution
// claim: multiclass classification with PCA-selected per-class custom
// feature sets beats the same detector on non-custom feature sets
// ("an increase in accuracy of around 7% ... when the accuracy of the ML
// classifier with PCA 8 custom features are compared to the average
// accuracy of the non-custom features").
//
// Reproduced comparison: the PCA-assisted one-vs-rest MLR (each class on
// its own custom k features) against the same architecture on non-custom
// k-feature sets — random subsets (averaged over 5 draws). The bench sweeps
// k = 8 (the paper's setting), 6 and 4: the custom-selection advantage
// grows as the feature budget tightens, because with generous budgets the
// strongly-correlated HPC counters make almost any subset sufficient.
// Plain all-16-feature MLR is printed as an additional reference.
#include <benchmark/benchmark.h>

#include <iostream>
#include <numeric>

#include "bench/bench_common.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hmd;

double random_subset_baseline(const ml::Dataset& train,
                              const ml::Dataset& test, std::size_t k) {
  // Draw the random subsets serially (rng order fixes them), then fan the
  // expensive train/evaluate trials across the pool.
  Rng rng(7);
  const int trials = 5;
  std::vector<core::FeatureSet> subsets;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::size_t> idx(train.num_features());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    idx.resize(k);
    core::FeatureSet fs;
    for (std::size_t f : idx) {
      fs.indices.push_back(f);
      fs.names.push_back(train.attribute(f).name());
    }
    subsets.push_back(std::move(fs));
  }
  const std::vector<double> accuracies = parallel_map(
      &bench::bench_pool(), subsets, [&](const core::FeatureSet& fs) {
        core::PcaAssistedOvr fixed(
            {.scheme = "MLR", .features_per_class = k, .fixed_features = fs});
        fixed.train(train);
        return fixed.evaluate(test).accuracy();
      });
  return std::accumulate(accuracies.begin(), accuracies.end(), 0.0) / trials;
}

void print_fig19() {
  bench::print_banner("Figure 19: PCA-assisted MLR vs normal MLR");
  const auto& [train, test] = bench::multiclass_split();

  TextTable table("multiclass accuracy, PCA-custom vs non-custom features");
  table.set_header({"features k", "PCA-assisted %", "non-custom avg %",
                    "gain (pp)"});
  double custom8 = 0.0;
  ml::EvaluationReport custom8_eval;
  const std::vector<std::size_t> ks = {8, 6, 4};
  // Fan the k-sweep across the pool; the nested baseline fan-out runs
  // inline on whichever thread owns each k.
  const auto sweep =
      parallel_map(&bench::bench_pool(), ks, [&](std::size_t k) {
        core::PcaAssistedOvr custom(
            {.scheme = "MLR", .features_per_class = k});
        custom.train(train);
        return std::pair{custom.evaluate(test),
                         random_subset_baseline(train, test, k)};
      });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto& [eval, baseline] = sweep[i];
    table.add_row({std::to_string(ks[i]),
                   format("%.2f", eval.accuracy() * 100.0),
                   format("%.2f", baseline * 100.0),
                   format("%+.2f", (eval.accuracy() - baseline) * 100.0)});
    if (ks[i] == 8) {
      custom8 = eval.accuracy();
      custom8_eval = eval;
    }
  }
  table.print(std::cout);

  const auto plain = core::train_and_evaluate("MLR", train, test);
  std::cout << format(
      "plain MLR on all 16 features: %.2f%% (reference)\n",
      plain.evaluation.accuracy() * 100.0);
  std::cout << "paper claim: custom-8 beats non-custom by ~7 pp; see "
               "EXPERIMENTS.md for the\nredundancy analysis behind the "
               "smaller margin at k=8 here.\n\n";
  (void)custom8;

  TextTable per_class("per-class recall (%), k=8");
  per_class.set_header({"class", "PCA-assisted", "plain MLR (16)"});
  for (std::size_t c = 0; c < test.num_classes(); ++c)
    per_class.add_row({test.class_attribute().values()[c],
                       format("%.1f", custom8_eval.recall(c) * 100.0),
                       format("%.1f", plain.evaluation.recall(c) * 100.0)});
  per_class.print(std::cout);
}

void BM_TrainPcaAssisted(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  (void)test;
  for (auto _ : state) {
    core::PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8});
    ovr.train(train);
    benchmark::DoNotOptimize(ovr);
  }
}
BENCHMARK(BM_TrainPcaAssisted)->Unit(benchmark::kMillisecond);

void BM_PredictPcaAssisted(benchmark::State& state) {
  const auto& [train, test] = bench::multiclass_split();
  core::PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8});
  ovr.train(train);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ovr.predict(test.features_of(i++ % test.num_instances())));
  }
}
BENCHMARK(BM_PredictPcaAssisted);

}  // namespace

int main(int argc, char** argv) {
  print_fig19();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
