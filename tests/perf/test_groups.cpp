#include "perf/event_group.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::perf {
namespace {

using hwsim::HwEvent;

TEST(EventGroups, SixteenEventsMakeTwoGroupsOfEight) {
  const auto groups = schedule_event_groups(default_feature_events());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 8u);
  EXPECT_EQ(groups[1].size(), 8u);
}

TEST(EventGroups, PreservesEventOrder) {
  const auto events = default_feature_events();
  const auto groups = schedule_event_groups(events);
  std::size_t i = 0;
  for (const auto& g : groups)
    for (HwEvent e : g) EXPECT_EQ(e, events[i++]);
}

TEST(EventGroups, FewerEventsThanRegistersMakeOneGroup) {
  const std::vector<HwEvent> events = {HwEvent::kInstructions,
                                       HwEvent::kCycles};
  const auto groups = schedule_event_groups(events);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(EventGroups, UnevenSplitKeepsRemainder) {
  std::vector<HwEvent> events(11, HwEvent::kInstructions);
  const auto groups = schedule_event_groups(events, 4);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[2].size(), 3u);
}

TEST(EventGroups, RejectsEmptyInput) {
  EXPECT_THROW(schedule_event_groups({}), hmd::PreconditionError);
  EXPECT_THROW(schedule_event_groups({HwEvent::kCycles}, 0),
               hmd::PreconditionError);
}

TEST(DefaultFeatureEvents, MatchesThe16PaperFeatures) {
  const auto events = default_feature_events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(events.front(), HwEvent::kInstructions);
  EXPECT_EQ(events.back(), HwEvent::kNodeStores);
}

}  // namespace
}  // namespace hmd::perf
