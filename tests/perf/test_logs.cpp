#include "perf/perf_log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace hmd::perf {
namespace {

using hwsim::HwEvent;

RunLog sample_log() {
  RunLog run;
  run.sample_id = "VirusShare_0123";
  run.label = "trojan";
  run.events = {HwEvent::kInstructions, HwEvent::kBranchMisses};
  run.samples.push_back({.counts = {1000.0, 42.0}, .window_ms = 10.0});
  run.samples.push_back({.counts = {1100.0, 37.0}, .window_ms = 10.0});
  return run;
}

TEST(PerfLog, WriteContainsMetadataAndCounts) {
  std::ostringstream out;
  write_perf_log(out, sample_log());
  const std::string s = out.str();
  EXPECT_NE(s.find("# sample: VirusShare_0123"), std::string::npos);
  EXPECT_NE(s.find("# label: trojan"), std::string::npos);
  EXPECT_NE(s.find("instructions"), std::string::npos);
  EXPECT_NE(s.find("branch-misses"), std::string::npos);
}

TEST(PerfLog, RoundTrip) {
  std::ostringstream out;
  write_perf_log(out, sample_log());
  std::istringstream in(out.str());
  const RunLog parsed = read_perf_log(in);
  EXPECT_EQ(parsed.sample_id, "VirusShare_0123");
  EXPECT_EQ(parsed.label, "trojan");
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0], HwEvent::kInstructions);
  ASSERT_EQ(parsed.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.samples[0].counts[0], 1000.0);
  EXPECT_DOUBLE_EQ(parsed.samples[1].counts[1], 37.0);
  EXPECT_NEAR(parsed.samples[0].window_ms, 10.0, 1e-9);
}

TEST(PerfLog, MalformedLineThrows) {
  std::istringstream in("10.0 123\n");
  EXPECT_THROW(read_perf_log(in), hmd::ParseError);
}

TEST(PerfLog, UnknownEventThrows) {
  std::istringstream in("10.0 12 not-a-counter\n");
  EXPECT_THROW(read_perf_log(in), hmd::ParseError);
}

TEST(PerfLog, WidthMismatchThrows) {
  RunLog bad = sample_log();
  bad.samples[0].counts.pop_back();
  std::ostringstream out;
  EXPECT_THROW(write_perf_log(out, bad), hmd::PreconditionError);
}

TEST(CombineLogs, ProducesCsvWithClassColumn) {
  std::ostringstream out;
  RunLog a = sample_log();
  RunLog b = sample_log();
  b.sample_id = "benign_01";
  b.label = "benign";
  combine_logs_to_csv(out, {a, b});
  const std::string s = out.str();
  EXPECT_NE(s.find("instructions,branch-misses,class"), std::string::npos);
  EXPECT_NE(s.find(",trojan"), std::string::npos);
  EXPECT_NE(s.find(",benign"), std::string::npos);
  // 1 header + 4 data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(CombineLogs, MismatchedEventListsThrow) {
  RunLog a = sample_log();
  RunLog b = sample_log();
  b.events = {HwEvent::kInstructions, HwEvent::kCacheMisses};
  std::ostringstream out;
  EXPECT_THROW(combine_logs_to_csv(out, {a, b}), hmd::PreconditionError);
}

TEST(CombineLogs, EmptyThrows) {
  std::ostringstream out;
  EXPECT_THROW(combine_logs_to_csv(out, {}), hmd::PreconditionError);
}

}  // namespace
}  // namespace hmd::perf
