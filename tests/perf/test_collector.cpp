#include "perf/collector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "workload/sandbox.hpp"

namespace hmd::perf {
namespace {

using hwsim::HwEvent;

workload::Sandbox make_sandbox(std::uint64_t seed = 21) {
  workload::SampleRecord rec{.id = "t", .label = workload::AppClass::kVirus,
                             .seed = seed};
  return workload::Sandbox(rec, {.host_noise_frac = 0.0});
}

TEST(Collector, ProducesRequestedWindows) {
  HpcCollector collector({.ops_per_window = 500, .num_windows = 5});
  hwsim::Core core;
  auto sb = make_sandbox();
  const auto samples = collector.collect(core, sb);
  ASSERT_EQ(samples.size(), 5u);
  for (const auto& s : samples) EXPECT_EQ(s.counts.size(), 16u);
}

TEST(Collector, DefaultsToSixteenFeatureEvents) {
  HpcCollector collector;
  EXPECT_EQ(collector.events().size(), 16u);
}

TEST(Collector, InstructionCountsNearOpsPerWindow) {
  // The instructions event counts every retired op; after multiplex scaling
  // the estimate should be in the right ballpark.
  CollectorConfig cfg{.ops_per_window = 2000, .num_windows = 8,
                      .mux_scaling_sigma = 0.0};
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb = make_sandbox();
  const auto samples = collector.collect(core, sb);
  // Individual windows can be skewed by multiplexing extrapolation (that is
  // the point of modelling it); the average must stay in the ballpark.
  double mean = 0.0;
  for (const auto& s : samples) mean += s.counts[0];  // instructions
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, 2000.0, 900.0);
}

TEST(Collector, IdealPmuCountsExactly) {
  CollectorConfig cfg{.ops_per_window = 1000, .num_windows = 4,
                      .ideal_pmu = true};
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb = make_sandbox();
  const auto samples = collector.collect(core, sb);
  for (const auto& s : samples)
    EXPECT_DOUBLE_EQ(s.counts[0], 1000.0);  // exact instruction count
}

TEST(Collector, MultiplexedTracksIdealApproximately) {
  // Same workload measured multiplexed vs ideal. Per-window extrapolation
  // error is large for phase-bursty workloads (that is the phenomenon the
  // model exists to capture), so compare aggregates with a loose band.
  CollectorConfig ideal_cfg{.ops_per_window = 4000, .num_windows = 16,
                            .ideal_pmu = true};
  CollectorConfig mux_cfg{.ops_per_window = 4000, .num_windows = 16,
                          .mux_scaling_sigma = 0.0};
  hwsim::Core core;
  auto sb1 = make_sandbox(3);
  const auto ideal = HpcCollector(ideal_cfg).collect(core, sb1);
  auto sb2 = make_sandbox(3);
  const auto mux = HpcCollector(mux_cfg).collect(core, sb2);
  double ideal_instr = 0.0, mux_instr = 0.0;
  for (std::size_t w = 0; w < ideal.size(); ++w) {
    ideal_instr += ideal[w].counts[0];
    mux_instr += mux[w].counts[0];
  }
  EXPECT_NEAR(mux_instr / ideal_instr, 1.0, 0.4);
}

TEST(Collector, ScalingNoiseIsDeterministicInSeed) {
  CollectorConfig cfg{.ops_per_window = 1000, .num_windows = 3,
                      .mux_scaling_sigma = 0.2};
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb1 = make_sandbox(5);
  const auto a = collector.collect(core, sb1, /*noise_seed=*/42);
  auto sb2 = make_sandbox(5);
  const auto b = collector.collect(core, sb2, /*noise_seed=*/42);
  for (std::size_t w = 0; w < a.size(); ++w)
    for (std::size_t i = 0; i < a[w].counts.size(); ++i)
      EXPECT_DOUBLE_EQ(a[w].counts[i], b[w].counts[i]);
}

TEST(Collector, DifferentNoiseSeedsDiffer) {
  CollectorConfig cfg{.ops_per_window = 1000, .num_windows = 3,
                      .mux_scaling_sigma = 0.2};
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb1 = make_sandbox(5);
  const auto a = collector.collect(core, sb1, 1);
  auto sb2 = make_sandbox(5);
  const auto b = collector.collect(core, sb2, 2);
  bool any_diff = false;
  for (std::size_t w = 0; w < a.size(); ++w)
    for (std::size_t i = 0; i < a[w].counts.size(); ++i)
      any_diff |= a[w].counts[i] != b[w].counts[i];
  EXPECT_TRUE(any_diff);
}

TEST(Collector, ResetsCoreBetweenRuns) {
  HpcCollector collector({.ops_per_window = 500, .num_windows = 2});
  hwsim::Core core;
  auto sb1 = make_sandbox(9);
  collector.collect(core, sb1);
  const std::uint64_t cycles_after_first = core.cycles();
  auto sb2 = make_sandbox(9);
  collector.collect(core, sb2);
  EXPECT_EQ(core.cycles(), cycles_after_first);  // identical fresh run
}

TEST(Collector, CountsAreNonNegative) {
  HpcCollector collector({.ops_per_window = 800, .num_windows = 6});
  hwsim::Core core;
  auto sb = make_sandbox(13);
  for (const auto& s : collector.collect(core, sb))
    for (double c : s.counts) EXPECT_GE(c, 0.0);
}

TEST(Collector, RejectsBadConfig) {
  EXPECT_THROW(HpcCollector({.ops_per_window = 0}), hmd::PreconditionError);
  EXPECT_THROW(HpcCollector({.num_windows = 0}), hmd::PreconditionError);
  EXPECT_THROW(HpcCollector({.window_ms = 0.0}), hmd::PreconditionError);
}

TEST(Collector, MoreRotationsReduceExtrapolationError) {
  // With more rotations per window, each event samples more of the window,
  // so the scaled estimate of a uniformly-occurring event (instructions)
  // tightens around the truth.
  auto spread_for = [](std::size_t rotations) {
    CollectorConfig cfg{.ops_per_window = 4000, .num_windows = 12,
                        .mux_scaling_sigma = 0.0,
                        .rotations_per_window = rotations};
    HpcCollector collector(cfg);
    hwsim::Core core;
    auto sb = make_sandbox(17);
    double worst = 0.0;
    for (const auto& w : collector.collect(core, sb))
      worst = std::max(worst, std::abs(w.counts[0] - 4000.0));
    return worst;
  };
  EXPECT_LT(spread_for(8), spread_for(1));
}

TEST(Collector, RotationsPreserveTotalOpsPerWindow) {
  CollectorConfig cfg{.ops_per_window = 4000, .num_windows = 3,
                      .ideal_pmu = true, .rotations_per_window = 4};
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb = make_sandbox(19);
  for (const auto& w : collector.collect(core, sb))
    EXPECT_DOUBLE_EQ(w.counts[0], 4000.0);
}

TEST(Collector, CustomEventListRespected) {
  CollectorConfig cfg;
  cfg.events = {HwEvent::kInstructions, HwEvent::kCycles};
  cfg.ops_per_window = 500;
  cfg.num_windows = 2;
  HpcCollector collector(cfg);
  hwsim::Core core;
  auto sb = make_sandbox();
  const auto samples = collector.collect(core, sb);
  EXPECT_EQ(samples.front().counts.size(), 2u);
}

}  // namespace
}  // namespace hmd::perf
