#include "hwsim/prefetcher.hpp"

#include <gtest/gtest.h>

#include "hwsim/memory_hierarchy.hpp"
#include "util/error.hpp"

namespace hmd::hwsim {
namespace {

TEST(StridePrefetcher, RejectsBadConfig) {
  EXPECT_THROW(StridePrefetcher({.table_entries = 3}),
               hmd::PreconditionError);
  EXPECT_THROW(StridePrefetcher({.degree = 0}), hmd::PreconditionError);
}

TEST(StridePrefetcher, NoPrefetchBeforeConfidence) {
  StridePrefetcher pf({.min_confidence = 2});
  EXPECT_TRUE(pf.observe(0x400, 0x1000).empty());   // first touch
  EXPECT_TRUE(pf.observe(0x400, 0x1040).empty());   // stride observed once
  // second stride repeat reaches confidence
  const auto prefetches = pf.observe(0x400, 0x1080);
  ASSERT_EQ(prefetches.size(), 2u);  // default degree = 2
  EXPECT_EQ(prefetches[0], 0x10C0u);
  EXPECT_EQ(prefetches[1], 0x1100u);
}

TEST(StridePrefetcher, TracksNegativeStrides) {
  StridePrefetcher pf({.degree = 1, .min_confidence = 2});
  pf.observe(0x400, 0x2000);
  pf.observe(0x400, 0x1FC0);
  const auto prefetches = pf.observe(0x400, 0x1F80);
  ASSERT_EQ(prefetches.size(), 1u);
  EXPECT_EQ(prefetches[0], 0x1F40u);
}

TEST(StridePrefetcher, StrideChangeResetsConfidence) {
  StridePrefetcher pf({.min_confidence = 2});
  pf.observe(0x400, 0x1000);
  pf.observe(0x400, 0x1040);
  pf.observe(0x400, 0x1080);        // confident now
  EXPECT_TRUE(pf.observe(0x400, 0x5000).empty());  // stride broke
  EXPECT_TRUE(pf.observe(0x400, 0x5040).empty());  // rebuilt once
  EXPECT_FALSE(pf.observe(0x400, 0x5080).empty()); // confident again
}

TEST(StridePrefetcher, RandomAccessesNeverPrefetch) {
  StridePrefetcher pf;
  const std::uint64_t addrs[] = {0x9123, 0x10, 0x55555, 0x2, 0x884422};
  for (std::uint64_t a : addrs) EXPECT_TRUE(pf.observe(0x400, a).empty());
  EXPECT_EQ(pf.issued(), 0u);
}

TEST(StridePrefetcher, SeparateStreamsPerPc) {
  StridePrefetcher pf({.degree = 1, .min_confidence = 2});
  // Two interleaved strided streams from different pcs.
  pf.observe(0x400, 0x1000);
  pf.observe(0x404, 0x8000);
  pf.observe(0x400, 0x1040);
  pf.observe(0x404, 0x8100);
  EXPECT_FALSE(pf.observe(0x400, 0x1080).empty());
  EXPECT_FALSE(pf.observe(0x404, 0x8200).empty());
}

TEST(StridePrefetcher, ResetForgets) {
  StridePrefetcher pf({.min_confidence = 2});
  pf.observe(0x400, 0x1000);
  pf.observe(0x400, 0x1040);
  pf.observe(0x400, 0x1080);
  pf.reset();
  EXPECT_EQ(pf.issued(), 0u);
  EXPECT_TRUE(pf.observe(0x400, 0x10C0).empty());
}

TEST(HierarchyPrefetch, StreamingMissesDropWithPrefetcher) {
  MemoryHierarchy plain = MemoryHierarchy::miniature();
  MemoryHierarchy prefetching = MemoryHierarchy::miniature();
  prefetching.enable_prefetcher({.degree = 4});
  EXPECT_TRUE(prefetching.prefetcher_enabled());
  EXPECT_FALSE(plain.prefetcher_enabled());

  // Stream 1 MiB of loads from a single pc (a scanner loop).
  for (std::uint64_t a = 0; a < 1u << 20; a += 64) {
    plain.load(a, 0x400);
    prefetching.load(a, 0x400);
  }
  // Prefetch fills land in L2 ahead of demand, so L2 demand misses fall.
  EXPECT_LT(prefetching.l2().misses(), plain.l2().misses() / 2);
  ASSERT_NE(prefetching.prefetcher(), nullptr);
  EXPECT_GT(prefetching.prefetcher()->issued(), 1000u);
}

TEST(HierarchyPrefetch, FillDoesNotPerturbDemandStats) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  mh.enable_prefetcher({.degree = 2});
  for (std::uint64_t a = 0; a < 1u << 16; a += 64) mh.load(a, 0x400);
  // L1D demand loads = exactly the demand stream length.
  EXPECT_EQ(mh.l1d().loads(), (1u << 16) / 64);
}

TEST(HierarchyPrefetch, PrefetchFillsReportedAsDramReads) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  mh.enable_prefetcher({.degree = 2});
  std::uint32_t prefetch_fills = 0;
  for (std::uint64_t a = 0; a < 1u << 20; a += 64)
    prefetch_fills += mh.load(a, 0x400).prefetch_fills;
  EXPECT_GT(prefetch_fills, 1000u);
}

TEST(CacheFill, InstallsWithoutStats) {
  Cache c(miniature_l2());
  c.fill(0x4000);
  EXPECT_EQ(c.loads(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.access(0x4000, false).hit);  // the line is really there
}

TEST(CacheFill, ReportsDirtyEvictions) {
  Cache c({.name = "t", .size_bytes = 1024, .ways = 1, .line_bytes = 64});
  // Dirty a line, then fill a conflicting one.
  c.access(0x0, /*is_store=*/true);
  const auto fill = c.fill(16 * 64);  // same set (16 sets x 64B, 1 way)
  EXPECT_TRUE(fill.writeback);
}

}  // namespace
}  // namespace hmd::hwsim
