#include "hwsim/core.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::hwsim {
namespace {

MicroOp alu(std::uint64_t pc) { return {.kind = OpKind::kAlu, .pc = pc}; }
MicroOp load(std::uint64_t pc, std::uint64_t addr) {
  return {.kind = OpKind::kLoad, .pc = pc, .addr = addr};
}
MicroOp store(std::uint64_t pc, std::uint64_t addr) {
  return {.kind = OpKind::kStore, .pc = pc, .addr = addr};
}
MicroOp branch(std::uint64_t pc, std::uint64_t target, bool taken,
               bool conditional = true) {
  return {.kind = OpKind::kBranch, .pc = pc, .target = target,
          .conditional = conditional, .taken = taken};
}

TEST(Core, CountsInstructions) {
  Core core;
  for (int i = 0; i < 10; ++i) core.execute(alu(0x400000 + 4u * i));
  EXPECT_EQ(core.instructions(), 10u);
  EXPECT_EQ(core.pmu().true_count(HwEvent::kInstructions), 10u);
}

TEST(Core, CountsLoadsAndStores) {
  Core core;
  core.execute(load(0x400000, 0x1000));
  core.execute(store(0x400004, 0x2000));
  EXPECT_EQ(core.pmu().true_count(HwEvent::kL1DcacheLoads), 1u);
  EXPECT_EQ(core.pmu().true_count(HwEvent::kL1DcacheStores), 1u);
}

TEST(Core, ColdLoadCountsWholeMissChain) {
  Core core;
  core.execute(load(0x400000, 0x123450));
  const Pmu& pmu = core.pmu();
  EXPECT_EQ(pmu.true_count(HwEvent::kL1DcacheLoadMisses), 1u);
  EXPECT_EQ(pmu.true_count(HwEvent::kLlcLoadMisses), 1u);
  EXPECT_EQ(pmu.true_count(HwEvent::kNodeLoads), 2u);  // fetch fill + data
}

TEST(Core, BranchEventsCounted) {
  Core core;
  core.execute(branch(0x400000, 0x400100, true));
  EXPECT_EQ(core.pmu().true_count(HwEvent::kBranchInstructions), 1u);
  EXPECT_EQ(core.pmu().true_count(HwEvent::kBranchLoads), 1u);
}

TEST(Core, UnconditionalBranchIsNotABranchLoad) {
  Core core;
  core.execute(branch(0x400000, 0x400100, true, /*conditional=*/false));
  EXPECT_EQ(core.pmu().true_count(HwEvent::kBranchInstructions), 1u);
  EXPECT_EQ(core.pmu().true_count(HwEvent::kBranchLoads), 0u);
}

TEST(Core, PredictableLoopHasFewBranchMisses) {
  Core core;
  for (int i = 0; i < 2000; ++i)
    core.execute(branch(0x400000, 0x400000, true));
  EXPECT_LT(core.pmu().true_count(HwEvent::kBranchMisses), 20u);
}

TEST(Core, RandomBranchesMissOften) {
  Core core;
  hmd::Rng rng(11);
  for (int i = 0; i < 2000; ++i)
    core.execute(branch(0x400000, 0x400100, rng.bernoulli(0.5)));
  EXPECT_GT(core.pmu().true_count(HwEvent::kBranchMisses), 500u);
}

TEST(Core, CyclesAdvance) {
  Core core;
  core.execute(alu(0x400000));
  const std::uint64_t after_one = core.cycles();
  EXPECT_GT(after_one, 0u);
  core.execute(load(0x400004, 0x99999000));  // cold miss: big charge
  EXPECT_GT(core.cycles() - after_one, 100u);
}

TEST(Core, BusCyclesTrackCycleRatio) {
  Core core;
  for (int i = 0; i < 5000; ++i) core.execute(alu(0x400000 + 4u * (i % 16)));
  const auto cycles = core.pmu().true_count(HwEvent::kCycles);
  const auto bus = core.pmu().true_count(HwEvent::kBusCycles);
  EXPECT_NEAR(static_cast<double>(bus),
              static_cast<double>(cycles) / 33.0, 2.0);
}

TEST(Core, SequentialFetchTouchesICacheOncePerLine) {
  Core core;
  // 32 sequential ALU ops = 128 bytes = 2 fetch lines.
  for (int i = 0; i < 32; ++i) core.execute(alu(0x400000 + 4u * i));
  EXPECT_EQ(core.memory().l1i().accesses(), 2u);
}

TEST(Core, TakenBranchForcesRefetch) {
  Core core;
  core.execute(alu(0x400000));
  core.execute(branch(0x400004, 0x400000, true));
  core.execute(alu(0x400000));  // same line as first fetch, but refetched
  EXPECT_GE(core.memory().l1i().accesses(), 2u);
}

TEST(Core, IpcIsPositiveAndBounded) {
  Core core;
  for (int i = 0; i < 1000; ++i) core.execute(alu(0x400000 + 4u * (i % 8)));
  EXPECT_GT(core.ipc(), 0.1);
  EXPECT_LE(core.ipc(), 1.0);
}

TEST(Core, ElapsedTimeMatchesFrequency) {
  Core core(CoreConfig{.frequency_ghz = 2.0});
  for (int i = 0; i < 100; ++i) core.execute(alu(0x400000));
  EXPECT_NEAR(core.elapsed_ns(),
              static_cast<double>(core.cycles()) / 2.0, 1e-9);
}

TEST(Core, SyncPmuTimeAdvancesRegisters) {
  Core core;
  core.pmu().program(0, HwEvent::kInstructions);
  for (int i = 0; i < 100; ++i) core.execute(alu(0x400000 + 4u * i));
  core.sync_pmu_time();
  EXPECT_GT(core.pmu().read(0).time_running_ns, 0u);
}

TEST(Core, ResetRestoresColdState) {
  Core core;
  core.execute(load(0x400000, 0x5000));
  core.reset();
  EXPECT_EQ(core.cycles(), 0u);
  EXPECT_EQ(core.instructions(), 0u);
  EXPECT_EQ(core.pmu().true_count(HwEvent::kInstructions), 0u);
  // Caches cold again.
  core.execute(load(0x400000, 0x5000));
  EXPECT_EQ(core.pmu().true_count(HwEvent::kL1DcacheLoadMisses), 1u);
}

TEST(Core, StoreStreamProducesNodeStores) {
  Core core(CoreConfig{}, MemoryHierarchy::miniature());
  std::uint64_t addr = 0;
  for (int i = 0; i < 40000; ++i) {
    core.execute(store(0x400000, addr));
    addr += 64;
  }
  EXPECT_GT(core.pmu().true_count(HwEvent::kNodeStores), 100u);
}

TEST(Core, RejectsBadConfig) {
  EXPECT_THROW(Core(CoreConfig{.frequency_ghz = 0.0}),
               hmd::PreconditionError);
  EXPECT_THROW(Core(CoreConfig{.bus_ratio = 0}), hmd::PreconditionError);
}

}  // namespace
}  // namespace hmd::hwsim
