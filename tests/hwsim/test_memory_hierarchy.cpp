#include "hwsim/memory_hierarchy.hpp"

#include <gtest/gtest.h>

namespace hmd::hwsim {
namespace {

TEST(Hierarchy, ColdLoadMissesAllLevels) {
  MemoryHierarchy mh;
  const AccessOutcome out = mh.load(0x10000);
  EXPECT_TRUE(out.l1_miss);
  EXPECT_TRUE(out.l2_miss);
  EXPECT_TRUE(out.llc_accessed);
  EXPECT_TRUE(out.llc_miss);
  EXPECT_TRUE(out.tlb_miss);
}

TEST(Hierarchy, WarmLoadHitsL1) {
  MemoryHierarchy mh;
  mh.load(0x10000);
  const AccessOutcome out = mh.load(0x10000);
  EXPECT_FALSE(out.l1_miss);
  EXPECT_FALSE(out.llc_accessed);
  EXPECT_FALSE(out.tlb_miss);
}

TEST(Hierarchy, L1HitLatencyLowest) {
  MemoryHierarchy mh;
  const auto cold = mh.load(0x10000);
  const auto warm = mh.load(0x10000);
  EXPECT_GT(cold.latency_cycles, warm.latency_cycles);
  EXPECT_EQ(warm.latency_cycles, 1u);
}

TEST(Hierarchy, FetchUsesICacheAndITlb) {
  MemoryHierarchy mh;
  mh.fetch(0x400000);
  EXPECT_EQ(mh.l1i().accesses(), 1u);
  EXPECT_EQ(mh.l1d().accesses(), 0u);
  EXPECT_EQ(mh.itlb().accesses(), 1u);
  EXPECT_EQ(mh.dtlb().accesses(), 0u);
}

TEST(Hierarchy, LoadUsesDCacheAndDTlb) {
  MemoryHierarchy mh;
  mh.load(0x50000000);
  EXPECT_EQ(mh.l1d().accesses(), 1u);
  EXPECT_EQ(mh.l1i().accesses(), 0u);
  EXPECT_EQ(mh.dtlb().accesses(), 1u);
}

TEST(Hierarchy, L1MissL2HitStopsThere) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  // Touch enough lines to overflow miniature L1D (16 KiB = 256 lines) but
  // stay inside L2 (64 KiB = 1024 lines).
  for (std::uint64_t line = 0; line < 512; ++line) mh.load(line * 64);
  // Revisit line 0: out of L1 (LRU) but still in L2.
  const AccessOutcome out = mh.load(0);
  EXPECT_TRUE(out.l1_miss);
  EXPECT_FALSE(out.l2_miss);
  EXPECT_FALSE(out.llc_accessed);
}

TEST(Hierarchy, DirtyStreamGeneratesNodeStores) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  // Stream stores over 4x the miniature LLC (256 KiB): dirty lines must be
  // written back to DRAM as they are evicted.
  std::uint32_t node_stores = 0;
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < 4u * 256 * 1024; a += 64)
      node_stores += mh.store(a).node_stores;
  EXPECT_GT(node_stores, 1000u);
}

TEST(Hierarchy, CleanStreamGeneratesNoNodeStores) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  std::uint32_t node_stores = 0;
  for (std::uint64_t a = 0; a < 4u * 256 * 1024; a += 64)
    node_stores += mh.load(a).node_stores;
  EXPECT_EQ(node_stores, 0u);
}

TEST(Hierarchy, FlushRestoresColdState) {
  MemoryHierarchy mh;
  mh.load(0x1234000);
  mh.flush();
  const AccessOutcome out = mh.load(0x1234000);
  EXPECT_TRUE(out.l1_miss);
  EXPECT_TRUE(out.llc_miss);
  EXPECT_TRUE(out.tlb_miss);
}

TEST(Hierarchy, SmallWorkingSetNeverReachesLlc) {
  MemoryHierarchy mh = MemoryHierarchy::miniature();
  // 8 KiB hot set fits in L1D after warmup.
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t a = 0; a < 8 * 1024; a += 64) mh.load(a);
  EXPECT_EQ(mh.llc().accesses(), mh.l2().misses() + 0u);
  EXPECT_LE(mh.llc().accesses(), 128u);  // only cold fills
}

TEST(Hierarchy, TlbMissAddsWalkLatency) {
  MemoryHierarchy mh;
  const auto first = mh.load(0x77777000);   // TLB miss
  mh.flush();
  // Same cache path but pre-warm only the TLB.
  mh.load(0x77777000);
  const auto warm_tlb = mh.load(0x77777040);  // same page, new line → no walk
  EXPECT_GT(first.latency_cycles, warm_tlb.latency_cycles);
}

}  // namespace
}  // namespace hmd::hwsim
