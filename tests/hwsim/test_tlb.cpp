#include "hwsim/tlb.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::hwsim {
namespace {

TEST(Tlb, RejectsBadConfig) {
  EXPECT_THROW(Tlb({.entries = 0}), hmd::PreconditionError);
  EXPECT_THROW(Tlb({.entries = 4, .page_bits = 40}), hmd::PreconditionError);
}

TEST(Tlb, FirstTranslationMisses) {
  Tlb tlb({.entries = 4});
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, SamePageHits) {
  Tlb tlb({.entries = 4});
  tlb.access(0x1000);
  EXPECT_TRUE(tlb.access(0x1FFF));  // same 4 KiB page
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, DifferentPagesMiss) {
  Tlb tlb({.entries = 4});
  tlb.access(0x1000);
  EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruEviction) {
  Tlb tlb({.entries = 2});
  tlb.access(0x1000);  // A
  tlb.access(0x2000);  // B
  tlb.access(0x1000);  // touch A
  tlb.access(0x3000);  // evicts B
  EXPECT_TRUE(tlb.access(0x1000));
  EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, WorkingSetWithinReachAllHits) {
  Tlb tlb({.entries = 8});
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t p = 0; p < 8; ++p) tlb.access(p << 12);
  EXPECT_EQ(tlb.misses(), 8u);
}

TEST(Tlb, WorkingSetBeyondReachThrashes) {
  Tlb tlb({.entries = 8});
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t p = 0; p < 64; ++p) tlb.access(p << 12);
  EXPECT_DOUBLE_EQ(tlb.miss_rate(), 1.0);
}

TEST(Tlb, FlushInvalidates) {
  Tlb tlb({.entries = 4});
  tlb.access(0x1000);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, ResetStatsKeepsEntries) {
  Tlb tlb({.entries = 4});
  tlb.access(0x1000);
  tlb.reset_stats();
  EXPECT_EQ(tlb.accesses(), 0u);
  EXPECT_TRUE(tlb.access(0x1000));
}

TEST(Tlb, LargePagesWidenReach) {
  Tlb small({.entries = 2, .page_bits = 12});
  Tlb large({.entries = 2, .page_bits = 21});  // 2 MiB pages
  for (std::uint64_t a = 0; a < 4u << 12; a += 1 << 12) {
    small.access(a);
    large.access(a);
  }
  EXPECT_GT(small.misses(), large.misses());
}

}  // namespace
}  // namespace hmd::hwsim
