#include "hwsim/events.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace hmd::hwsim {
namespace {

TEST(Events, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const auto e = static_cast<HwEvent>(i);
    EXPECT_EQ(event_from_name(event_name(e)), e);
  }
}

TEST(Events, NamesAreUnique) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumEvents; ++i)
    names.insert(event_name(static_cast<HwEvent>(i)));
  EXPECT_EQ(names.size(), kNumEvents);
}

TEST(Events, UnknownNameThrows) {
  EXPECT_THROW(event_from_name("not-an-event"), hmd::ParseError);
}

TEST(Events, SixteenFeatureEvents) {
  const auto& features = feature_events();
  EXPECT_EQ(features.size(), 16u);
  std::set<HwEvent> unique(features.begin(), features.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Events, FeatureEventsMatchThesisNames) {
  // The 16 events of the thesis's WEKA screenshot / Table 2.
  const auto& features = feature_events();
  EXPECT_EQ(event_name(features[0]), "instructions");
  EXPECT_EQ(event_name(features[1]), "branch-instructions");
  EXPECT_EQ(event_name(features[4]), "cache-references");
  EXPECT_EQ(event_name(features[15]), "node-stores");
}

TEST(Events, MoreEventsThanRegistersExist) {
  // Multiplexing pressure requires a larger event inventory than the 8
  // registers, as on the real Haswell PMU.
  EXPECT_GT(kNumEvents, 8u);
}

}  // namespace
}  // namespace hmd::hwsim
