#include "hwsim/pmu.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::hwsim {
namespace {

TEST(Pmu, GroundTruthAccumulates) {
  Pmu pmu;
  pmu.add(HwEvent::kInstructions, 5);
  pmu.add(HwEvent::kInstructions);
  EXPECT_EQ(pmu.true_count(HwEvent::kInstructions), 6u);
  EXPECT_EQ(pmu.true_count(HwEvent::kCacheMisses), 0u);
}

TEST(Pmu, ProgrammedRegisterCounts) {
  Pmu pmu;
  pmu.program(0, HwEvent::kBranchMisses);
  pmu.add(HwEvent::kBranchMisses, 3);
  EXPECT_EQ(pmu.read(0).value, 3u);
}

TEST(Pmu, UnprogrammedEventNotCaptured) {
  Pmu pmu;
  pmu.program(0, HwEvent::kBranchMisses);
  pmu.add(HwEvent::kCacheMisses, 7);
  EXPECT_EQ(pmu.read(0).value, 0u);
  EXPECT_EQ(pmu.true_count(HwEvent::kCacheMisses), 7u);
}

TEST(Pmu, StoppedRegisterFreezes) {
  Pmu pmu;
  pmu.program(0, HwEvent::kInstructions);
  pmu.add(HwEvent::kInstructions, 2);
  pmu.stop(0);
  pmu.add(HwEvent::kInstructions, 10);
  EXPECT_EQ(pmu.read(0).value, 2u);
  EXPECT_EQ(pmu.true_count(HwEvent::kInstructions), 12u);
}

TEST(Pmu, ReprogramClearsValue) {
  Pmu pmu;
  pmu.program(0, HwEvent::kInstructions);
  pmu.add(HwEvent::kInstructions, 9);
  pmu.program(0, HwEvent::kInstructions);
  EXPECT_EQ(pmu.read(0).value, 0u);
}

TEST(Pmu, TimeAccruesOnlyWhileActive) {
  Pmu pmu;
  pmu.program(0, HwEvent::kCycles);
  pmu.advance_time(100);
  pmu.stop(0);
  pmu.advance_time(100);
  EXPECT_EQ(pmu.read(0).time_running_ns, 100u);
}

TEST(Pmu, MultipleRegistersSameEvent) {
  Pmu pmu;
  pmu.program(0, HwEvent::kCycles);
  pmu.program(1, HwEvent::kCycles);
  pmu.add(HwEvent::kCycles, 4);
  EXPECT_EQ(pmu.read(0).value, 4u);
  EXPECT_EQ(pmu.read(1).value, 4u);
}

TEST(Pmu, EightCountersAvailable) {
  Pmu pmu;
  for (std::size_t r = 0; r < Pmu::kNumCounters; ++r)
    pmu.program(r, static_cast<HwEvent>(r));
  EXPECT_EQ(Pmu::kNumCounters, 8u);  // Haswell i5-4590
  for (std::size_t r = 0; r < Pmu::kNumCounters; ++r)
    EXPECT_TRUE(pmu.is_active(r));
}

TEST(Pmu, SlotOutOfRangeThrows) {
  Pmu pmu;
  EXPECT_THROW(pmu.program(8, HwEvent::kCycles), hmd::PreconditionError);
  EXPECT_THROW((void)pmu.read(8), hmd::PreconditionError);
  EXPECT_THROW(pmu.stop(8), hmd::PreconditionError);
}

TEST(Pmu, ProgrammedEventQuery) {
  Pmu pmu;
  EXPECT_FALSE(pmu.programmed_event(0).has_value());
  pmu.program(0, HwEvent::kLlcLoads);
  EXPECT_EQ(pmu.programmed_event(0), HwEvent::kLlcLoads);
}

TEST(Pmu, ResetClearsEverything) {
  Pmu pmu;
  pmu.program(0, HwEvent::kInstructions);
  pmu.add(HwEvent::kInstructions, 5);
  pmu.advance_time(10);
  pmu.reset();
  EXPECT_EQ(pmu.true_count(HwEvent::kInstructions), 0u);
  EXPECT_FALSE(pmu.is_active(0));
  EXPECT_EQ(pmu.read(0).value, 0u);
}

}  // namespace
}  // namespace hmd::hwsim
