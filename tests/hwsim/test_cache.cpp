#include "hwsim/cache.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::hwsim {
namespace {

CacheConfig tiny_cache(std::uint32_t ways = 2) {
  // 1 KiB, 64 B lines → 16 lines; 2-way → 8 sets.
  return {.name = "T", .size_bytes = 1024, .ways = ways, .line_bytes = 64};
}

TEST(CacheConfig, GeometryComputation) {
  const CacheConfig c = haswell_l1d();
  EXPECT_EQ(c.num_sets(), 64u);  // 32 KiB / 64 B / 8 ways
  c.validate();
}

TEST(CacheConfig, RejectsNonPowerOfTwoLines) {
  CacheConfig c = tiny_cache();
  c.line_bytes = 48;
  EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(CacheConfig, RejectsIndivisibleCapacity) {
  CacheConfig c{.name = "bad", .size_bytes = 1000, .ways = 2,
                .line_bytes = 64};
  EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(Cache, FirstAccessMisses) {
  Cache c(tiny_cache());
  const auto r = c.access(0x1000, false);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(c.load_misses(), 1u);
}

TEST(Cache, SecondAccessSameLineHits) {
  Cache c(tiny_cache());
  c.access(0x1000, false);
  const auto r = c.access(0x1020, false);  // same 64B line
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.loads(), 2u);
  EXPECT_EQ(c.load_misses(), 1u);
}

TEST(Cache, DifferentLinesMissIndependently) {
  Cache c(tiny_cache());
  c.access(0x0, false);
  const auto r = c.access(0x40, false);
  EXPECT_FALSE(r.hit);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way set: fill both ways, touch the first, insert a third conflicting
  // line; the second (least recent) must be evicted.
  Cache c(tiny_cache());
  const std::uint64_t set_stride = 8 * 64;  // 8 sets
  c.access(0 * set_stride, false);          // way A
  c.access(1 * set_stride, false);          // way B
  c.access(0 * set_stride, false);          // touch A
  c.access(2 * set_stride, false);          // evicts B
  EXPECT_TRUE(c.access(0 * set_stride, false).hit);   // A still present
  EXPECT_FALSE(c.access(1 * set_stride, false).hit);  // B evicted
}

TEST(Cache, DirtyEvictionSignalsWriteback) {
  Cache c(tiny_cache());
  const std::uint64_t set_stride = 8 * 64;
  c.access(0, true);                       // dirty line in way A
  c.access(1 * set_stride, false);         // way B
  const auto r = c.access(2 * set_stride, false);  // evicts dirty A
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache c(tiny_cache());
  const std::uint64_t set_stride = 8 * 64;
  c.access(0, false);
  c.access(1 * set_stride, false);
  const auto r = c.access(2 * set_stride, false);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, StoreMissesCounted) {
  Cache c(tiny_cache());
  c.access(0x2000, true);
  EXPECT_EQ(c.stores(), 1u);
  EXPECT_EQ(c.store_misses(), 1u);
  c.access(0x2000, true);
  EXPECT_EQ(c.store_misses(), 1u);
}

TEST(Cache, FlushDropsEverything) {
  Cache c(tiny_cache());
  c.access(0x3000, false);
  c.flush();
  EXPECT_FALSE(c.access(0x3000, false).hit);
}

TEST(Cache, ResetStatsKeepsContents) {
  Cache c(tiny_cache());
  c.access(0x3000, false);
  c.reset_stats();
  EXPECT_EQ(c.loads(), 0u);
  EXPECT_TRUE(c.access(0x3000, false).hit);
}

TEST(Cache, MissRateComputation) {
  Cache c(tiny_cache());
  EXPECT_EQ(c.miss_rate(), 0.0);
  c.access(0x0, false);   // miss
  c.access(0x0, false);   // hit
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits) {
  Cache c(tiny_cache());
  // 8 distinct lines in a 16-line cache; first pass misses, later passes hit.
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t line = 0; line < 8; ++line)
      c.access(line * 64, false);
  EXPECT_EQ(c.load_misses(), 8u);
  EXPECT_EQ(c.loads(), 24u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(tiny_cache());
  // 64 distinct lines cycling through a 16-line cache: every access misses.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t line = 0; line < 64; ++line)
      c.access(line * 64, false);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 1.0);
}

// Geometry sweep: invariants hold across configurations.
struct Geometry {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometrySweep, SequentialScanMissesOncePerLine) {
  const auto [size, ways] = GetParam();
  Cache c({.name = "S", .size_bytes = size, .ways = ways, .line_bytes = 64});
  const std::uint64_t lines = size / 64;
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  EXPECT_EQ(c.load_misses(), lines);
  // Second pass fully hits (fits exactly).
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  EXPECT_EQ(c.load_misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(Geometry{1024, 1}, Geometry{1024, 2}, Geometry{4096, 4},
                      Geometry{16384, 8}, Geometry{65536, 16}));

// Replacement-policy behaviour.

TEST(CachePolicy, RoundRobinCyclesWays) {
  Cache c({.name = "rr", .size_bytes = 1024, .ways = 2, .line_bytes = 64,
           .policy = ReplacementPolicy::kRoundRobin});
  const std::uint64_t set_stride = 8 * 64;
  c.access(0 * set_stride, false);  // way 0
  c.access(1 * set_stride, false);  // way 1
  c.access(0 * set_stride, false);  // touch A (irrelevant to round-robin)
  c.access(2 * set_stride, false);  // evicts way 0 (A) despite recency
  EXPECT_FALSE(c.access(0 * set_stride, false).hit);
}

TEST(CachePolicy, RandomIsDeterministicPerInstance) {
  auto run = [] {
    Cache c({.name = "r", .size_bytes = 1024, .ways = 4, .line_bytes = 64,
             .policy = ReplacementPolicy::kRandom});
    std::uint64_t misses = 0;
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
      misses += !c.access(a % (8 * 1024), false).hit;
    return misses;
  };
  EXPECT_EQ(run(), run());
}

TEST(CachePolicy, LruBeatsRandomOnReuseHeavyPattern) {
  auto misses_with = [](ReplacementPolicy policy) {
    Cache c({.name = "p", .size_bytes = 4096, .ways = 4, .line_bytes = 64,
             .policy = policy});
    std::uint64_t misses = 0;
    // Hot set reused constantly + cold streaming interference.
    std::uint64_t cold = 1 << 20;
    for (int round = 0; round < 2000; ++round) {
      for (std::uint64_t h = 0; h < 8; ++h)
        misses += !c.access(h * 64, false).hit;  // hot lines
      cold += 64;
      misses += !c.access(cold, false).hit;  // streaming line
    }
    return misses;
  };
  EXPECT_LT(misses_with(ReplacementPolicy::kLru),
            misses_with(ReplacementPolicy::kRandom));
}

TEST(CachePolicy, AllPoliciesAgreeOnFullyResidentWorkingSets) {
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kRoundRobin,
        ReplacementPolicy::kRandom}) {
    Cache c({.name = "x", .size_bytes = 2048, .ways = 2, .line_bytes = 64,
             .policy = policy});
    for (int pass = 0; pass < 3; ++pass)
      for (std::uint64_t a = 0; a < 2048; a += 64) c.access(a, false);
    EXPECT_EQ(c.load_misses(), 32u);  // compulsory only
  }
}

TEST(HaswellConfigs, AllValidate) {
  haswell_l1i().validate();
  haswell_l1d().validate();
  haswell_l2().validate();
  haswell_llc().validate();
  miniature_l1i().validate();
  miniature_l1d().validate();
  miniature_l2().validate();
  miniature_llc().validate();
}

TEST(HaswellConfigs, MiniatureIsSmallerSameShape) {
  EXPECT_LT(miniature_llc().size_bytes, haswell_llc().size_bytes);
  EXPECT_EQ(miniature_l1d().line_bytes, haswell_l1d().line_bytes);
}

}  // namespace
}  // namespace hmd::hwsim
