#include "hwsim/branch_predictor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::hwsim {
namespace {

TEST(BranchPredictor, RejectsBadConfig) {
  EXPECT_THROW(BranchPredictor({.history_bits = 0}), hmd::PreconditionError);
  EXPECT_THROW(BranchPredictor({.btb_entries = 1000}), hmd::PreconditionError);
}

TEST(BranchPredictor, LearnsAlwaysTakenLoop) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x400100;
  for (int i = 0; i < 1000; ++i) bp.predict_and_update(pc, true, 0x400080);
  // After warmup, the loop branch is essentially always predicted.
  EXPECT_LT(bp.misprediction_rate(), 0.02);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken) {
  BranchPredictor bp;
  for (int i = 0; i < 1000; ++i) bp.predict_and_update(0x400100, false, 0);
  EXPECT_LT(bp.misprediction_rate(), 0.02);
}

TEST(BranchPredictor, RandomBranchesMispredictHalf) {
  BranchPredictor bp;
  hmd::Rng rng(3);
  for (int i = 0; i < 20000; ++i)
    bp.predict_and_update(0x400100, rng.bernoulli(0.5), 0x400200);
  EXPECT_NEAR(bp.misprediction_rate(), 0.5, 0.06);
}

TEST(BranchPredictor, BiasedBranchesTrackBias) {
  BranchPredictor bp;
  hmd::Rng rng(5);
  for (int i = 0; i < 20000; ++i)
    bp.predict_and_update(0x400100, rng.bernoulli(0.9), 0x400200);
  // Mispredicts roughly the minority direction.
  EXPECT_LT(bp.misprediction_rate(), 0.2);
  EXPECT_GT(bp.misprediction_rate(), 0.05);
}

TEST(BranchPredictor, BtbTargetChangeCausesMiss) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x400100;
  for (int i = 0; i < 100; ++i) bp.predict_and_update(pc, true, 0xA000);
  bp.reset_stats();
  // Same direction but a new target: first prediction must miss.
  bp.predict_and_update(pc, true, 0xB000);
  EXPECT_EQ(bp.mispredictions(), 1u);
  // Target learned; next one hits.
  bp.predict_and_update(pc, true, 0xB000);
  EXPECT_EQ(bp.mispredictions(), 1u);
}

TEST(BranchPredictor, AlternatingPatternLearnedByHistory) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x400400;
  bool taken = false;
  for (int i = 0; i < 4000; ++i) {
    bp.predict_and_update(pc, taken, 0x400500);
    taken = !taken;
  }
  // Gshare's global history disambiguates a strict alternation.
  EXPECT_LT(bp.misprediction_rate(), 0.2);
}

TEST(BranchPredictor, StatsCounting) {
  BranchPredictor bp;
  bp.predict_and_update(0x1, true, 0x2);
  bp.predict_and_update(0x1, true, 0x2);
  EXPECT_EQ(bp.branches(), 2u);
  bp.reset_stats();
  EXPECT_EQ(bp.branches(), 0u);
  EXPECT_EQ(bp.mispredictions(), 0u);
}

TEST(BranchPredictor, ResetForgetsTraining) {
  BranchPredictor bp;
  const std::uint64_t pc = 0x400100;
  for (int i = 0; i < 1000; ++i) bp.predict_and_update(pc, true, 0xA0);
  bp.reset();
  bp.reset_stats();
  bp.predict_and_update(pc, true, 0xA0);
  EXPECT_EQ(bp.mispredictions(), 1u);  // counters back to weakly-not-taken
}

TEST(BranchPredictor, ColdPredictorRateIsZeroWithNoBranches) {
  BranchPredictor bp;
  EXPECT_EQ(bp.misprediction_rate(), 0.0);
}

// Sweep: predictable loops beat random control flow at every table size.
class PredictorSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PredictorSizeSweep, LoopsBeatRandom) {
  const std::uint32_t bits = GetParam();
  BranchPredictor loops({.history_bits = bits, .table_bits = bits});
  BranchPredictor random({.history_bits = bits, .table_bits = bits});
  hmd::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    loops.predict_and_update(0x100, i % 16 != 15, 0x80);
    random.predict_and_update(0x100, rng.bernoulli(0.5), 0x80);
  }
  EXPECT_LT(loops.misprediction_rate(), random.misprediction_rate());
}

INSTANTIATE_TEST_SUITE_P(TableBits, PredictorSizeSweep,
                         ::testing::Values(8u, 10u, 12u, 14u));

}  // namespace
}  // namespace hmd::hwsim
