#include "core/detector.hpp"

#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "ml/zero_r.hpp"
#include "util/error.hpp"

namespace hmd::core {
namespace {

struct SharedData {
  ml::Dataset multi;
  ml::Dataset multi_train;
  ml::Dataset multi_test;
  ml::Dataset binary_train;
  ml::Dataset binary_test;
};

const SharedData& shared() {
  static const SharedData data = [] {
    PipelineConfig cfg = PipelineConfig::quick(0.05, 6);
    cfg.collector.ops_per_window = 1500;
    ml::Dataset multi = DatasetBuilder(cfg).build_multiclass_dataset();
    Rng rng(17);
    auto [mtrain, mtest] = multi.stratified_split(0.7, rng);
    const ml::Dataset binary = DatasetBuilder::to_binary(multi);
    Rng rng2(18);
    auto [btrain, btest] = binary.stratified_split(0.7, rng2);
    return SharedData{std::move(multi), std::move(mtrain), std::move(mtest),
                      std::move(btrain), std::move(btest)};
  }();
  return data;
}

TEST(TrainAndEvaluate, ReturnsTrainedModelWithEvaluation) {
  const auto tm =
      train_and_evaluate("OneR", shared().binary_train, shared().binary_test);
  ASSERT_NE(tm.model, nullptr);
  EXPECT_EQ(tm.evaluation.total(), shared().binary_test.num_instances());
  EXPECT_GT(tm.evaluation.accuracy(), 0.5);
}

TEST(BinaryStudy, RequiresBinaryDatasets) {
  EXPECT_THROW(BinaryStudy(shared().multi_train, shared().multi_test),
               PreconditionError);
}

TEST(BinaryStudy, RunsAllSchemesOnFullFeatures) {
  const BinaryStudy study(shared().binary_train, shared().binary_test);
  const auto rows = study.run({"OneR", "JRip", "J48"});
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.num_features, 16u);
    EXPECT_GT(row.accuracy(), 0.5);
    EXPECT_GT(row.synthesis.area_slices(), 0.0);
    EXPECT_GT(row.accuracy_per_slice(), 0.0);
  }
}

TEST(BinaryStudy, ProjectionReducesFeatureCount) {
  const BinaryStudy study(shared().binary_train, shared().binary_test);
  FeatureSet fs;
  fs.indices = {0, 2, 4, 6};
  const auto rows = study.run({"OneR"}, &fs);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.front().num_features, 4u);
}

TEST(BinaryStudy, MlpCostsMoreAreaThanOneR) {
  const BinaryStudy study(shared().binary_train, shared().binary_test);
  const auto rows = study.run({"OneR", "MLP"});
  EXPECT_GT(rows[1].synthesis.area_slices(),
            10.0 * rows[0].synthesis.area_slices());
  // ... which is exactly why OneR wins accuracy/area (Fig. 16).
  EXPECT_GT(rows[0].accuracy_per_slice(), rows[1].accuracy_per_slice());
}

TEST(PcaAssistedOvr, TrainsAndPredictsValidClasses) {
  PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8});
  ovr.train(shared().multi_train);
  EXPECT_EQ(ovr.class_features().size(), 6u);
  for (const auto& fs : ovr.class_features())
    EXPECT_EQ(fs.indices.size(), 8u);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_LT(ovr.predict(shared().multi_test.features_of(i)), 6u);
}

TEST(PcaAssistedOvr, EvaluationBeatsChance) {
  PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8});
  ovr.train(shared().multi_train);
  const auto ev = ovr.evaluate(shared().multi_test);
  // Majority class (trojan) is ~38%; a real detector does much better.
  EXPECT_GT(ev.accuracy(), 0.55);
}

TEST(PcaAssistedOvr, FixedFeatureBaselineUsesGivenSubset) {
  FeatureSet fs;
  fs.indices = {1, 3, 5, 7};
  PcaAssistedOvr ovr(
      {.scheme = "MLR", .features_per_class = 4, .fixed_features = fs});
  ovr.train(shared().multi_train);
  for (const auto& class_fs : ovr.class_features())
    EXPECT_EQ(class_fs.indices, fs.indices);
}

TEST(PcaAssistedOvr, CustomBeatsMismatchedFeatureSets) {
  // The thesis's Fig. 19 comparison: per-class custom features vs the same
  // architecture on non-custom subsets.
  PcaAssistedOvr custom({.scheme = "MLR", .features_per_class = 8});
  custom.train(shared().multi_train);
  const double custom_acc = custom.evaluate(shared().multi_test).accuracy();

  FeatureSet arbitrary;
  arbitrary.indices = {0, 1, 2, 3, 4, 5, 6, 7};  // first half, un-selected
  PcaAssistedOvr fixed({.scheme = "MLR", .features_per_class = 8,
                        .fixed_features = arbitrary});
  fixed.train(shared().multi_train);
  const double fixed_acc = fixed.evaluate(shared().multi_test).accuracy();
  EXPECT_GT(custom_acc, fixed_acc - 0.02);  // custom at least matches
}

TEST(PcaAssistedOvr, RequiresSixClassDataset) {
  PcaAssistedOvr ovr({.scheme = "MLR"});
  EXPECT_THROW(ovr.train(shared().binary_train), PreconditionError);
}

TEST(PcaAssistedOvr, PredictBeforeTrainThrows) {
  PcaAssistedOvr ovr({.scheme = "MLR"});
  EXPECT_THROW((void)ovr.predict(std::vector<double>(16, 0.0)),
               PreconditionError);
}

TEST(PcaAssistedOvr, BalancedSubsamplingOptionTrains) {
  PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8,
                      .max_negative_ratio = 2.0});
  ovr.train(shared().multi_train);
  const auto ev = ovr.evaluate(shared().multi_test);
  EXPECT_GT(ev.accuracy(), 0.4);
}

}  // namespace
}  // namespace hmd::core
