#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/dataset_builder.hpp"
#include "core/pipeline_config.hpp"
#include "ml/arff.hpp"
#include "perf/perf_log.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hmd::core {
namespace {

PipelineConfig tiny_config(std::uint64_t seed = 2018) {
  PipelineConfig cfg = PipelineConfig::quick(0.01, 3);
  cfg.collector.ops_per_window = 600;
  cfg.seed = seed;
  return cfg;
}

TEST(PipelineConfig, PaperHasFullComposition) {
  const PipelineConfig cfg = PipelineConfig::paper();
  EXPECT_EQ(cfg.composition.total(), 3070u);
  EXPECT_EQ(cfg.collector.num_windows, 16u);
  EXPECT_DOUBLE_EQ(cfg.train_fraction, 0.7);
  EXPECT_DOUBLE_EQ(cfg.collector.window_ms, 10.0);
}

TEST(PipelineConfig, PaperRowCountNearFiftyThousand) {
  const PipelineConfig cfg = PipelineConfig::paper();
  const std::size_t rows = cfg.composition.total() * cfg.collector.num_windows;
  EXPECT_NEAR(static_cast<double>(rows), 50000.0, 2000.0);
}

TEST(PipelineConfig, CacheKeyReactsToEveryKnob) {
  const PipelineConfig base = tiny_config();
  PipelineConfig s = base;
  s.seed = 1;
  PipelineConfig w = base;
  w.collector.num_windows = 9;
  PipelineConfig n = base;
  n.sandbox.host_noise_frac = 0.2;
  PipelineConfig i = base;
  i.collector.ideal_pmu = true;
  EXPECT_NE(base.cache_key(), s.cache_key());
  EXPECT_NE(base.cache_key(), w.cache_key());
  EXPECT_NE(base.cache_key(), n.cache_key());
  EXPECT_NE(base.cache_key(), i.cache_key());
  EXPECT_EQ(base.cache_key(), tiny_config().cache_key());
}

TEST(DatasetBuilder, DatabaseMatchesComposition) {
  DatasetBuilder builder(tiny_config());
  const auto db = builder.build_database();
  EXPECT_EQ(db.size(), tiny_config().composition.total());
}

TEST(DatasetBuilder, DatasetShapeIsRowsBySixteenPlusClass) {
  DatasetBuilder builder(tiny_config());
  const ml::Dataset d = builder.build_multiclass_dataset();
  EXPECT_EQ(d.num_features(), 16u);
  EXPECT_EQ(d.num_classes(), 6u);
  EXPECT_EQ(d.num_instances(),
            tiny_config().composition.total() * 3u);  // 3 windows each
  EXPECT_EQ(d.attribute(0).name(), "instructions");
  EXPECT_EQ(d.class_attribute().values()[0], "benign");
}

TEST(DatasetBuilder, DeterministicInSeed) {
  DatasetBuilder a(tiny_config(7));
  DatasetBuilder b(tiny_config(7));
  const ml::Dataset da = a.build_multiclass_dataset();
  const ml::Dataset db = b.build_multiclass_dataset();
  ASSERT_EQ(da.num_instances(), db.num_instances());
  for (std::size_t i = 0; i < da.num_instances(); ++i)
    for (std::size_t f = 0; f < da.num_features(); ++f)
      EXPECT_DOUBLE_EQ(da.features_of(i)[f], db.features_of(i)[f]);
}

TEST(DatasetBuilder, DifferentSeedsDiffer) {
  const ml::Dataset da =
      DatasetBuilder(tiny_config(1)).build_multiclass_dataset();
  const ml::Dataset db =
      DatasetBuilder(tiny_config(2)).build_multiclass_dataset();
  bool any_diff = false;
  for (std::size_t f = 0; f < da.num_features(); ++f)
    any_diff |= da.features_of(0)[f] != db.features_of(0)[f];
  EXPECT_TRUE(any_diff);
}

TEST(DatasetBuilder, ProgressCallbackCoversAllSamples) {
  DatasetBuilder builder(tiny_config());
  std::size_t calls = 0, last_done = 0, total = 0;
  builder.build_multiclass_dataset([&](std::size_t done, std::size_t t) {
    ++calls;
    last_done = done;
    total = t;
  });
  EXPECT_EQ(calls, tiny_config().composition.total());
  EXPECT_EQ(last_done, total);
}

TEST(DatasetBuilder, ParallelCollectionBitIdenticalToSerial) {
  // The collection pass fans per-sample simulation across a pool; each
  // sample is seeded independently, so the dataset — and the cached CSV
  // byte stream — must not depend on the thread count.
  DatasetBuilder builder(tiny_config(31));
  const ml::Dataset serial = builder.build_multiclass_dataset();
  ThreadPool pool(4);
  const ml::Dataset parallel = builder.build_multiclass_dataset({}, &pool);

  ASSERT_EQ(parallel.num_instances(), serial.num_instances());
  for (std::size_t i = 0; i < serial.num_instances(); ++i) {
    EXPECT_EQ(parallel.class_of(i), serial.class_of(i));
    for (std::size_t f = 0; f < serial.num_features(); ++f)
      EXPECT_EQ(parallel.features_of(i)[f], serial.features_of(i)[f])
          << "row " << i << " feature " << f;
  }

  std::ostringstream serial_csv, parallel_csv;
  ml::write_dataset_csv(serial_csv, serial);
  ml::write_dataset_csv(parallel_csv, parallel);
  EXPECT_EQ(parallel_csv.str(), serial_csv.str());
}

TEST(DatasetBuilder, ParallelProgressStillCoversAllSamples) {
  DatasetBuilder builder(tiny_config());
  ThreadPool pool(3);
  std::size_t calls = 0, max_done = 0, total = 0;
  builder.build_multiclass_dataset(
      [&](std::size_t done, std::size_t t) {
        // The builder serializes progress calls; done counts completions.
        ++calls;
        max_done = std::max(max_done, done);
        total = t;
      },
      &pool);
  EXPECT_EQ(calls, tiny_config().composition.total());
  EXPECT_EQ(max_done, total);
}

TEST(DatasetBuilder, BinaryRelabelGroupsMalware) {
  DatasetBuilder builder(tiny_config());
  const ml::Dataset multi = builder.build_multiclass_dataset();
  const ml::Dataset binary = DatasetBuilder::to_binary(multi);
  EXPECT_EQ(binary.num_classes(), 2u);
  EXPECT_EQ(binary.num_instances(), multi.num_instances());
  const auto counts = binary.class_counts();
  const auto multi_counts = multi.class_counts();
  EXPECT_EQ(counts[0], multi_counts[0]);  // benign
  EXPECT_EQ(counts[1], multi.num_instances() - multi_counts[0]);
}

TEST(DatasetBuilder, CountsAreNonNegativeAndFinite) {
  DatasetBuilder builder(tiny_config());
  const ml::Dataset d = builder.build_multiclass_dataset();
  for (std::size_t i = 0; i < d.num_instances(); ++i)
    for (double v : d.features_of(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(DatasetBuilder, RunLogsRoundTripThroughCsv) {
  DatasetBuilder builder(tiny_config());
  const auto logs = builder.collect_run_logs(4);
  ASSERT_EQ(logs.size(), 4u);
  std::ostringstream csv;
  perf::combine_logs_to_csv(csv, logs);
  std::istringstream in(csv.str());
  const hmd::CsvTable table = hmd::read_csv(in);
  EXPECT_EQ(table.header.size(), 17u);  // 16 counters + class
  EXPECT_EQ(table.rows.size(), 4u * 3u);
}

TEST(DatasetBuilder, PerfLogTextRoundTrip) {
  DatasetBuilder builder(tiny_config());
  const auto logs = builder.collect_run_logs(1);
  std::ostringstream out;
  perf::write_perf_log(out, logs.front());
  std::istringstream in(out.str());
  const perf::RunLog parsed = perf::read_perf_log(in);
  EXPECT_EQ(parsed.sample_id, logs.front().sample_id);
  EXPECT_EQ(parsed.samples.size(), logs.front().samples.size());
}

TEST(DatasetBuilder, CsvCacheRoundTrip) {
  const std::string path = "/tmp/hmd_test_cache.csv";
  std::filesystem::remove(path);
  DatasetBuilder builder(tiny_config());
  const ml::Dataset built = builder.load_or_build(path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const ml::Dataset loaded = builder.load_or_build(path);
  ASSERT_EQ(loaded.num_instances(), built.num_instances());
  for (std::size_t i = 0; i < built.num_instances(); ++i) {
    EXPECT_EQ(loaded.class_of(i), built.class_of(i));
    for (std::size_t f = 0; f < built.num_features(); ++f)
      EXPECT_NEAR(loaded.features_of(i)[f], built.features_of(i)[f],
                  1e-3 * (1.0 + built.features_of(i)[f]));
  }
  std::filesystem::remove(path);
}

TEST(DatasetBuilder, EmptyCachePathAlwaysBuilds) {
  DatasetBuilder builder(tiny_config());
  const ml::Dataset d = builder.load_or_build("");
  EXPECT_GT(d.num_instances(), 0u);
}

}  // namespace
}  // namespace hmd::core
