// End-to-end integration: database → sandbox → HPC collection → dataset →
// PCA reduction → train/test → hardware synthesis. A miniature version of
// every experiment in the thesis, checked for the paper's qualitative
// shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset_builder.hpp"
#include "core/detector.hpp"
#include "core/feature_reduction.hpp"
#include "hw/lowering.hpp"
#include "ml/registry.hpp"
#include "util/error.hpp"

namespace hmd::core {
namespace {

struct Fixture {
  ml::Dataset multi;
  ml::Dataset mtrain, mtest;
  ml::Dataset btrain, btest;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    PipelineConfig cfg = PipelineConfig::quick(0.08, 8);
    cfg.collector.ops_per_window = 2000;
    ml::Dataset multi = DatasetBuilder(cfg).build_multiclass_dataset();
    Rng rng(99);
    auto [mtrain, mtest] = multi.stratified_split(cfg.train_fraction, rng);
    ml::Dataset binary = DatasetBuilder::to_binary(multi);
    Rng rng2(100);
    auto [btrain, btest] = binary.stratified_split(cfg.train_fraction, rng2);
    return Fixture{std::move(multi), std::move(mtrain), std::move(mtest),
                   std::move(btrain), std::move(btest)};
  }();
  return f;
}

TEST(Integration, BinaryDetectorsBeatZeroROrTie) {
  const auto zero =
      train_and_evaluate("ZeroR", fixture().btrain, fixture().btest);
  for (const auto& scheme : {"JRip", "MLR", "MLP"}) {
    const auto tm = train_and_evaluate(scheme, fixture().btrain,
                                       fixture().btest);
    EXPECT_GE(tm.evaluation.accuracy() + 0.02, zero.evaluation.accuracy())
        << scheme;
  }
}

TEST(Integration, MlpDetectsBenignWindows) {
  const auto tm = train_and_evaluate("MLP", fixture().btrain, fixture().btest);
  EXPECT_GT(tm.evaluation.recall(0), 0.1);  // benign recall above zero
  EXPECT_GT(tm.evaluation.recall(1), 0.9);  // malware recall high
}

TEST(Integration, MulticlassBeatsMajorityByWideMargin) {
  const auto counts = fixture().mtest.class_counts();
  const double majority =
      static_cast<double>(
          *std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(fixture().mtest.num_instances());
  const auto tm = train_and_evaluate("MLR", fixture().mtrain, fixture().mtest);
  EXPECT_GT(tm.evaluation.accuracy(), majority + 0.2);
}

TEST(Integration, RootkitAndWormAreWellSeparated) {
  // Their microarchitectural signatures are extreme opposites (frontend vs
  // memory pressure), so family recall should be high for both.
  const auto tm = train_and_evaluate("MLR", fixture().mtrain, fixture().mtest);
  const auto rootkit = static_cast<std::size_t>(workload::AppClass::kRootkit);
  EXPECT_GT(tm.evaluation.recall(rootkit), 0.8);
}

TEST(Integration, FeatureReductionKeepsMostBinaryAccuracy) {
  const FeatureReducer reducer(fixture().mtrain);
  const FeatureSet top8 = reducer.binary_top_features(8);
  const BinaryStudy study(fixture().btrain, fixture().btest);
  const auto full = study.run({"J48"});
  const auto reduced = study.run({"J48"}, &top8);
  EXPECT_GT(reduced.front().accuracy(), full.front().accuracy() - 0.05);
}

TEST(Integration, ReducedFeaturesShrinkLinearModelHardware) {
  const FeatureReducer reducer(fixture().mtrain);
  const FeatureSet top4 = reducer.binary_top_features(4);
  const BinaryStudy study(fixture().btrain, fixture().btest);
  const auto full = study.run({"SVM"});
  const auto reduced = study.run({"SVM"}, &top4);
  EXPECT_LT(reduced.front().synthesis.area_slices(),
            full.front().synthesis.area_slices());
}

TEST(Integration, AccuracyPerAreaFavorsSimpleClassifiers) {
  // Fig. 16's punchline.
  const BinaryStudy study(fixture().btrain, fixture().btest);
  const auto rows = study.run({"OneR", "JRip", "MLP"});
  const double oner = rows[0].accuracy_per_slice();
  const double jrip = rows[1].accuracy_per_slice();
  const double mlp = rows[2].accuracy_per_slice();
  EXPECT_GT(oner, mlp);
  EXPECT_GT(jrip, mlp);
}

TEST(Integration, EveryStudySchemeSynthesizes) {
  for (const auto& scheme : ml::binary_study_classifiers()) {
    auto clf = ml::make_classifier(scheme);
    clf->train(fixture().btrain);
    const auto report =
        hw::synthesize_classifier(*clf, fixture().btrain.num_features());
    EXPECT_GT(report.latency_cycles, 0u) << scheme;
    EXPECT_GT(report.area_slices(), 0.0) << scheme;
  }
}

TEST(Integration, IdealPmuAtLeastAsAccurateAsMultiplexed) {
  // The multiplexing ablation's expected direction (allow a small margin
  // for noise at this tiny scale).
  PipelineConfig mux_cfg = PipelineConfig::quick(0.04, 6);
  PipelineConfig ideal_cfg = mux_cfg;
  ideal_cfg.collector.ideal_pmu = true;
  const ml::Dataset mux =
      DatasetBuilder::to_binary(DatasetBuilder(mux_cfg).build_multiclass_dataset());
  const ml::Dataset ideal = DatasetBuilder::to_binary(
      DatasetBuilder(ideal_cfg).build_multiclass_dataset());
  Rng r1(5), r2(5);
  auto [mt, mv] = mux.stratified_split(0.7, r1);
  auto [it, iv] = ideal.stratified_split(0.7, r2);
  const double mux_acc =
      train_and_evaluate("MLR", mt, mv).evaluation.accuracy();
  const double ideal_acc =
      train_and_evaluate("MLR", it, iv).evaluation.accuracy();
  EXPECT_GE(ideal_acc, mux_acc - 0.03);
}

TEST(Integration, PcaAssistedPipelineEndToEnd) {
  PcaAssistedOvr ovr({.scheme = "MLR", .features_per_class = 8});
  ovr.train(fixture().mtrain);
  const auto ev = ovr.evaluate(fixture().mtest);
  EXPECT_GT(ev.accuracy(), 0.6);
  // Per-class custom sets were actually customized (not all identical).
  bool any_difference = false;
  for (std::size_t c = 1; c < ovr.class_features().size(); ++c)
    any_difference |=
        ovr.class_features()[c].indices != ovr.class_features()[0].indices;
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace hmd::core
