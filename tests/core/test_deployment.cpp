#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::core {
namespace {

using ml::testdata::separable_binary;

/// Binary model over features {1, 3} of a 4-feature layout.
DeploymentBundle make_bundle() {
  const ml::Dataset full = separable_binary(200);
  FeatureSet fs;
  fs.indices = {1, 3};
  fs.names = {"f1", "f3"};
  const ml::Dataset projected = full.project(fs.indices);
  auto model = ml::make_classifier("MLR");
  model->train(projected);
  return DeploymentBundle(std::move(model), fs,
                          {.flag_threshold = 0.9, .confirm_windows = 2});
}

TEST(DeploymentBundle, ProjectsFullCounterVectors) {
  const DeploymentBundle bundle = make_bundle();
  const ml::Dataset full = separable_binary(50);
  const ml::Dataset projected = full.project({1, 3});
  for (std::size_t i = 0; i < full.num_instances(); ++i) {
    EXPECT_EQ(bundle.predict(full.features_of(i)),
              bundle.model().predict(projected.features_of(i)));
  }
}

TEST(DeploymentBundle, MalwareProbabilityMatchesModel) {
  const DeploymentBundle bundle = make_bundle();
  const ml::Dataset full = separable_binary(20);
  for (std::size_t i = 0; i < full.num_instances(); ++i) {
    const double p = bundle.malware_probability(full.features_of(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DeploymentBundle, MonitorUsesBundlePolicy) {
  const DeploymentBundle bundle = make_bundle();
  OnlineDetector monitor = bundle.make_monitor();
  const ml::Dataset full = separable_binary(100);
  // Feed only class-1 (malware-side) rows: alarm after 2 confirmations.
  std::size_t fed = 0;
  for (std::size_t i = 0; i < full.num_instances() && fed < 4; ++i) {
    if (full.class_of(i) != 1) continue;
    bundle.observe_full(monitor, full.features_of(i));
    ++fed;
  }
  EXPECT_TRUE(monitor.alarmed());
}

TEST(DeploymentBundle, SaveLoadRoundTrip) {
  const DeploymentBundle original = make_bundle();
  std::ostringstream out;
  save_bundle(out, original);
  std::istringstream in(out.str());
  const DeploymentBundle loaded = load_bundle(in);

  EXPECT_EQ(loaded.features().indices, original.features().indices);
  EXPECT_EQ(loaded.features().names, original.features().names);
  EXPECT_DOUBLE_EQ(loaded.policy().flag_threshold,
                   original.policy().flag_threshold);
  EXPECT_EQ(loaded.policy().confirm_windows,
            original.policy().confirm_windows);

  const ml::Dataset full = separable_binary(80);
  for (std::size_t i = 0; i < full.num_instances(); ++i)
    EXPECT_EQ(loaded.predict(full.features_of(i)),
              original.predict(full.features_of(i)));
}

TEST(DeploymentBundle, EmptyFeatureSetMeansIdentity) {
  const ml::Dataset full = separable_binary(100);
  auto model = ml::make_classifier("J48");
  model->train(full);
  const DeploymentBundle bundle(std::move(model), {}, {});
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(bundle.predict(full.features_of(i)),
              bundle.model().predict(full.features_of(i)));
}

TEST(DeploymentBundle, RejectsBadConstruction) {
  EXPECT_THROW(DeploymentBundle(nullptr, {}, {}), PreconditionError);
  auto untrained = ml::make_classifier("J48");
  EXPECT_THROW(DeploymentBundle(std::move(untrained), {}, {}),
               PreconditionError);
}

TEST(DeploymentBundle, ShortCounterVectorThrows) {
  const DeploymentBundle bundle = make_bundle();  // needs index 3
  EXPECT_THROW((void)bundle.predict(std::vector<double>{1.0, 2.0}),
               PreconditionError);
}

/// make_bundle() plus a cheap OneR fallback (bundle format v2).
DeploymentBundle make_v2_bundle() {
  const ml::Dataset full = separable_binary(200);
  FeatureSet fs;
  fs.indices = {1, 3};
  fs.names = {"f1", "f3"};
  const ml::Dataset projected = full.project(fs.indices);
  auto model = ml::make_classifier("MLR");
  model->train(projected);
  auto fallback = ml::make_classifier("OneR");
  fallback->train(projected);
  return DeploymentBundle(std::move(model), std::move(fallback), fs,
                          {.flag_threshold = 0.9, .confirm_windows = 2});
}

TEST(DeploymentBundle, FallbackRoundTripsThroughV2Format) {
  const DeploymentBundle original = make_v2_bundle();
  std::ostringstream out;
  save_bundle(out, original);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("hmd-bundle v2\n", 0), 0u);
  EXPECT_NE(text.find("fallback 1\n"), std::string::npos);

  std::istringstream in(text);
  const DeploymentBundle loaded = load_bundle(in);
  ASSERT_NE(loaded.fallback_model(), nullptr);
  EXPECT_EQ(loaded.fallback_model()->name(),
            original.fallback_model()->name());

  // Both models must survive the round trip prediction-for-prediction.
  const ml::Dataset full = separable_binary(80);
  const ml::Dataset projected = full.project({1, 3});
  for (std::size_t i = 0; i < full.num_instances(); ++i) {
    EXPECT_EQ(loaded.predict(full.features_of(i)),
              original.predict(full.features_of(i)));
    EXPECT_EQ(loaded.fallback_model()->predict(projected.features_of(i)),
              original.fallback_model()->predict(projected.features_of(i)));
  }
}

TEST(DeploymentBundle, BundleWithoutFallbackStaysV1) {
  // v1 stays the wire format for fallback-less bundles, so pre-v2 readers
  // of those files keep working.
  const DeploymentBundle original = make_bundle();
  std::ostringstream out;
  save_bundle(out, original);
  EXPECT_EQ(out.str().rfind("hmd-bundle v1\n", 0), 0u);
  EXPECT_EQ(out.str().find("fallback"), std::string::npos);
  std::istringstream in(out.str());
  EXPECT_EQ(load_bundle(in).fallback_model(), nullptr);
}

TEST(DeploymentBundle, RejectsUnusableFallback) {
  const ml::Dataset projected = separable_binary(100).project({1, 3});
  auto primary = ml::make_classifier("MLR");
  primary->train(projected);
  auto untrained = ml::make_classifier("OneR");
  EXPECT_THROW(DeploymentBundle(std::move(primary), std::move(untrained),
                                {}, {}),
               PreconditionError);

  auto primary2 = ml::make_classifier("MLR");
  primary2->train(projected);
  auto three_way = ml::make_classifier("OneR");
  three_way->train(ml::testdata::three_class(60));
  EXPECT_THROW(DeploymentBundle(std::move(primary2), std::move(three_way),
                                {}, {}),
               PreconditionError);
}

TEST(DeploymentBundle, LoadRejectsCorruptFallbackFlag) {
  const DeploymentBundle original = make_v2_bundle();
  std::ostringstream out;
  save_bundle(out, original);
  std::string text = out.str();
  const std::size_t pos = text.find("fallback 1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 10, "fallback 7");
  std::istringstream in(text);
  EXPECT_THROW((void)load_bundle(in), ParseError);
}

TEST(DeploymentBundle, LoadRejectsGarbage) {
  std::istringstream bad("not-a-bundle\n");
  EXPECT_THROW((void)load_bundle(bad), ParseError);
  std::istringstream truncated("hmd-bundle v1\nfeatures 2\n");
  EXPECT_THROW((void)load_bundle(truncated), ParseError);
}

TEST(DeploymentBundle, LoadRejectsCorruptPolicyValues) {
  // A bundle that parses cleanly but carries an impossible policy must not
  // arm a monitor: the bundle constructor re-validates the policy, so the
  // load throws PreconditionError rather than returning a broken detector.
  const DeploymentBundle original = make_bundle();
  std::ostringstream out;
  save_bundle(out, original);
  std::string text = out.str();
  const std::string needle = "policy ";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "policy 0x1.8p+1 4");  // threshold 3.0 > 1
  std::istringstream in(text);
  EXPECT_THROW((void)load_bundle(in), PreconditionError);
}

}  // namespace
}  // namespace hmd::core
