#include "core/online_detector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::core {
namespace {

/// Deterministic stub detector: P(malware) = features[0].
class StubModel final : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

TEST(OnlineDetector, RejectsBadConfig) {
  StubModel model;
  EXPECT_THROW(OnlineDetector(model, {.flag_threshold = 0.0}),
               PreconditionError);
  EXPECT_THROW(OnlineDetector(model, {.flag_threshold = 1.0}),
               PreconditionError);
  EXPECT_THROW(OnlineDetector(model, {.confirm_windows = 0}),
               PreconditionError);
}

TEST(OnlineDetectorConfig, ValidateIsCallableStandalone) {
  OnlineDetectorConfig ok;
  EXPECT_NO_THROW(ok.validate());
  OnlineDetectorConfig bad;
  bad.flag_threshold = -0.5;
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad.flag_threshold = 0.5;
  bad.confirm_windows = 0;
  EXPECT_THROW(bad.validate(), PreconditionError);
}

TEST(OnlineDetector, FlagRateTracksFlaggedFraction) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 10});
  EXPECT_DOUBLE_EQ(det.flag_rate(), 0.0);  // no windows yet
  det.observe(std::vector<double>{0.95});  // flagged
  det.observe(std::vector<double>{0.1});
  det.observe(std::vector<double>{0.95});  // flagged
  det.observe(std::vector<double>{0.1});
  EXPECT_DOUBLE_EQ(det.flag_rate(), 0.5);
  det.reset();
  EXPECT_DOUBLE_EQ(det.flag_rate(), 0.0);
}

TEST(OnlineDetector, FlagRateConsistentAcrossBatchAndStreaming) {
  const std::vector<double> flat = {0.95, 0.1, 0.95, 0.95, 0.2, 0.99};
  const OnlineDetectorConfig config{.flag_threshold = 0.9,
                                    .confirm_windows = 2};
  StubModel model;
  OnlineDetector streaming(model, config);
  for (double p : flat) streaming.observe(std::vector<double>{p});
  OnlineDetector batched(model, config);
  batched.score_windows(flat, 1);
  EXPECT_DOUBLE_EQ(batched.flag_rate(), streaming.flag_rate());
  EXPECT_DOUBLE_EQ(batched.flag_rate(), 4.0 / 6.0);
}

TEST(OnlineDetector, FlagsOnlyAboveThreshold) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 2});
  EXPECT_FALSE(det.observe(std::vector<double>{0.5}).flagged);
  EXPECT_FALSE(det.observe(std::vector<double>{0.89}).flagged);
  EXPECT_TRUE(det.observe(std::vector<double>{0.95}).flagged);
}

TEST(OnlineDetector, AlarmNeedsConsecutiveConfirmation) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 3});
  const std::vector<double> hot = {0.99};
  const std::vector<double> cold = {0.1};
  EXPECT_FALSE(det.observe(hot).alarm);   // 1
  EXPECT_FALSE(det.observe(hot).alarm);   // 2
  EXPECT_FALSE(det.observe(cold).alarm);  // streak broken
  EXPECT_FALSE(det.observe(hot).alarm);   // 1
  EXPECT_FALSE(det.observe(hot).alarm);   // 2
  EXPECT_TRUE(det.observe(hot).alarm);    // 3 → alarm
  EXPECT_TRUE(det.alarmed());
  EXPECT_EQ(det.alarm_window(), 5u);
}

TEST(OnlineDetector, AlarmLatches) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 1});
  det.observe(std::vector<double>{0.99});
  EXPECT_TRUE(det.alarmed());
  // Subsequent clean windows do not clear the alarm.
  EXPECT_TRUE(det.observe(std::vector<double>{0.0}).alarm);
  EXPECT_EQ(det.alarm_window(), 0u);
}

TEST(OnlineDetector, ResetClearsState) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 1});
  det.observe(std::vector<double>{0.99});
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.windows_seen(), 0u);
  EXPECT_EQ(det.alarm_window(), OnlineDetector::kNoAlarm);
}

TEST(OnlineDetector, CountsWindows) {
  StubModel model;
  OnlineDetector det(model);
  for (int i = 0; i < 7; ++i) det.observe(std::vector<double>{0.1});
  EXPECT_EQ(det.windows_seen(), 7u);
}

TEST(OnlineDetector, ProbabilityPassedThrough) {
  StubModel model;
  OnlineDetector det(model);
  const auto verdict = det.observe(std::vector<double>{0.73});
  EXPECT_DOUBLE_EQ(verdict.probability, 0.73);
}

TEST(OnlineDetector, ScoreWindowsMatchesStreamingObserve) {
  // One probability per window; streak 0.99,0.99 → alarm at window 3.
  const std::vector<double> flat = {0.1, 0.99, 0.2, 0.99, 0.99, 0.5};
  const OnlineDetectorConfig config{.flag_threshold = 0.9,
                                    .confirm_windows = 2};
  StubModel model;

  OnlineDetector streaming(model, config);
  std::vector<OnlineDetector::Verdict> expected;
  for (double p : flat)
    expected.push_back(streaming.observe(std::vector<double>{p}));

  OnlineDetector batched(model, config);
  const auto serial = batched.score_windows(flat, 1);
  ASSERT_EQ(serial.size(), expected.size());
  for (std::size_t w = 0; w < expected.size(); ++w) {
    EXPECT_DOUBLE_EQ(serial[w].probability, expected[w].probability);
    EXPECT_EQ(serial[w].flagged, expected[w].flagged) << w;
    EXPECT_EQ(serial[w].alarm, expected[w].alarm) << w;
  }
  EXPECT_EQ(batched.alarmed(), streaming.alarmed());
  EXPECT_EQ(batched.alarm_window(), streaming.alarm_window());
  EXPECT_EQ(batched.windows_seen(), streaming.windows_seen());

  ThreadPool pool(4);
  OnlineDetector parallel(model, config);
  const auto verdicts = parallel.score_windows(flat, 1, &pool);
  EXPECT_EQ(parallel.alarm_window(), streaming.alarm_window());
  EXPECT_TRUE(verdicts.back().alarm);
}

TEST(OnlineDetector, ScoreWindowsContinuesStreamingState) {
  // A flagged streak split across observe() and score_windows() must still
  // latch: the batch path shares the same state machine.
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 3});
  det.observe(std::vector<double>{0.99});
  det.observe(std::vector<double>{0.99});
  const auto verdicts =
      det.score_windows(std::vector<double>{0.99, 0.1}, 1);
  EXPECT_TRUE(verdicts[0].alarm);
  EXPECT_EQ(det.alarm_window(), 2u);
}

TEST(OnlineDetector, ScoreWindowsCrossesChunkBoundaries) {
  // More windows than one internal scoring chunk (256): the serial replay
  // must still see every window in order, including an alarm streak that
  // straddles a chunk edge.
  constexpr std::size_t kWindows = 600;
  std::vector<double> flat(kWindows, 0.1);
  flat[254] = flat[255] = flat[256] = 0.99;  // streak across the boundary
  const OnlineDetectorConfig config{.flag_threshold = 0.9,
                                    .confirm_windows = 3};
  StubModel model;

  OnlineDetector streaming(model, config);
  for (double p : flat) streaming.observe(std::vector<double>{p});

  ThreadPool pool(4);
  OnlineDetector batched(model, config);
  const auto verdicts = batched.score_windows(flat, 1, &pool);
  ASSERT_EQ(verdicts.size(), kWindows);
  EXPECT_EQ(batched.alarm_window(), streaming.alarm_window());
  EXPECT_EQ(batched.alarm_window(), 256u);
  EXPECT_DOUBLE_EQ(batched.flag_rate(), streaming.flag_rate());
}

TEST(OnlineDetectorConfig, RejectsZeroScoreChunk) {
  OnlineDetectorConfig bad;
  bad.score_chunk_windows = 0;
  EXPECT_THROW(bad.validate(), PreconditionError);
  StubModel model;
  EXPECT_THROW(OnlineDetector(model, {.score_chunk_windows = 0}),
               PreconditionError);
}

TEST(OnlineDetector, ScoreChunkSizeNeverChangesVerdicts) {
  // The chunk size is a batching/throughput knob; any value must replay
  // the identical per-window state machine. Exercise a tiny chunk (3) and
  // a chunk larger than the input against the streaming reference.
  const std::vector<double> flat = {0.1, 0.99, 0.99, 0.99, 0.2,
                                    0.99, 0.99, 0.1,  0.99, 0.99};
  StubModel model;
  OnlineDetector streaming(
      model, {.flag_threshold = 0.9, .confirm_windows = 3});
  std::vector<OnlineDetector::Verdict> expected;
  for (double p : flat)
    expected.push_back(streaming.observe(std::vector<double>{p}));

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}}) {
    OnlineDetector batched(model, {.flag_threshold = 0.9,
                                   .confirm_windows = 3,
                                   .score_chunk_windows = chunk});
    const auto verdicts = batched.score_windows(flat, 1);
    ASSERT_EQ(verdicts.size(), expected.size()) << "chunk " << chunk;
    for (std::size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(verdicts[w].flagged, expected[w].flagged)
          << "chunk " << chunk << " window " << w;
      EXPECT_EQ(verdicts[w].alarm, expected[w].alarm)
          << "chunk " << chunk << " window " << w;
      EXPECT_DOUBLE_EQ(verdicts[w].probability, expected[w].probability);
    }
    EXPECT_EQ(batched.alarm_window(), streaming.alarm_window());
    EXPECT_DOUBLE_EQ(batched.flag_rate(), streaming.flag_rate());
  }
}

TEST(OnlineDetector, ApplyProbabilityMatchesObserve) {
  // apply_probability() is the model-free entry the serve engine uses
  // after batched scoring; it must drive the same state machine.
  const std::vector<double> probs = {0.1, 0.99, 0.99, 0.2, 0.99,
                                     0.99, 0.99, 0.3};
  StubModel model;
  const OnlineDetectorConfig config{.flag_threshold = 0.9,
                                    .confirm_windows = 3};
  OnlineDetector via_observe(model, config);
  OnlineDetector via_apply(model, config);
  for (double p : probs) {
    const auto a = via_observe.observe(std::vector<double>{p});
    const auto b = via_apply.apply_probability(p);
    EXPECT_DOUBLE_EQ(b.probability, a.probability);
    EXPECT_EQ(b.flagged, a.flagged);
    EXPECT_EQ(b.alarm, a.alarm);
  }
  EXPECT_EQ(via_apply.alarm_window(), via_observe.alarm_window());
  EXPECT_EQ(via_apply.windows_seen(), via_observe.windows_seen());
  EXPECT_DOUBLE_EQ(via_apply.flag_rate(), via_observe.flag_rate());
}

TEST(OnlineDetector, StateRoundTripContinuesBitIdentically) {
  // Snapshot mid-streak, restore into a fresh detector, and the continued
  // run must match an uninterrupted one verdict-for-verdict — the
  // contract the serve engine's checkpoint/restore is built on.
  const std::vector<double> probs = {0.1, 0.99, 0.2, 0.99, 0.99, 0.99,
                                     0.1, 0.99, 0.99, 0.3};
  StubModel model;
  const OnlineDetectorConfig config{.flag_threshold = 0.9,
                                    .confirm_windows = 3};
  for (std::size_t cut = 0; cut <= probs.size(); ++cut) {
    OnlineDetector uninterrupted(model, config);
    OnlineDetector first(model, config);
    for (std::size_t w = 0; w < cut; ++w) {
      uninterrupted.apply_probability(probs[w]);
      first.apply_probability(probs[w]);
    }
    OnlineDetector resumed(model, config);
    resumed.restore(first.state());
    for (std::size_t w = cut; w < probs.size(); ++w) {
      const auto a = uninterrupted.apply_probability(probs[w]);
      const auto b = resumed.apply_probability(probs[w]);
      EXPECT_EQ(b.flagged, a.flagged) << "cut " << cut << " window " << w;
      EXPECT_EQ(b.alarm, a.alarm) << "cut " << cut << " window " << w;
    }
    EXPECT_EQ(resumed.windows_seen(), uninterrupted.windows_seen());
    EXPECT_EQ(resumed.alarmed(), uninterrupted.alarmed());
    EXPECT_EQ(resumed.alarm_window(), uninterrupted.alarm_window());
    EXPECT_DOUBLE_EQ(resumed.flag_rate(), uninterrupted.flag_rate());
  }
}

TEST(OnlineDetector, RestoreRejectsInconsistentState) {
  StubModel model;
  OnlineDetector det(model);

  OnlineDetector::State bad;
  bad.windows = 2;
  bad.flagged = 5;  // flagged > windows
  EXPECT_THROW(det.restore(bad), PreconditionError);

  bad = {};
  bad.windows = 5;
  bad.flagged = 2;
  bad.streak = 3;  // streak > flagged
  EXPECT_THROW(det.restore(bad), PreconditionError);

  bad = {};
  bad.windows = 5;
  bad.alarmed = true;  // alarmed without an alarm window
  EXPECT_THROW(det.restore(bad), PreconditionError);

  bad = {};
  bad.windows = 3;
  bad.flagged = 1;
  bad.alarmed = true;
  bad.alarm_window = 7;  // alarm window beyond windows seen
  EXPECT_THROW(det.restore(bad), PreconditionError);
}

TEST(OnlineDetector, ScoreWindowsRejectsMalformedInput) {
  StubModel model;
  OnlineDetector det(model);
  EXPECT_THROW(det.score_windows(std::vector<double>{1.0, 2.0, 3.0}, 2),
               PreconditionError);
  EXPECT_THROW(det.score_windows(std::vector<double>{1.0}, 0),
               PreconditionError);
}

}  // namespace
}  // namespace hmd::core
