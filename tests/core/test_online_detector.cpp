#include "core/online_detector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::core {
namespace {

/// Deterministic stub detector: P(malware) = features[0].
class StubModel final : public ml::Classifier {
 public:
  void train(const ml::Dataset&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

TEST(OnlineDetector, RejectsBadConfig) {
  StubModel model;
  EXPECT_THROW(OnlineDetector(model, {.flag_threshold = 0.0}),
               PreconditionError);
  EXPECT_THROW(OnlineDetector(model, {.flag_threshold = 1.0}),
               PreconditionError);
  EXPECT_THROW(OnlineDetector(model, {.confirm_windows = 0}),
               PreconditionError);
}

TEST(OnlineDetector, FlagsOnlyAboveThreshold) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 2});
  EXPECT_FALSE(det.observe(std::vector<double>{0.5}).flagged);
  EXPECT_FALSE(det.observe(std::vector<double>{0.89}).flagged);
  EXPECT_TRUE(det.observe(std::vector<double>{0.95}).flagged);
}

TEST(OnlineDetector, AlarmNeedsConsecutiveConfirmation) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 3});
  const std::vector<double> hot = {0.99};
  const std::vector<double> cold = {0.1};
  EXPECT_FALSE(det.observe(hot).alarm);   // 1
  EXPECT_FALSE(det.observe(hot).alarm);   // 2
  EXPECT_FALSE(det.observe(cold).alarm);  // streak broken
  EXPECT_FALSE(det.observe(hot).alarm);   // 1
  EXPECT_FALSE(det.observe(hot).alarm);   // 2
  EXPECT_TRUE(det.observe(hot).alarm);    // 3 → alarm
  EXPECT_TRUE(det.alarmed());
  EXPECT_EQ(det.alarm_window(), 5u);
}

TEST(OnlineDetector, AlarmLatches) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 1});
  det.observe(std::vector<double>{0.99});
  EXPECT_TRUE(det.alarmed());
  // Subsequent clean windows do not clear the alarm.
  EXPECT_TRUE(det.observe(std::vector<double>{0.0}).alarm);
  EXPECT_EQ(det.alarm_window(), 0u);
}

TEST(OnlineDetector, ResetClearsState) {
  StubModel model;
  OnlineDetector det(model, {.flag_threshold = 0.9, .confirm_windows = 1});
  det.observe(std::vector<double>{0.99});
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.windows_seen(), 0u);
  EXPECT_EQ(det.alarm_window(), OnlineDetector::kNoAlarm);
}

TEST(OnlineDetector, CountsWindows) {
  StubModel model;
  OnlineDetector det(model);
  for (int i = 0; i < 7; ++i) det.observe(std::vector<double>{0.1});
  EXPECT_EQ(det.windows_seen(), 7u);
}

TEST(OnlineDetector, ProbabilityPassedThrough) {
  StubModel model;
  OnlineDetector det(model);
  const auto verdict = det.observe(std::vector<double>{0.73});
  EXPECT_DOUBLE_EQ(verdict.probability, 0.73);
}

}  // namespace
}  // namespace hmd::core
