#include "core/feature_reduction.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/dataset_builder.hpp"
#include "util/error.hpp"

namespace hmd::core {
namespace {

const ml::Dataset& shared_dataset() {
  static const ml::Dataset d = [] {
    PipelineConfig cfg = PipelineConfig::quick(0.04, 5);
    cfg.collector.ops_per_window = 1200;
    return DatasetBuilder(cfg).build_multiclass_dataset();
  }();
  return d;
}

TEST(FeatureReducer, RequiresSixClassDataset) {
  const ml::Dataset binary = DatasetBuilder::to_binary(shared_dataset());
  EXPECT_THROW(FeatureReducer r(binary), PreconditionError);
}

TEST(FeatureReducer, RankingCoversAllFeaturesOnce) {
  // Ranks are a selection ORDER (round-robin across separating principal
  // components), not a monotone score sort; every feature must appear
  // exactly once with a finite non-negative score.
  const FeatureReducer reducer(shared_dataset());
  for (workload::AppClass c : workload::all_app_classes()) {
    const auto ranked = reducer.rank_for_class(c);
    EXPECT_EQ(ranked.size(), 16u);
    std::set<std::size_t> seen;
    for (const auto& f : ranked) {
      seen.insert(f.index);
      EXPECT_GE(f.score, 0.0);
    }
    EXPECT_EQ(seen.size(), 16u);
  }
}

TEST(FeatureReducer, CustomSetsHaveRequestedSize) {
  const FeatureReducer reducer(shared_dataset());
  for (workload::AppClass c : workload::malware_classes()) {
    const FeatureSet fs8 = reducer.custom_features(c, 8);
    const FeatureSet fs4 = reducer.custom_features(c, 4);
    EXPECT_EQ(fs8.indices.size(), 8u);
    EXPECT_EQ(fs4.indices.size(), 4u);
    EXPECT_EQ(fs8.names.size(), 8u);
    // Top-4 is a prefix of top-8.
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(fs4.indices[i], fs8.indices[i]);
  }
}

TEST(FeatureReducer, CustomSetsDifferAcrossClasses) {
  const FeatureReducer reducer(shared_dataset());
  const auto rootkit =
      reducer.custom_features(workload::AppClass::kRootkit, 8);
  const auto worm = reducer.custom_features(workload::AppClass::kWorm, 8);
  EXPECT_NE(rootkit.indices, worm.indices);
}

TEST(FeatureReducer, CommonFeaturesAreExactlyK) {
  const FeatureReducer reducer(shared_dataset());
  const FeatureSet common = reducer.common_features(4, 8);
  EXPECT_EQ(common.indices.size(), 4u);
}

TEST(FeatureReducer, CommonFeaturesRankHighForMostClasses) {
  const FeatureReducer reducer(shared_dataset());
  const FeatureSet common = reducer.common_features(4, 8);
  // Each common feature must sit in the top-8 of at least 3 of 5 classes.
  for (std::size_t idx : common.indices) {
    int hits = 0;
    for (workload::AppClass c : workload::malware_classes()) {
      const auto ranked = reducer.rank_for_class(c);
      for (std::size_t pos = 0; pos < 8; ++pos)
        if (ranked[pos].index == idx) ++hits;
    }
    EXPECT_GE(hits, 3) << "feature " << idx;
  }
}

TEST(FeatureReducer, BinaryTopFeaturesSubsetsNest) {
  const FeatureReducer reducer(shared_dataset());
  const FeatureSet top8 = reducer.binary_top_features(8);
  const FeatureSet top4 = reducer.binary_top_features(4);
  ASSERT_EQ(top8.indices.size(), 8u);
  ASSERT_EQ(top4.indices.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(top4.indices[i], top8.indices[i]);
}

TEST(FeatureReducer, ReducedTableHasTableTwoShape) {
  const FeatureReducer reducer(shared_dataset());
  const ReducedFeatureTable table = reducer.reduced_table(4, 8);
  EXPECT_EQ(table.common.indices.size(), 4u);
  EXPECT_EQ(table.custom.size(), 5u);  // five malware families
  for (const auto& [cls, fs] : table.custom)
    EXPECT_EQ(fs.indices.size(), 8u);
}

TEST(FeatureReducer, RootkitRankingFavorsFrontendEvents) {
  // Rootkits hammer the icache/iTLB/branch machinery; frontend events must
  // rank clearly higher for rootkit than the dataset-wide memory cluster
  // would suggest — require one inside the top-10.
  const FeatureReducer reducer(shared_dataset());
  const auto fs = reducer.custom_features(workload::AppClass::kRootkit, 10);
  bool found = false;
  for (const auto& name : fs.names) {
    if (name == "L1-icache-load-misses" || name == "iTLB-load-misses" ||
        name == "branch-misses" || name == "branch-loads")
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FeatureReducer, DeterministicAcrossCalls) {
  const FeatureReducer reducer(shared_dataset());
  const auto a = reducer.custom_features(workload::AppClass::kVirus, 8);
  const auto b = reducer.custom_features(workload::AppClass::kVirus, 8);
  EXPECT_EQ(a.indices, b.indices);
}

}  // namespace
}  // namespace hmd::core
