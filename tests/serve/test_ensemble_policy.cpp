#include "serve/ensemble_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/resilience.hpp"
#include "serve/stream_engine.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

/// Fixed-output binary stub: every window scores P(malware) = p.
class ConstModel : public ml::Classifier {
 public:
  explicit ConstModel(double p) : p_(p) {}
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double>) const override {
    return p_ > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(std::span<const double>) const override {
    return {1.0 - p_, p_};
  }
  std::string name() const override { return "Const"; }
  std::size_t num_classes() const override { return 2; }

 private:
  double p_;
};

/// Deterministic stub: P(malware) = first counter value.
class StubModel : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

PolicyMember make_member(double p, std::uint64_t version) {
  return PolicyMember{"Const", std::make_shared<const ConstModel>(p),
                      version};
}

/// Two frozen members around a Stub primary; any (kind, seed) on top.
EnsembleConfig sandwich_ensemble(EnsembleConfig::Kind kind,
                                 std::uint64_t seed, double lo = 0.0,
                                 double hi = 1.0) {
  EnsembleConfig ens;
  ens.kind = kind;
  ens.seed = seed;
  ens.members.push_back(make_member(lo, 2001));
  ens.members.push_back(make_member(hi, 2002));
  return ens;
}

/// Deterministic per-stream window generator (see test_stream_engine).
std::vector<std::vector<double>> make_stream_windows(
    std::uint64_t stream_seed, std::size_t num_windows,
    std::size_t width) {
  Rng rng(stream_seed);
  std::vector<std::vector<double>> windows;
  windows.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    std::vector<double> window(width);
    const bool hot = rng.bernoulli(0.3);
    for (std::size_t f = 0; f < width; ++f)
      window[f] = hot ? rng.uniform(0.95, 1.0) : rng.uniform();
    windows.push_back(std::move(window));
  }
  return windows;
}

TEST(EnsembleConfig, ValidateNamesOffendingField) {
  EXPECT_NO_THROW(EnsembleConfig{}.validate());

  EnsembleConfig c;
  c.members.push_back(make_member(0.5, 1));
  Result<void> r = c.try_validate();  // kSingle takes no members
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find("EnsembleConfig.members"),
            std::string::npos);

  c = {};
  c.kind = EnsembleConfig::Kind::kStochastic;
  r = c.try_validate();  // primary alone is not an ensemble
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find(">= 2"), std::string::npos);

  c = {};
  c.kind = EnsembleConfig::Kind::kMajority;
  c.members.push_back(make_member(0.5, 1));  // total 2: even
  r = c.try_validate();
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find("odd"), std::string::npos);
  EXPECT_THROW(c.validate(), PreconditionError);

  c = sandwich_ensemble(EnsembleConfig::Kind::kMajority, 0);
  c.members[1].model = nullptr;
  r = c.try_validate();
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find("members[1].model"), std::string::npos);

  EXPECT_TRUE(bool(
      sandwich_ensemble(EnsembleConfig::Kind::kMajority, 0).try_validate()));
}

TEST(EnsembleConfig, KindNamesRoundTrip) {
  for (const auto kind : {EnsembleConfig::Kind::kSingle,
                          EnsembleConfig::Kind::kMajority,
                          EnsembleConfig::Kind::kStochastic}) {
    const Result<EnsembleConfig::Kind> back =
        ensemble_kind_from_name(to_string(kind));
    ASSERT_TRUE(bool(back)) << to_string(kind);
    EXPECT_EQ(back.value(), kind);
  }
  const Result<EnsembleConfig::Kind> bad = ensemble_kind_from_name("vote");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code(), ErrCode::kParse);
}

TEST(ScoringPolicy, RejectsSinglePolicy) {
  EXPECT_THROW(ScoringPolicy(EnsembleConfig{}), PreconditionError);
}

TEST(ScoringPolicy, MajorityIsMedianAndCountsDisagreements) {
  const ScoringPolicy policy(
      sandwich_ensemble(EnsembleConfig::Kind::kMajority, 0, 0.2, 0.9));
  const ConstModel primary(0.7);

  constexpr std::size_t kWindows = 4;
  const std::vector<double> flat(kWindows * 3, 0.0);
  std::vector<ScoringPolicy::WindowKey> keys(kWindows);
  for (std::size_t w = 0; w < kWindows; ++w) keys[w] = {9, w};
  std::vector<double> dist(kWindows * 2, -1.0);
  std::vector<std::uint64_t> versions(kWindows, 0);
  ScoringPolicy::Scratch scratch;
  policy.score(primary, 7, flat, 3, keys, dist, versions, scratch);

  for (std::size_t w = 0; w < kWindows; ++w) {
    // median of {0.7 (primary), 0.2, 0.9} — and the vote carries the
    // live primary's version stamp.
    EXPECT_EQ(dist[w * 2 + 1], 0.7) << "window " << w;
    EXPECT_EQ(dist[w * 2], 1.0 - 0.7) << "window " << w;
    EXPECT_EQ(versions[w], 7u) << "window " << w;
  }
  // Members straddle 0.5 (0.2 vs 0.7/0.9): every window is a recorded
  // disagreement, and all three members scored the whole batch.
  EXPECT_EQ(scratch.disagreements, kWindows);
  ASSERT_EQ(scratch.member_windows.size(), 3u);
  for (const std::uint64_t n : scratch.member_windows)
    EXPECT_EQ(n, kWindows);

  // Unanimous members: no disagreements.
  const ScoringPolicy agree(
      sandwich_ensemble(EnsembleConfig::Kind::kMajority, 0, 0.8, 0.9));
  agree.score(primary, 7, flat, 3, keys, dist, versions, scratch);
  EXPECT_EQ(scratch.disagreements, 0u);
}

TEST(ScoringPolicy, StochasticSelectionIsSeededPureAndCovers) {
  const auto config =
      sandwich_ensemble(EnsembleConfig::Kind::kStochastic, 0xabcd);
  const ScoringPolicy policy(config);
  const ScoringPolicy twin(config);

  std::set<std::size_t> seen;
  bool differs_from_other_seed = false;
  auto other = config;
  other.seed = 0xabce;
  const ScoringPolicy reseeded(other);
  for (std::uint64_t stream : {1ull, 17ull, 4242ull}) {
    for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
      const ScoringPolicy::WindowKey key{stream, ordinal};
      const std::size_t m = policy.select_member(key);
      ASSERT_LT(m, policy.total_members());
      // Pure in (seed, key): recomputing or rebuilding the policy cannot
      // change the schedule.
      EXPECT_EQ(m, policy.select_member(key));
      EXPECT_EQ(m, twin.select_member(key));
      seen.insert(m);
      if (m != reseeded.select_member(key)) differs_from_other_seed = true;
    }
  }
  // Rotation actually rotates: every member selected somewhere, and the
  // schedule depends on the seed.
  EXPECT_EQ(seen.size(), policy.total_members());
  EXPECT_TRUE(differs_from_other_seed);
}

TEST(ScoringPolicy, StochasticScoresWithSelectedMemberAndVersion) {
  const ScoringPolicy policy(
      sandwich_ensemble(EnsembleConfig::Kind::kStochastic, 99, 0.25, 0.75));
  const ConstModel primary(0.111);

  constexpr std::size_t kWindows = 64;
  const std::vector<double> flat(kWindows, 0.0);
  std::vector<ScoringPolicy::WindowKey> keys(kWindows);
  for (std::size_t w = 0; w < kWindows; ++w) keys[w] = {5, 100 + w};
  std::vector<double> dist(kWindows * 2, -1.0);
  std::vector<std::uint64_t> versions(kWindows, 0);
  ScoringPolicy::Scratch scratch;
  policy.score(primary, 7, flat, 1, keys, dist, versions, scratch);

  const double probs[] = {0.111, 0.25, 0.75};
  const std::uint64_t vers[] = {7, 2001, 2002};
  std::vector<std::uint64_t> counted(3, 0);
  for (std::size_t w = 0; w < kWindows; ++w) {
    const std::size_t m = policy.select_member(keys[w]);
    EXPECT_EQ(dist[w * 2 + 1], probs[m]) << "window " << w;
    EXPECT_EQ(versions[w], vers[m]) << "window " << w;
    ++counted[m];
  }
  ASSERT_EQ(scratch.member_windows.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m)
    EXPECT_EQ(scratch.member_windows[m], counted[m]) << "member " << m;
}

TEST(StreamEngine, SinglePolicyKeepsDirectScoringPath) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  StreamEngine engine(model, config);
  EXPECT_EQ(engine.scoring_policy(), nullptr);

  auto* stream = engine.register_stream(1);
  const auto windows = make_stream_windows(31, 120, 1);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();

  // Bit-identical to the pre-policy engine: every verdict probability is
  // the model's own output, stamped with the hub epoch (1).
  const auto& verdicts = engine.verdicts(stream);
  ASSERT_EQ(verdicts.size(), windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w)
    EXPECT_EQ(verdicts[w].probability, windows[w][0]) << "window " << w;
  for (const std::uint64_t v : engine.verdict_versions(stream))
    EXPECT_EQ(v, 1u);
}

TEST(StreamEngine, MajorityWithSandwichMembersMatchesPrimary) {
  metrics().reset();
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 2;
  config.record_verdicts = true;
  // Members pinned to 0 and 1: the median of {f[0], 0, 1} is f[0], so the
  // ensemble must reproduce the primary's verdict stream exactly.
  config.ensemble = sandwich_ensemble(EnsembleConfig::Kind::kMajority, 0);
  StreamEngine engine(model, config);
  ASSERT_NE(engine.scoring_policy(), nullptr);

  constexpr std::size_t kWindows = 90;
  auto* stream = engine.register_stream(3);
  const auto windows = make_stream_windows(77, kWindows, 1);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();

  const auto& verdicts = engine.verdicts(stream);
  ASSERT_EQ(verdicts.size(), kWindows);
  for (std::size_t w = 0; w < kWindows; ++w) {
    EXPECT_EQ(verdicts[w].probability, windows[w][0]) << "window " << w;
    EXPECT_EQ(engine.verdict_versions(stream)[w], 1u) << "window " << w;
  }

  // serve.policy.* accounting: every window through the policy, every
  // member scored every window, ensemble size published as a gauge.
  EXPECT_EQ(metrics().counter("serve.policy.windows").value(), kWindows);
  EXPECT_EQ(metrics().gauge("serve.policy.members").value(), 3.0);
  for (std::size_t m = 0; m < 3; ++m)
    EXPECT_EQ(metrics()
                  .counter("serve.policy.member" + std::to_string(m) +
                           ".windows")
                  .value(),
              kWindows)
        << "member " << m;
  // Const members at 0 and 1 straddle every threshold the Stub crosses.
  EXPECT_GT(metrics().counter("serve.policy.disagreements").value(), 0u);
  engine.shutdown();
  metrics().reset();
}

TEST(StreamEngine, StochasticVerdictsInvariantAcrossShardCounts) {
  StubModel model;
  constexpr std::size_t kStreams = 7;
  constexpr std::size_t kWindows = 110;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s)
    workload.push_back(make_stream_windows(600 + s, kWindows, 1));

  std::vector<std::vector<std::vector<double>>> probs_by_run;
  std::vector<std::vector<std::vector<std::uint64_t>>> versions_by_run;
  for (std::size_t shards : {1u, 2u, 4u}) {
    ServeConfig config;
    config.window_size = 1;
    config.num_shards = shards;
    config.record_verdicts = true;
    config.ensemble = sandwich_ensemble(EnsembleConfig::Kind::kStochastic,
                                        0x5e1ec7, 0.25, 0.75);
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(40 + s));
    for (std::size_t w = 0; w < kWindows; ++w)
      for (std::size_t s = 0; s < kStreams; ++s)
        engine.ingest(handles[s], workload[s][w]);
    engine.drain();

    std::vector<std::vector<double>> probs;
    std::vector<std::vector<std::uint64_t>> versions;
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::vector<double> p;
      for (const auto& v : engine.verdicts(handles[s]))
        p.push_back(v.probability);
      probs.push_back(std::move(p));
      versions.push_back(engine.verdict_versions(handles[s]));
    }

    // First run doubles as the oracle check: each window's probability
    // and version stamp belong to the member select_member() names.
    if (probs_by_run.empty()) {
      const ScoringPolicy& policy = *engine.scoring_policy();
      for (std::size_t s = 0; s < kStreams; ++s) {
        for (std::size_t w = 0; w < kWindows; ++w) {
          const std::size_t m =
              policy.select_member({40 + s, static_cast<std::uint64_t>(w)});
          const double expected[] = {workload[s][w][0], 0.25, 0.75};
          const std::uint64_t vers[] = {1, 2001, 2002};
          EXPECT_EQ(probs[s][w], expected[m])
              << "stream " << s << " window " << w;
          EXPECT_EQ(versions[s][w], vers[m])
              << "stream " << s << " window " << w;
        }
      }
    }
    probs_by_run.push_back(std::move(probs));
    versions_by_run.push_back(std::move(versions));
  }
  for (std::size_t r = 1; r < probs_by_run.size(); ++r) {
    EXPECT_EQ(probs_by_run[r], probs_by_run[0]) << "run " << r;
    EXPECT_EQ(versions_by_run[r], versions_by_run[0]) << "run " << r;
  }
}

TEST(StreamEngine, SnapshotPinsPolicyAndRejectsMismatchedRestore) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  config.ensemble = sandwich_ensemble(EnsembleConfig::Kind::kStochastic,
                                      1234, 0.25, 0.75);
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(8);
  for (const auto& w : make_stream_windows(5, 40, 1))
    engine.ingest(stream, w);
  engine.drain();

  std::stringstream buffer;
  engine.checkpoint(buffer);
  const EngineSnapshot snap = EngineSnapshot::read_or_throw(buffer);
  EXPECT_TRUE(snap.policy.present);
  EXPECT_EQ(snap.policy.kind, "stochastic");
  EXPECT_EQ(snap.policy.seed, 1234u);
  EXPECT_EQ(snap.policy.members, 3u);

  const auto shared = std::make_shared<const EngineSnapshot>(snap);
  {
    // Matching policy: restore is accepted.
    ServeConfig same = config;
    same.restore_from = shared;
    EXPECT_NO_THROW(StreamEngine(model, same).shutdown());
  }
  {
    ServeConfig single;
    single.window_size = 1;
    single.restore_from = shared;
    EXPECT_THROW(StreamEngine(model, single), PreconditionError);
  }
  {
    ServeConfig majority = config;
    majority.ensemble.kind = EnsembleConfig::Kind::kMajority;
    majority.restore_from = shared;
    EXPECT_THROW(StreamEngine(model, majority), PreconditionError);
  }
  {
    ServeConfig reseeded = config;
    reseeded.ensemble.seed = 1235;
    reseeded.restore_from = shared;
    EXPECT_THROW(StreamEngine(model, reseeded), PreconditionError);
  }
  {
    ServeConfig wider = config;
    wider.ensemble.members.push_back(make_member(0.5, 2003));
    wider.ensemble.members.push_back(make_member(0.5, 2004));
    wider.restore_from = shared;
    EXPECT_THROW(StreamEngine(model, wider), PreconditionError);
  }
}

// Concurrent-feeder soak for the stochastic policy: the verdict stream
// must be a pure function of (seed, stream, ordinal) — invariant under
// feeder interleaving, shard count, AND a checkpoint/restore cut at an
// arbitrary point, which exercises the restored-ordinal continuation of
// the selection schedule. The TSan CI job runs this suite (PolicySoak)
// for race coverage of the shared ScoringPolicy.
TEST(PolicySoak, RestartAndReshardPreserveStochasticVerdictStreams) {
  StubModel model;
  constexpr std::size_t kFeeders = 4;
  constexpr std::size_t kStreamsPerFeeder = 3;
  constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;
  constexpr std::size_t kWindows = 140;
  constexpr std::size_t kCut = 60;  // checkpoint after this many windows

  const auto ensemble = [] {
    return sandwich_ensemble(EnsembleConfig::Kind::kStochastic, 0xf01d,
                             0.25, 0.75);
  };
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s)
    workload.push_back(make_stream_windows(9000 + s, kWindows, 1));

  // Reference: one engine, one shard, the whole feed in one life.
  std::vector<std::vector<double>> expected_probs(kStreams);
  std::vector<std::vector<std::uint64_t>> expected_versions(kStreams);
  {
    ServeConfig config;
    config.window_size = 1;
    config.record_verdicts = true;
    config.ensemble = ensemble();
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(s));
    for (std::size_t w = 0; w < kWindows; ++w)
      for (std::size_t s = 0; s < kStreams; ++s)
        engine.ingest(handles[s], workload[s][w]);
    engine.drain();
    for (std::size_t s = 0; s < kStreams; ++s) {
      for (const auto& v : engine.verdicts(handles[s]))
        expected_probs[s].push_back(v.probability);
      expected_versions[s] = engine.verdict_versions(handles[s]);
    }
  }

  // Live run: concurrent feeders into a sharded engine, checkpoint at the
  // cut, restore into an engine with a DIFFERENT shard count, finish the
  // feed there.
  auto feed = [&](StreamEngine& engine,
                  std::vector<StreamEngine::StreamHandle>& handles,
                  std::size_t begin, std::size_t end) {
    std::vector<std::thread> feeders;
    for (std::size_t f = 0; f < kFeeders; ++f)
      feeders.emplace_back([&, f] {
        for (std::size_t w = begin; w < end; ++w)
          for (std::size_t j = 0; j < kStreamsPerFeeder; ++j) {
            const std::size_t s = f * kStreamsPerFeeder + j;
            engine.ingest(handles[s], workload[s][w]);
          }
      });
    for (auto& t : feeders) t.join();
    engine.drain();
  };

  std::stringstream checkpoint;
  std::vector<std::vector<double>> probs(kStreams);
  std::vector<std::vector<std::uint64_t>> versions(kStreams);
  {
    ServeConfig config;
    config.window_size = 1;
    config.num_shards = 2;
    config.record_verdicts = true;
    config.ensemble = ensemble();
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(s));
    feed(engine, handles, 0, kCut);
    engine.checkpoint(checkpoint);
    for (std::size_t s = 0; s < kStreams; ++s) {
      for (const auto& v : engine.verdicts(handles[s]))
        probs[s].push_back(v.probability);
      versions[s] = engine.verdict_versions(handles[s]);
    }
    engine.shutdown();
  }
  {
    ServeConfig config;
    config.window_size = 1;
    config.num_shards = 3;
    config.record_verdicts = true;
    config.ensemble = ensemble();
    config.restore_from = std::make_shared<const EngineSnapshot>(
        EngineSnapshot::read_or_throw(checkpoint));
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(s));
    feed(engine, handles, kCut, kWindows);
    for (std::size_t s = 0; s < kStreams; ++s) {
      for (const auto& v : engine.verdicts(handles[s]))
        probs[s].push_back(v.probability);
      for (const std::uint64_t v : engine.verdict_versions(handles[s]))
        versions[s].push_back(v);
    }
    engine.shutdown();
  }

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(probs[s].size(), kWindows) << "stream " << s;
    EXPECT_EQ(probs[s], expected_probs[s]) << "stream " << s;
    EXPECT_EQ(versions[s], expected_versions[s]) << "stream " << s;
  }
}

}  // namespace
}  // namespace hmd::serve
