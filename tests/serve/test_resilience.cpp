// Tests for the serving resilience layer (serve/resilience.hpp): model
// hot-swap, checkpoint/restore, deterministic fault injection and the
// degradation ladder. The determinism contracts here are exact-equality,
// not approximate: swapping, checkpointing and degrading must never
// change a verdict the serial reference would not have produced.
#include "serve/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deployment.hpp"
#include "core/online_detector.hpp"
#include "ml/registry.hpp"
#include "serve/stream_engine.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

using core::OnlineDetector;
using core::OnlineDetectorConfig;

/// Deterministic stub: P(malware) = first counter value.
class StubModel : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

/// P(malware) = 1 - first counter: distinguishable from StubModel on
/// every window, so a verdict betrays which epoch scored it.
class InverseModel final : public StubModel {
 public:
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {f[0], 1.0 - f[0]};
  }
  std::string name() const override { return "Inverse"; }
};

/// P(malware) = first counter / 2 — the recognizable fallback.
class HalfModel final : public StubModel {
 public:
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0] * 0.5, f[0] * 0.5};
  }
  std::string name() const override { return "Half"; }
};

/// Batch scoring always throws.
class FailingModel final : public StubModel {
 public:
  void distribution_batch(std::span<const double>, std::size_t,
                          std::span<double>) const override {
    throw Error("FailingModel: scoring exploded");
  }
};

/// Stalls every batch well past any reasonable latency budget.
class SlowModel final : public StubModel {
 public:
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StubModel::distribution_batch(flat, window_size, out);
  }
};

/// Fails its first `failures` batch calls, then scores like StubModel.
class FlakyModel final : public StubModel {
 public:
  explicit FlakyModel(int failures) : remaining_(failures) {}
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    if (remaining_.fetch_sub(1, std::memory_order_relaxed) > 0)
      throw Error("FlakyModel: still warming up");
    StubModel::distribution_batch(flat, window_size, out);
  }

 private:
  mutable std::atomic<int> remaining_;
};

std::vector<std::vector<double>> make_stream_windows(
    std::uint64_t stream_seed, std::size_t num_windows, std::size_t width) {
  Rng rng(stream_seed);
  std::vector<std::vector<double>> windows;
  windows.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    std::vector<double> window(width);
    const bool hot = rng.bernoulli(0.3);
    for (std::size_t f = 0; f < width; ++f)
      window[f] = hot ? rng.uniform(0.95, 1.0) : rng.uniform();
    windows.push_back(std::move(window));
  }
  return windows;
}

std::vector<OnlineDetector::Verdict> serial_replay(
    const ml::Classifier& model, const OnlineDetectorConfig& policy,
    const std::vector<std::vector<double>>& windows) {
  OnlineDetector det(model, policy);
  std::vector<OnlineDetector::Verdict> verdicts;
  verdicts.reserve(windows.size());
  for (const auto& w : windows) verdicts.push_back(det.observe(w));
  return verdicts;
}

void expect_verdicts_identical(
    const std::vector<OnlineDetector::Verdict>& actual,
    const std::vector<OnlineDetector::Verdict>& expected,
    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(actual[w].probability, expected[w].probability)
        << label << " window " << w;
    EXPECT_EQ(actual[w].flagged, expected[w].flagged)
        << label << " window " << w;
    EXPECT_EQ(actual[w].alarm, expected[w].alarm)
        << label << " window " << w;
  }
}

/// Current value of a serve.resilience.* counter (for before/after deltas
/// — the registry is process-wide and survives across tests).
std::uint64_t res_counter(const std::string& name) {
  return metrics().counter("serve.resilience." + name).value();
}

/// A serialized v2 deployment bundle (primary + fallback) for hot-swap
/// tests — the same artifact hmd_train --bundle --fallback writes.
std::string serialized_v2_bundle() {
  const ml::Dataset data = ml::testdata::separable_binary(120);
  auto model = ml::make_classifier("MLR");
  model->train(data);
  auto fallback = ml::make_classifier("OneR");
  fallback->train(data);
  const core::DeploymentBundle bundle(std::move(model), std::move(fallback),
                                      {}, {});
  std::ostringstream out;
  core::save_bundle(out, bundle);
  return out.str();
}

// ---------------------------------------------------------------------------
// ModelHub
// ---------------------------------------------------------------------------

TEST(ModelHub, VersionsEpochsAndValidatesModels) {
  ModelHub hub;
  EXPECT_EQ(hub.version(), 0u);
  EXPECT_EQ(hub.current(), nullptr);

  auto primary = std::make_shared<StubModel>();
  EXPECT_EQ(hub.publish(primary), 1u);
  EXPECT_EQ(hub.version(), 1u);
  EXPECT_EQ(hub.current()->primary.get(), primary.get());
  EXPECT_EQ(hub.current()->fallback, nullptr);

  EXPECT_EQ(hub.publish(std::make_shared<InverseModel>(),
                        std::make_shared<HalfModel>()),
            2u);
  EXPECT_EQ(hub.current()->version, 2u);
  EXPECT_NE(hub.current()->fallback, nullptr);

  EXPECT_THROW(hub.publish(nullptr), PreconditionError);
  const auto untrained = ml::make_classifier("MLR");
  EXPECT_THROW(hub.publish_unowned(*untrained), PreconditionError);
  EXPECT_EQ(hub.version(), 2u);  // failed publishes leave the epoch alone
}

TEST(ModelHub, CurrentPinsEpochAcrossSwap) {
  ModelHub hub;
  hub.publish(std::make_shared<StubModel>());
  const auto pinned = hub.current();
  hub.publish(std::make_shared<InverseModel>());
  // The old epoch (and its model) stays alive while pinned.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->primary->name(), "Stub");
  EXPECT_EQ(hub.current()->version, 2u);
}

TEST(ModelHub, PublishFromStreamLoadsV2Bundle) {
  ModelHub hub;
  std::istringstream in(serialized_v2_bundle());
  const Result<std::uint64_t> version = hub.publish_from_stream(in);
  ASSERT_TRUE(version.ok()) << version.error().to_string();
  EXPECT_EQ(version.value(), 1u);
  const auto epoch = hub.current();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->primary->num_classes(), 2u);
  ASSERT_NE(epoch->fallback, nullptr);
  EXPECT_EQ(epoch->fallback->name(), "OneR");
}

TEST(ModelHub, CorruptBundleSwapKeepsPreviousEpochServing) {
  ModelHub hub;
  hub.publish(std::make_shared<StubModel>());
  const auto before = hub.current();

  std::istringstream garbage("this is not a bundle\n");
  const Result<std::uint64_t> swapped = hub.publish_from_stream(garbage);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.error().code(), ErrCode::kParse);
  EXPECT_NE(swapped.error().to_string().find("hot-swap rejected"),
            std::string::npos);
  EXPECT_NE(swapped.error().to_string().find("loading deployment bundle"),
            std::string::npos);

  // The bad push changed nothing: same epoch object, same version.
  EXPECT_EQ(hub.version(), 1u);
  EXPECT_EQ(hub.current(), before);
}

// ---------------------------------------------------------------------------
// EngineSnapshot format
// ---------------------------------------------------------------------------

EngineSnapshot sample_snapshot() {
  EngineSnapshot snap;
  snap.model_version = 3;
  StreamSnapshot calm;
  calm.id = 7;
  calm.accepted = 120;
  calm.evicted = 4;
  calm.high_water = 17;
  calm.detector = {.windows = 116, .flagged = 30, .streak = 2};
  StreamSnapshot alarmed;
  alarmed.id = 8;
  alarmed.accepted = 50;
  alarmed.high_water = 3;
  alarmed.detector = {.windows = 50,
                      .flagged = 12,
                      .streak = 0,
                      .alarmed = true,
                      .alarm_window = 31};
  snap.streams = {calm, alarmed};
  snap.tier.present = true;
  snap.tier.name = "q16";
  return snap;
}

TEST(EngineSnapshotFormat, WriteReadRoundTrip) {
  const EngineSnapshot original = sample_snapshot();
  std::ostringstream out;
  original.write(out);
  EXPECT_EQ(out.str().rfind("hmd-snapshot v1\n", 0), 0u);

  std::istringstream in(out.str());
  const Result<EngineSnapshot> loaded = EngineSnapshot::read(in);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  const EngineSnapshot& snap = loaded.value();
  EXPECT_EQ(snap.model_version, 3u);
  ASSERT_EQ(snap.streams.size(), 2u);
  EXPECT_EQ(snap.streams[0].id, 7u);
  EXPECT_EQ(snap.streams[0].accepted, 120u);
  EXPECT_EQ(snap.streams[0].evicted, 4u);
  EXPECT_EQ(snap.streams[0].high_water, 17u);
  EXPECT_EQ(snap.streams[0].detector.windows, 116u);
  EXPECT_EQ(snap.streams[0].detector.flagged, 30u);
  EXPECT_EQ(snap.streams[0].detector.streak, 2u);
  EXPECT_FALSE(snap.streams[0].detector.alarmed);
  EXPECT_EQ(snap.streams[0].detector.alarm_window,
            OnlineDetector::kNoAlarm);
  EXPECT_TRUE(snap.streams[1].detector.alarmed);
  EXPECT_EQ(snap.streams[1].detector.alarm_window, 31u);
  EXPECT_TRUE(snap.tier.present);
  EXPECT_EQ(snap.tier.name, "q16");

  // Snapshots written before the tier layer (no trailing section) load
  // fine and stay unpinned.
  EngineSnapshot legacy = sample_snapshot();
  legacy.tier = {};
  std::ostringstream legacy_out;
  legacy.write(legacy_out);
  std::istringstream legacy_in(legacy_out.str());
  const Result<EngineSnapshot> reloaded = EngineSnapshot::read(legacy_in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();
  EXPECT_FALSE(reloaded.value().tier.present);
}

TEST(EngineSnapshotFormat, ReadRejectsMalformedInput) {
  auto expect_parse_error = [](const std::string& text,
                               const std::string& label) {
    std::istringstream in(text);
    const Result<EngineSnapshot> r = EngineSnapshot::read(in);
    ASSERT_FALSE(r.ok()) << label;
    EXPECT_EQ(r.error().code(), ErrCode::kParse) << label;
    EXPECT_NE(r.error().to_string().find("reading engine snapshot"),
              std::string::npos)
        << label;
  };

  expect_parse_error("hmd-snapshot v9\n", "bad header");
  expect_parse_error("hmd-snapshot v1\nmodel_version 1\nstreams 2\n",
                     "truncated stream list");
  expect_parse_error(
      "hmd-snapshot v1\nmodel_version 1\nstreams 1\n"
      "stream 1 accepted 5 evicted 0 high_water 1 windows 5 flagged 9 "
      "streak 0 alarmed 0 alarm_window -\n",
      "flagged > windows");
  expect_parse_error(
      "hmd-snapshot v1\nmodel_version 1\nstreams 1\n"
      "stream 1 accepted 5 evicted 0 high_water 1 windows 5 flagged 2 "
      "streak 1 alarmed 1 alarm_window -\n",
      "alarmed without alarm window");
  expect_parse_error(
      "hmd-snapshot v1\nmodel_version 1\nstreams 1\n"
      "stream 1 accepted 5 evicted 0 high_water 1 windows 5 flagged 2 "
      "streak 1 alarmed 0 alarm_window - extra\n",
      "trailing tokens");
  expect_parse_error(
      "hmd-snapshot v1\nmodel_version 1\nstreams 1\n"
      "stream 1 accepted 5 evicted 0 high_water 1 windows 5 flagged 2 "
      "streak 1 alarmed 0 alarm_window -\n"
      "tier\n",
      "tier without a name");
  expect_parse_error(
      "hmd-snapshot v1\nmodel_version 1\nstreams 1\n"
      "stream 1 accepted 5 evicted 0 high_water 1 windows 5 flagged 2 "
      "streak 1 alarmed 0 alarm_window -\n"
      "tear int8\n",
      "unknown optional section");

  std::istringstream throwing("junk\n");
  EXPECT_THROW((void)EngineSnapshot::read_or_throw(throwing), ParseError);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleIsAPureFunctionOfThePlan) {
  FaultPlan plan;
  plan.seed = 0xfau;
  plan.score_throw_rate = 0.3;
  plan.slow_batch_rate = 0.2;
  plan.slow_batch_us = 1;
  FaultInjector a(plan);
  FaultInjector b(plan);
  std::size_t throwing = 0, slow = 0;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
      EXPECT_EQ(a.batch_throws(shard, ordinal),
                b.batch_throws(shard, ordinal));
      EXPECT_EQ(a.batch_is_slow(shard, ordinal),
                b.batch_is_slow(shard, ordinal));
      throwing += a.batch_throws(shard, ordinal) ? 1 : 0;
      slow += a.batch_is_slow(shard, ordinal) ? 1 : 0;
    }
  }
  // The rates actually bite (600 draws at 0.3/0.2 cannot round to zero).
  EXPECT_GT(throwing, 0u);
  EXPECT_LT(throwing, 600u);
  EXPECT_GT(slow, 0u);

  // A different seed yields a different schedule somewhere.
  FaultPlan other = plan;
  other.seed = 0xfbu;
  FaultInjector c(other);
  bool differs = false;
  for (std::uint64_t ordinal = 0; ordinal < 200 && !differs; ++ordinal)
    differs = a.batch_throws(0, ordinal) != c.batch_throws(0, ordinal);
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ThrowBurstOnlyFaultsLeadingAttempts) {
  FaultPlan plan;
  plan.seed = 1;
  plan.score_throw_rate = 1.0;  // every batch faulted
  plan.throw_burst = 2;
  FaultInjector inj(plan);
  EXPECT_THROW(inj.on_score_attempt(0, 0, 0), InjectedFault);
  EXPECT_THROW(inj.on_score_attempt(0, 0, 1), InjectedFault);
  EXPECT_NO_THROW(inj.on_score_attempt(0, 0, 2));  // retries win
  EXPECT_EQ(inj.throws_injected(), 2u);
}

TEST(FaultInjector, FailFirstBatchesFaultEveryAttempt) {
  FaultPlan plan;
  plan.seed = 1;
  plan.fail_first_batches = 2;
  FaultInjector inj(plan);
  for (std::size_t attempt = 0; attempt < 5; ++attempt) {
    EXPECT_THROW(inj.on_score_attempt(0, 0, attempt), InjectedFault);
    EXPECT_THROW(inj.on_score_attempt(0, 1, attempt), InjectedFault);
  }
  EXPECT_NO_THROW(inj.on_score_attempt(0, 2, 0));  // past the burn-in
}

TEST(FaultPlan, ValidateRejectsBadRates) {
  FaultPlan plan;
  plan.score_throw_rate = 1.5;
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan = {};
  plan.slow_batch_rate = -0.1;
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan = {};
  plan.throw_burst = 0;
  EXPECT_THROW(plan.validate(), PreconditionError);
}

// ---------------------------------------------------------------------------
// Hot-swap through the engine
// ---------------------------------------------------------------------------

TEST(StreamEngine, HotSwapStampsVerdictVersions) {
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(42);

  const auto phase1 = make_stream_windows(31, 80, 1);
  const auto phase2 = make_stream_windows(32, 80, 1);
  for (const auto& w : phase1) engine.ingest(stream, w);
  engine.drain();
  hub->publish(std::make_shared<InverseModel>());
  for (const auto& w : phase2) engine.ingest(stream, w);
  engine.drain();

  const auto& verdicts = engine.verdicts(stream);
  const auto& versions = engine.verdict_versions(stream);
  ASSERT_EQ(verdicts.size(), phase1.size() + phase2.size());
  ASSERT_EQ(versions.size(), verdicts.size());

  // Version stamps split exactly at the drain/swap boundary, and each
  // verdict's probability is the stamped epoch's model applied to the
  // window — bit-identical, with the detector state machine carried
  // straight across the swap.
  StubModel replay_model;
  OnlineDetector reference(replay_model, config.policy);
  for (std::size_t w = 0; w < verdicts.size(); ++w) {
    const bool before_swap = w < phase1.size();
    EXPECT_EQ(versions[w], before_swap ? 1u : 2u) << "window " << w;
    const double x =
        before_swap ? phase1[w][0] : phase2[w - phase1.size()][0];
    const double expected_p = before_swap ? x : 1.0 - x;
    EXPECT_EQ(verdicts[w].probability, expected_p) << "window " << w;
    const auto expected = reference.apply_probability(expected_p);
    EXPECT_EQ(verdicts[w].flagged, expected.flagged) << "window " << w;
    EXPECT_EQ(verdicts[w].alarm, expected.alarm) << "window " << w;
  }
  engine.shutdown();
}

TEST(StreamEngine, SwapUnderLiveTrafficIsAtomicPerBatch) {
  const std::uint64_t swaps_before = res_counter("swaps_observed");
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 2;
  config.ring_capacity = 64;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  StreamEngine engine(hub, config);

  constexpr std::size_t kStreams = 4;
  constexpr std::size_t kWindows = 600;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(s));
    workload.push_back(make_stream_windows(700 + s, kWindows, 1));
  }

  // The feeder pauses halfway so the swap provably lands mid-stream; the
  // first half's windows are still in flight (ring capacity 64 << 300
  // windows/stream forces the workers to score during ingest), so batches
  // on both sides of the publish race it for real.
  std::atomic<bool> half_done{false};
  std::atomic<bool> swapped{false};
  std::thread feeder([&] {
    for (std::size_t w = 0; w < kWindows; ++w) {
      if (w == kWindows / 2) {
        half_done.store(true, std::memory_order_release);
        while (!swapped.load(std::memory_order_acquire))
          std::this_thread::yield();
      }
      for (std::size_t s = 0; s < kStreams; ++s)
        engine.ingest(handles[s], workload[s][w]);
    }
  });
  while (!half_done.load(std::memory_order_acquire)) std::this_thread::yield();
  hub->publish(std::make_shared<InverseModel>());
  swapped.store(true, std::memory_order_release);
  feeder.join();
  engine.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto& verdicts = engine.verdicts(handles[s]);
    const auto& versions = engine.verdict_versions(handles[s]);
    ASSERT_EQ(verdicts.size(), kWindows);
    ASSERT_EQ(versions.size(), kWindows);
    StubModel replay_model;
    OnlineDetector reference(replay_model, config.policy);
    for (std::size_t w = 0; w < kWindows; ++w) {
      // A stream only ever moves forward through epochs...
      if (w > 0) EXPECT_GE(versions[w], versions[w - 1]) << "window " << w;
      ASSERT_TRUE(versions[w] == 1u || versions[w] == 2u);
      // ...and each verdict is exactly the stamped model's output.
      const double x = workload[s][w][0];
      const double expected_p = versions[w] == 1u ? x : 1.0 - x;
      EXPECT_EQ(verdicts[w].probability, expected_p)
          << "stream " << s << " window " << w;
      const auto expected = reference.apply_probability(expected_p);
      EXPECT_EQ(verdicts[w].flagged, expected.flagged);
      EXPECT_EQ(verdicts[w].alarm, expected.alarm);
    }
    EXPECT_EQ(versions.back(), 2u);  // the swap landed before drain
  }
  EXPECT_GT(res_counter("swaps_observed"), swaps_before);
  engine.shutdown();
}

TEST(StreamEngine, CorruptHotSwapLeavesEngineServing) {
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(9);

  std::istringstream garbage("hmd-bundle v7 nope\n");
  ASSERT_FALSE(engine.hub().publish_from_stream(garbage).ok());

  const auto windows = make_stream_windows(51, 120, 1);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();

  StubModel model;
  expect_verdicts_identical(engine.verdicts(stream),
                            serial_replay(model, config.policy, windows),
                            "after corrupt swap");
  for (const std::uint64_t v : engine.verdict_versions(stream))
    EXPECT_EQ(v, 1u);
  EXPECT_FALSE(engine.last_error().has_value());
  engine.shutdown();
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

TEST(StreamEngine, CheckpointRestoreContinuesBitIdentically) {
  // Property test across seeds: stop an engine mid-workload, checkpoint,
  // restore into a fresh engine, finish the workload — verdicts and final
  // monitor state must equal an uninterrupted run exactly.
  StubModel model;
  const OnlineDetectorConfig policy{.flag_threshold = 0.9,
                                    .confirm_windows = 2};
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    Rng shape(seed);
    constexpr std::size_t kStreams = 5;
    std::vector<std::vector<std::vector<double>>> workload;
    std::vector<std::size_t> cut(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      const auto count =
          static_cast<std::size_t>(shape.uniform_int(20, 120));
      workload.push_back(make_stream_windows(seed * 100 + s, count, 1));
      cut[s] = static_cast<std::size_t>(shape.uniform_index(count + 1));
    }

    ServeConfig config;
    config.window_size = 1;
    config.num_shards = 2;
    config.record_verdicts = true;
    config.policy = policy;

    // Uninterrupted reference run.
    StreamEngine reference(model, config);
    std::vector<StreamEngine::StreamHandle> ref_handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      ref_handles.push_back(reference.register_stream(s));
    for (std::size_t s = 0; s < kStreams; ++s)
      for (const auto& w : workload[s])
        reference.ingest(ref_handles[s], w);
    reference.drain();

    // First half, checkpointed through the text format.
    std::string checkpoint_text;
    {
      StreamEngine first(model, config);
      std::vector<StreamEngine::StreamHandle> handles;
      for (std::size_t s = 0; s < kStreams; ++s)
        handles.push_back(first.register_stream(s));
      for (std::size_t s = 0; s < kStreams; ++s)
        for (std::size_t w = 0; w < cut[s]; ++w)
          first.ingest(handles[s], workload[s][w]);
      first.drain();
      std::ostringstream out;
      first.checkpoint(out);
      checkpoint_text = out.str();
      first.shutdown();
    }

    // Second half on a restored engine.
    std::istringstream in(checkpoint_text);
    Result<EngineSnapshot> snap = EngineSnapshot::read(in);
    ASSERT_TRUE(snap.ok()) << snap.error().to_string();
    ServeConfig resumed_config = config;
    resumed_config.restore_from =
        std::make_shared<const EngineSnapshot>(std::move(snap).value());
    const std::uint64_t restored_before = res_counter("restored_streams");
    StreamEngine resumed(model, resumed_config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(resumed.register_stream(s));
    EXPECT_EQ(res_counter("restored_streams"), restored_before + kStreams);
    for (std::size_t s = 0; s < kStreams; ++s)
      for (std::size_t w = cut[s]; w < workload[s].size(); ++w)
        resumed.ingest(handles[s], workload[s][w]);
    resumed.drain();

    for (std::size_t s = 0; s < kStreams; ++s) {
      const std::string label = "seed " + std::to_string(seed) +
                                " stream " + std::to_string(s);
      // The resumed log holds only post-checkpoint verdicts; they must
      // equal the reference run's tail exactly.
      const auto& full = reference.verdicts(ref_handles[s]);
      const std::vector<OnlineDetector::Verdict> tail(
          full.begin() + static_cast<std::ptrdiff_t>(cut[s]), full.end());
      expect_verdicts_identical(resumed.verdicts(handles[s]), tail, label);

      const auto& want = reference.monitor(ref_handles[s]);
      const auto& got = resumed.monitor(handles[s]);
      EXPECT_EQ(got.windows_seen(), want.windows_seen()) << label;
      EXPECT_EQ(got.alarmed(), want.alarmed()) << label;
      EXPECT_EQ(got.alarm_window(), want.alarm_window()) << label;
      EXPECT_DOUBLE_EQ(got.flag_rate(), want.flag_rate()) << label;
      // Accounting counters carried across the restart.
      EXPECT_EQ(resumed.ingested(handles[s]), workload[s].size()) << label;
    }
    resumed.shutdown();
    reference.shutdown();
  }
}

TEST(StreamEngine, RestoreClaimsDuplicateIdsFirstCome) {
  StubModel model;
  EngineSnapshot snap;
  snap.model_version = 1;
  StreamSnapshot a;
  a.id = 5;
  a.accepted = 10;
  a.detector = {.windows = 10, .flagged = 3, .streak = 1};
  StreamSnapshot b;
  b.id = 5;
  b.accepted = 20;
  b.detector = {.windows = 20, .flagged = 6, .streak = 2};
  snap.streams = {a, b};

  ServeConfig config;
  config.window_size = 1;
  config.restore_from = std::make_shared<const EngineSnapshot>(snap);
  StreamEngine engine(model, config);
  auto* first = engine.register_stream(5);
  auto* second = engine.register_stream(5);
  auto* third = engine.register_stream(5);  // nothing left to claim
  EXPECT_EQ(engine.monitor(first).windows_seen(), 10u);
  EXPECT_EQ(engine.monitor(second).windows_seen(), 20u);
  EXPECT_EQ(engine.monitor(third).windows_seen(), 0u);
  EXPECT_EQ(engine.ingested(first), 10u);
  EXPECT_EQ(engine.ingested(second), 20u);
  engine.shutdown();
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

TEST(StreamEngine, FallbackServesWhenPrimaryAlwaysFails) {
  const std::uint64_t fallback_before = res_counter("fallback_batches");
  const std::uint64_t degrade_before = res_counter("degrade_events");
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<FailingModel>(),
               std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  config.resilience.max_retries = 0;
  config.resilience.retry_backoff_us = 0;
  config.resilience.degrade_after = 1;
  config.resilience.probe_every = 1u << 20;  // never probe in this test
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(17);

  const auto windows = make_stream_windows(61, 200, 1);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();  // must NOT throw: the fallback absorbed every batch

  StubModel fallback;
  expect_verdicts_identical(engine.verdicts(stream),
                            serial_replay(fallback, config.policy, windows),
                            "fallback determinism");
  EXPECT_TRUE(engine.shard_degraded(engine.shard_of(17)));
  EXPECT_FALSE(engine.last_error().has_value());
  EXPECT_GT(res_counter("fallback_batches"), fallback_before);
  EXPECT_GT(res_counter("degrade_events"), degrade_before);
  engine.shutdown();
}

TEST(StreamEngine, NoFallbackLatchesErrorValue) {
  FailingModel model;
  ServeConfig config;
  config.window_size = 1;
  config.resilience.retry_backoff_us = 0;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(3);
  for (int i = 0; i < 10; ++i)
    engine.ingest(stream, std::vector<double>{0.5});
  EXPECT_THROW(engine.drain(), Error);

  const std::optional<ErrorInfo> error = engine.last_error();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code(), ErrCode::kInternal);
  EXPECT_NE(error->to_string().find("scoring batch on shard"),
            std::string::npos);
  EXPECT_NE(error->to_string().find("FailingModel"), std::string::npos);
  EXPECT_THROW(engine.shutdown(), Error);
}

TEST(StreamEngine, DestructorRecordsSwallowedError) {
  const std::uint64_t swallowed_before = res_counter("errors_swallowed");
  {
    FailingModel model;
    ServeConfig config;
    config.window_size = 1;
    config.resilience.retry_backoff_us = 0;
    StreamEngine engine(model, config);
    auto* stream = engine.register_stream(1);
    engine.ingest(stream, std::vector<double>{0.5});
    // Wait for the worker to latch the failure, then drop the engine
    // without ever calling drain()/shutdown().
    while (!engine.last_error().has_value())
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(res_counter("errors_swallowed"), swallowed_before + 1);
}

TEST(StreamEngine, LatencyBudgetDegradesToFallback) {
  const std::uint64_t overruns_before = res_counter("budget_overruns");
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<SlowModel>(), std::make_shared<HalfModel>());

  ServeConfig config;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  config.resilience.latency_budget_us = 50;  // SlowModel takes ~2000us
  config.resilience.budget_strikes = 1;
  config.resilience.degrade_after = 1u << 20;  // only the budget degrades
  config.resilience.probe_every = 1u << 20;
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(23);

  // Round 1: scored by the (slow) primary; blows the budget and degrades.
  engine.ingest(stream, std::vector<double>{0.8});
  engine.drain();
  EXPECT_TRUE(engine.shard_degraded(engine.shard_of(23)));
  EXPECT_GT(res_counter("budget_overruns"), overruns_before);
  ASSERT_EQ(engine.verdicts(stream).size(), 1u);
  EXPECT_EQ(engine.verdicts(stream)[0].probability, 0.8);  // primary

  // Round 2: the degraded shard scores on the fallback (P = x/2).
  engine.ingest(stream, std::vector<double>{0.8});
  engine.drain();
  ASSERT_EQ(engine.verdicts(stream).size(), 2u);
  EXPECT_EQ(engine.verdicts(stream)[1].probability, 0.4);  // fallback
  engine.shutdown();
}

TEST(StreamEngine, ProbeRecoversOntoHealedPrimary) {
  const std::uint64_t recoveries_before = res_counter("recoveries");
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<FlakyModel>(3),  // heals on the 4th call
               std::make_shared<HalfModel>());

  ServeConfig config;
  config.num_shards = 1;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  config.resilience.max_retries = 0;
  config.resilience.retry_backoff_us = 0;
  config.resilience.degrade_after = 1;
  config.resilience.probe_every = 1;  // probe every degraded batch
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(2);

  // One window per drain cycle = exactly one batch per step, so the
  // ladder walk is fully deterministic:
  //   batch 0: primary fails -> fallback, degrade
  //   batch 1: probe fails   -> fallback
  //   batch 2: probe fails   -> fallback
  //   batch 3: probe succeeds -> recover, scored by primary
  //   batch 4: normal mode, primary
  const double x = 0.6;
  const std::vector<double> expected_p = {0.3, 0.3, 0.3, 0.6, 0.6};
  for (std::size_t step = 0; step < expected_p.size(); ++step) {
    engine.ingest(stream, std::vector<double>{x});
    engine.drain();
  }
  const auto& verdicts = engine.verdicts(stream);
  ASSERT_EQ(verdicts.size(), expected_p.size());
  for (std::size_t w = 0; w < expected_p.size(); ++w)
    EXPECT_EQ(verdicts[w].probability, expected_p[w]) << "batch " << w;
  EXPECT_FALSE(engine.shard_degraded(0));
  EXPECT_EQ(res_counter("recoveries"), recoveries_before + 1);
  EXPECT_FALSE(engine.last_error().has_value());
  engine.shutdown();
}

TEST(StreamEngine, FailFirstBatchesWalkTheWholeLadderDeterministically) {
  // Injected burn-in faults (not a broken model): the first two batches
  // exhaust their retries, degrading the shard; the first probe recovers
  // it. HalfModel as fallback makes every rung visible in the verdicts.
  auto injector = std::make_shared<FaultInjector>(FaultPlan{
      .seed = 7, .fail_first_batches = 2});
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>(), std::make_shared<HalfModel>());

  ServeConfig config;
  config.num_shards = 1;
  config.window_size = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  config.resilience.max_retries = 1;
  config.resilience.retry_backoff_us = 0;
  config.resilience.degrade_after = 2;
  config.resilience.probe_every = 4;
  config.resilience.faults = injector;
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(4);

  //   batch 0: faulted every attempt -> fallback      (failures = 1)
  //   batch 1: faulted every attempt -> fallback      (failures = 2, degrade)
  //   batch 2-4: degraded, no probe  -> fallback
  //   batch 5: probe (4th degraded batch) succeeds -> primary, recover
  //   batch 6: normal mode           -> primary
  const double x = 0.8;
  const std::vector<double> expected_p = {0.4, 0.4, 0.4, 0.4, 0.4,
                                          0.8, 0.8};
  for (std::size_t step = 0; step < expected_p.size(); ++step) {
    engine.ingest(stream, std::vector<double>{x});
    engine.drain();
  }
  const auto& verdicts = engine.verdicts(stream);
  ASSERT_EQ(verdicts.size(), expected_p.size());
  for (std::size_t w = 0; w < expected_p.size(); ++w)
    EXPECT_EQ(verdicts[w].probability, expected_p[w]) << "batch " << w;
  EXPECT_FALSE(engine.shard_degraded(0));
  EXPECT_GT(injector->throws_injected(), 0u);
  engine.shutdown();
}

// ---------------------------------------------------------------------------
// Soaks (the TSan CI job runs this suite for race coverage)
// ---------------------------------------------------------------------------

TEST(ResilienceSoak, ConcurrentSnapshotWhileIngesting) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 2;
  config.ring_capacity = 32;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  StreamEngine engine(model, config);

  constexpr std::size_t kFeeders = 3;
  constexpr std::size_t kStreamsPerFeeder = 4;
  constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;
  constexpr std::size_t kWindows = 400;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(300 + s));
    workload.push_back(make_stream_windows(900 + s, kWindows, 1));
  }

  std::atomic<bool> feeding{true};
  std::vector<std::thread> feeders;
  for (std::size_t f = 0; f < kFeeders; ++f)
    feeders.emplace_back([&, f] {
      for (std::size_t w = 0; w < kWindows; ++w)
        for (std::size_t j = 0; j < kStreamsPerFeeder; ++j) {
          const std::size_t s = f * kStreamsPerFeeder + j;
          engine.ingest(handles[s], workload[s][w]);
        }
    });

  // Snapshot continuously while traffic is live; every captured cut must
  // be internally consistent and serialize/parse cleanly.
  std::size_t snapshots_taken = 0;
  std::thread snapshotter([&] {
    while (feeding.load(std::memory_order_relaxed)) {
      const EngineSnapshot snap = engine.snapshot();
      EXPECT_EQ(snap.streams.size(), kStreams);
      for (const StreamSnapshot& s : snap.streams) {
        EXPECT_LE(s.detector.flagged, s.detector.windows);
        EXPECT_LE(s.detector.streak, s.detector.flagged);
        EXPECT_LE(s.detector.windows, s.accepted);
        EXPECT_EQ(s.detector.alarmed,
                  s.detector.alarm_window != OnlineDetector::kNoAlarm);
      }
      std::ostringstream out;
      snap.write(out);
      std::istringstream in(out.str());
      EXPECT_TRUE(EngineSnapshot::read(in).ok());
      ++snapshots_taken;
    }
  });
  for (auto& t : feeders) t.join();
  feeding.store(false, std::memory_order_relaxed);
  snapshotter.join();
  engine.drain();
  EXPECT_GT(snapshots_taken, 0u);

  // Live snapshots never perturbed the verdict stream.
  for (std::size_t s = 0; s < kStreams; ++s)
    expect_verdicts_identical(
        engine.verdicts(handles[s]),
        serial_replay(model, config.policy, workload[s]),
        "snapshot soak stream " + std::to_string(s));
  engine.shutdown();
}

TEST(ResilienceSoak, RetriesMaskInjectedFaults) {
  // The determinism contract of the fault plan: with throw_burst <=
  // max_retries, every rate-injected fault is absorbed by a retry, so
  // verdicts are identical to a fault-free run — under concurrent
  // feeders, small rings (ring-full burst pressure) and injected latency
  // spikes, across several seeds.
  StubModel model;
  const OnlineDetectorConfig policy{.flag_threshold = 0.9,
                                    .confirm_windows = 2};
  for (const std::uint64_t seed : {0xa1u, 0xa2u, 0xa3u}) {
    auto injector = std::make_shared<FaultInjector>(FaultPlan{
        .seed = seed,
        .score_throw_rate = 0.35,
        .throw_burst = 2,
        .slow_batch_rate = 0.1,
        .slow_batch_us = 200});

    ServeConfig config;
    config.window_size = 2;
    config.num_shards = 2;
    config.ring_capacity = 8;  // small ring: forced full-ring bursts
    config.record_verdicts = true;
    config.policy = policy;
    config.resilience.max_retries = 2;  // >= throw_burst: faults masked
    config.resilience.retry_backoff_us = 0;
    config.resilience.faults = injector;
    StreamEngine engine(model, config);

    constexpr std::size_t kFeeders = 3;
    constexpr std::size_t kStreamsPerFeeder = 3;
    constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;
    constexpr std::size_t kWindows = 250;
    std::vector<StreamEngine::StreamHandle> handles;
    std::vector<std::vector<std::vector<double>>> workload;
    for (std::size_t s = 0; s < kStreams; ++s) {
      handles.push_back(engine.register_stream(seed * 1000 + s));
      workload.push_back(
          make_stream_windows(seed * 10 + s, kWindows, 2));
    }
    std::vector<std::thread> feeders;
    for (std::size_t f = 0; f < kFeeders; ++f)
      feeders.emplace_back([&, f] {
        for (std::size_t w = 0; w < kWindows; ++w)
          for (std::size_t j = 0; j < kStreamsPerFeeder; ++j) {
            const std::size_t s = f * kStreamsPerFeeder + j;
            engine.ingest(handles[s], workload[s][w]);
          }
      });
    for (auto& t : feeders) t.join();
    engine.drain();  // no latched error: every fault was retried away

    EXPECT_GT(injector->throws_injected(), 0u)
        << "seed " << seed << ": the plan never fired";
    EXPECT_FALSE(engine.last_error().has_value());
    for (std::size_t k = 0; k < config.num_shards; ++k)
      EXPECT_FALSE(engine.shard_degraded(k));
    for (std::size_t s = 0; s < kStreams; ++s)
      expect_verdicts_identical(
          engine.verdicts(handles[s]),
          serial_replay(model, policy, workload[s]),
          "fault soak seed " + std::to_string(seed) + " stream " +
              std::to_string(s));
    engine.shutdown();
  }
}

}  // namespace
}  // namespace hmd::serve
