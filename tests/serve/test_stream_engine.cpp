#include "serve/stream_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_detector.hpp"
#include "ml/logistic.hpp"
#include "ml/quantized.hpp"
#include "ml/svm.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

using core::OnlineDetector;
using core::OnlineDetectorConfig;

/// Deterministic stub: P(malware) = first counter value.
class StubModel : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

/// Stub that stalls each batch — used to force ring overflow.
class SlowModel final : public StubModel {
 public:
  void distribution_batch(std::span<const double> flat,
                          std::size_t window_size,
                          std::span<double> out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StubModel::distribution_batch(flat, window_size, out);
  }
};

/// Stub whose batch scoring always throws.
class FailingModel final : public StubModel {
 public:
  void distribution_batch(std::span<const double>, std::size_t,
                          std::span<double>) const override {
    throw Error("FailingModel: scoring exploded");
  }
};

/// Deterministic per-stream window generator: values in [0, 1) with
/// occasional hot streaks so alarms actually fire.
std::vector<std::vector<double>> make_stream_windows(
    std::uint64_t stream_seed, std::size_t num_windows,
    std::size_t width) {
  Rng rng(stream_seed);
  std::vector<std::vector<double>> windows;
  windows.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    std::vector<double> window(width);
    const bool hot = rng.bernoulli(0.3);
    for (std::size_t f = 0; f < width; ++f)
      window[f] = hot ? rng.uniform(0.95, 1.0) : rng.uniform();
    windows.push_back(std::move(window));
  }
  return windows;
}

/// Serial ground truth: the stream replayed through observe().
std::vector<OnlineDetector::Verdict> serial_replay(
    const ml::Classifier& model, const OnlineDetectorConfig& policy,
    const std::vector<std::vector<double>>& windows) {
  OnlineDetector det(model, policy);
  std::vector<OnlineDetector::Verdict> verdicts;
  verdicts.reserve(windows.size());
  for (const auto& w : windows) verdicts.push_back(det.observe(w));
  return verdicts;
}

void expect_verdicts_identical(
    const std::vector<OnlineDetector::Verdict>& actual,
    const std::vector<OnlineDetector::Verdict>& expected,
    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t w = 0; w < expected.size(); ++w) {
    // Bit-identical probabilities, not approximately equal ones.
    EXPECT_EQ(actual[w].probability, expected[w].probability)
        << label << " window " << w;
    EXPECT_EQ(actual[w].flagged, expected[w].flagged)
        << label << " window " << w;
    EXPECT_EQ(actual[w].alarm, expected[w].alarm)
        << label << " window " << w;
  }
}

TEST(ServeConfig, ValidateRejectsBadFields) {
  EXPECT_NO_THROW(ServeConfig{}.validate());
  ServeConfig c;
  c.num_shards = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.window_size = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.window_size = kMaxWindowWidth + 1;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.ring_capacity = 1;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.max_batch_windows = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
  c = {};
  c.policy.confirm_windows = 0;
  EXPECT_THROW(c.validate(), PreconditionError);
}

TEST(StreamRouter, StableAndInRange) {
  StreamRouter router(4);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    const std::size_t shard = router.shard_of(id);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, router.shard_of(id));  // stable
  }
  // splitmix64 spreads sequential ids: all four shards get streams.
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t id = 0; id < 64; ++id) ++hits[router.shard_of(id)];
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GT(hits[k], 0u) << k;
}

TEST(StreamEngine, RejectsUntrainedOrNonBinaryModel) {
  ml::Logistic untrained;  // num_classes() == 0 before train
  EXPECT_THROW(StreamEngine(untrained, ServeConfig{}), PreconditionError);
}

TEST(StreamEngine, IngestRejectsWrongWindowWidth) {
  StubModel model;
  ServeConfig config;
  config.window_size = 4;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(1);
  EXPECT_THROW(engine.ingest(stream, std::vector<double>(3, 0.0)),
               PreconditionError);
  EXPECT_THROW(engine.ingest(nullptr, std::vector<double>(4, 0.0)),
               PreconditionError);
  EXPECT_TRUE(engine.ingest(stream, std::vector<double>(4, 0.0)));
  engine.drain();
}

TEST(StreamEngine, SingleStreamMatchesObserveReplay) {
  StubModel model;
  ServeConfig config;
  config.window_size = 2;
  config.num_shards = 2;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.9, .confirm_windows = 2};
  StreamEngine engine(model, config);

  const auto windows = make_stream_windows(7, 300, config.window_size);
  auto* stream = engine.register_stream(42);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();

  const auto expected = serial_replay(model, config.policy, windows);
  expect_verdicts_identical(engine.verdicts(stream), expected, "stream42");

  OnlineDetector ground_truth(model, config.policy);
  for (const auto& w : windows) ground_truth.observe(w);
  EXPECT_EQ(engine.monitor(stream).alarmed(), ground_truth.alarmed());
  EXPECT_EQ(engine.monitor(stream).alarm_window(),
            ground_truth.alarm_window());
  EXPECT_EQ(engine.monitor(stream).windows_seen(),
            ground_truth.windows_seen());
  EXPECT_EQ(engine.ingested(stream), windows.size());
  EXPECT_EQ(engine.dropped(stream), 0u);
}

TEST(StreamEngine, LogisticBatchedScoringIsBitIdenticalToSerial) {
  // A real trained model: the batched distribution_batch path (Logistic's
  // buffer-reusing override) must reproduce observe() bit-for-bit.
  constexpr std::size_t kWidth = 8;
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kWidth; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class",
                     std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "serve_blobs");
  Rng rng(99);
  for (std::size_t i = 0; i < 400; ++i) {
    ml::Instance row;
    const double cls = i % 2 == 0 ? 0.0 : 1.0;
    for (std::size_t f = 0; f < kWidth; ++f)
      row.values.push_back(rng.normal(cls * 2.0 + static_cast<double>(f) * 0.1, 1.0));
    row.values.push_back(cls);
    data.add(std::move(row));
  }
  ml::Logistic model(ml::Logistic::Params{.iterations = 40});
  model.train(data);

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 3;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.6, .confirm_windows = 3};
  StreamEngine engine(model, config);

  constexpr std::size_t kStreams = 9;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(s));
    // Feature-scaled windows so probabilities span both sides of the
    // threshold.
    auto windows = make_stream_windows(1000 + s, 120, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 6.0 - 1.0;
    workload.push_back(std::move(windows));
  }
  // Interleave streams round-robin, as a live feed would.
  for (std::size_t w = 0; w < 120; ++w)
    for (std::size_t s = 0; s < kStreams; ++s)
      engine.ingest(handles[s], workload[s][w]);
  engine.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(model, config.policy, workload[s]);
    expect_verdicts_identical(engine.verdicts(handles[s]), expected,
                              "logistic stream " + std::to_string(s));
  }
}

TEST(StreamEngine, VerdictsInvariantAcrossShardCounts) {
  StubModel model;
  const auto policy =
      OnlineDetectorConfig{.flag_threshold = 0.9, .confirm_windows = 2};
  constexpr std::size_t kStreams = 13;
  constexpr std::size_t kWindows = 150;

  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s)
    workload.push_back(make_stream_windows(500 + s, kWindows, 1));

  std::vector<std::vector<std::vector<OnlineDetector::Verdict>>> runs;
  for (std::size_t shards : {1u, 2u, 4u}) {
    ServeConfig config;
    config.window_size = 1;
    config.num_shards = shards;
    config.record_verdicts = true;
    config.policy = policy;
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(s * 31));
    for (std::size_t w = 0; w < kWindows; ++w)
      for (std::size_t s = 0; s < kStreams; ++s)
        engine.ingest(handles[s], workload[s][w]);
    engine.drain();
    std::vector<std::vector<OnlineDetector::Verdict>> per_stream;
    for (auto* h : handles) per_stream.push_back(engine.verdicts(h));
    runs.push_back(std::move(per_stream));
  }

  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(model, policy, workload[s]);
    for (std::size_t r = 0; r < runs.size(); ++r)
      expect_verdicts_identical(runs[r][s], expected,
                                "shards run " + std::to_string(r) +
                                    " stream " + std::to_string(s));
  }
}

TEST(StreamEngine, BlockPolicyDeliversEveryWindow) {
  SlowModel model;  // scoring much slower than ingest
  ServeConfig config;
  config.window_size = 1;
  config.ring_capacity = 4;
  config.record_verdicts = true;
  config.backpressure = ServeConfig::Backpressure::kBlock;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(5);
  const auto windows = make_stream_windows(11, 200, 1);
  for (const auto& w : windows) EXPECT_TRUE(engine.ingest(stream, w));
  engine.drain();
  EXPECT_EQ(engine.verdicts(stream).size(), windows.size());
  EXPECT_EQ(engine.dropped(stream), 0u);
  expect_verdicts_identical(engine.verdicts(stream),
                            serial_replay(model, config.policy, windows),
                            "block policy");
}

TEST(StreamEngine, DropOldestEvictsAndAccountsExactly) {
  SlowModel model;  // a 2 ms stall per batch guarantees overflow below
  ServeConfig config;
  config.window_size = 1;
  config.ring_capacity = 4;
  config.record_verdicts = true;
  config.backpressure = ServeConfig::Backpressure::kDropOldest;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(6);
  const auto windows = make_stream_windows(13, 256, 1);
  for (const auto& w : windows) engine.ingest(stream, w);
  engine.drain();

  const std::uint64_t drops = engine.dropped(stream);
  EXPECT_GT(drops, 0u);  // 256 fast pushes through a 4-slot ring must drop
  EXPECT_EQ(engine.ingested(stream), windows.size());
  EXPECT_EQ(engine.verdicts(stream).size() + drops, windows.size());
  // Scored windows are a subsequence of the feed: every scored
  // probability equals some window's first counter, in order.
  std::size_t cursor = 0;
  for (const auto& verdict : engine.verdicts(stream)) {
    while (cursor < windows.size() &&
           windows[cursor][0] != verdict.probability)
      ++cursor;
    ASSERT_LT(cursor, windows.size()) << "verdict not from the feed";
    ++cursor;
  }
}

TEST(StreamEngine, DrainSurfacesScoringErrors) {
  FailingModel model;
  ServeConfig failing_config;
  failing_config.window_size = 1;
  StreamEngine engine(model, failing_config);
  auto* stream = engine.register_stream(3);
  for (int i = 0; i < 10; ++i)
    engine.ingest(stream, std::vector<double>{0.5});
  EXPECT_THROW(engine.drain(), Error);
  // The failure stays latched: shutdown surfaces it again after joining
  // the workers. Only the destructor swallows it.
  EXPECT_THROW(engine.shutdown(), Error);
}

TEST(StreamEngine, RegistrationWhileRunningIsServed) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 2;
  config.record_verdicts = true;
  StreamEngine engine(model, config);
  auto* first = engine.register_stream(1);
  const auto windows_a = make_stream_windows(21, 50, 1);
  for (const auto& w : windows_a) engine.ingest(first, w);
  engine.drain();

  // Engine keeps serving: a stream registered after a drain cycle.
  auto* second = engine.register_stream(2);
  const auto windows_b = make_stream_windows(22, 50, 1);
  for (const auto& w : windows_b) engine.ingest(second, w);
  engine.drain();
  EXPECT_EQ(engine.num_streams(), 2u);
  expect_verdicts_identical(engine.verdicts(second),
                            serial_replay(model, config.policy, windows_b),
                            "late stream");
}

TEST(StreamEngine, MetricsAccountForEveryWindow) {
  metrics().reset();
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 2;
  StreamEngine engine(model, config);
  std::vector<StreamEngine::StreamHandle> handles;
  for (std::uint64_t s = 0; s < 6; ++s)
    handles.push_back(engine.register_stream(s));
  constexpr std::size_t kWindows = 40;
  for (std::size_t w = 0; w < kWindows; ++w)
    for (auto* h : handles) engine.ingest(h, std::vector<double>{0.1});
  engine.drain();

  const std::uint64_t total = 6 * kWindows;
  EXPECT_EQ(metrics().counter("serve.ingest_total").value(), total);
  std::uint64_t per_shard = 0;
  for (std::size_t k = 0; k < 2; ++k)
    per_shard += metrics()
                     .counter("serve.ingest_total.shard" + std::to_string(k))
                     .value();
  EXPECT_EQ(per_shard, total);
  EXPECT_EQ(metrics()
                .histogram("serve.e2e_latency_us",
                           default_latency_buckets_us())
                .count(),
            total);
  EXPECT_GT(metrics()
                .histogram("serve.batch_size", default_count_buckets())
                .count(),
            0u);
  engine.shutdown();
  metrics().reset();
}

TEST(StreamEngine, Int8TierMatchesQuantizedSerialReplay) {
  // --tier int8: the engine wraps the published primary in an int8
  // QuantizedModel with the default (standardizer-derived) calibration, so
  // a serial replay through an identically built wrapper must match the
  // engine's verdicts bit-for-bit.
  constexpr std::size_t kWidth = 8;
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kWidth; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "int8_tier");
  Rng rng(77);
  for (std::size_t i = 0; i < 300; ++i) {
    ml::Instance row;
    const double cls = i % 2 == 0 ? 0.0 : 1.0;
    for (std::size_t f = 0; f < kWidth; ++f)
      row.values.push_back(rng.normal(cls * 2.0, 1.0));
    row.values.push_back(cls);
    data.add(std::move(row));
  }
  ml::Logistic model(ml::Logistic::Params{.iterations = 30});
  model.train(data);

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 2;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kInt8;
  config.policy = {.flag_threshold = 0.6, .confirm_windows = 2};
  StreamEngine engine(model, config);

  constexpr std::size_t kStreams = 5;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(s));
    auto windows = make_stream_windows(500 + s, 80, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 4.0 - 1.0;
    workload.push_back(std::move(windows));
  }
  for (std::size_t w = 0; w < 80; ++w)
    for (std::size_t s = 0; s < kStreams; ++s)
      engine.ingest(handles[s], workload[s][w]);
  engine.drain();

  const ml::QuantizedModel int8(
      std::shared_ptr<const ml::Classifier>(std::shared_ptr<void>(), &model),
      ml::QuantizedModel::Mode::kInt8);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(int8, config.policy, workload[s]);
    expect_verdicts_identical(engine.verdicts(handles[s]), expected,
                              "int8 stream " + std::to_string(s));
  }
  engine.shutdown();
  metrics().reset();
}

TEST(StreamEngine, Q16TierMatchesQuantizedSerialReplay) {
  // --tier q16: the engine passes every window through the hardware
  // Q16.16 input grid (standardizer-derived calibration) before the
  // unmodified float model — a serial replay through an identically built
  // wrapper must match the engine's verdicts bit-for-bit.
  constexpr std::size_t kWidth = 8;
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kWidth; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "q16_tier");
  Rng rng(78);
  for (std::size_t i = 0; i < 300; ++i) {
    ml::Instance row;
    const double cls = i % 2 == 0 ? 0.0 : 1.0;
    for (std::size_t f = 0; f < kWidth; ++f)
      row.values.push_back(rng.normal(cls * 2.0, 1.0));
    row.values.push_back(cls);
    data.add(std::move(row));
  }
  ml::LinearSvm model;
  model.train(data);

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 2;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kQ16;
  config.policy = {.flag_threshold = 0.6, .confirm_windows = 2};
  StreamEngine engine(model, config);

  constexpr std::size_t kStreams = 5;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(s));
    auto windows = make_stream_windows(600 + s, 80, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 4.0 - 1.0;
    workload.push_back(std::move(windows));
  }
  for (std::size_t w = 0; w < 80; ++w)
    for (std::size_t s = 0; s < kStreams; ++s)
      engine.ingest(handles[s], workload[s][w]);
  engine.drain();

  const ml::QuantizedModel q16(
      std::shared_ptr<const ml::Classifier>(std::shared_ptr<void>(), &model),
      ml::QuantizedModel::Mode::kQ16Input);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(q16, config.policy, workload[s]);
    expect_verdicts_identical(engine.verdicts(handles[s]), expected,
                              "q16 stream " + std::to_string(s));
  }
  engine.shutdown();
  metrics().reset();
}

TEST(StreamEngine, SnapshotPinsTierAndRejectsMismatchedRestore) {
  // The serving tier is part of a checkpoint's identity: a snapshot names
  // the tier that scored the traffic, a matching restore resumes, and a
  // mismatched restore fails with a ServeConfig-named precondition.
  StubModel model;
  ServeConfig config;
  config.window_size = 4;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kInt8;
  StreamEngine engine(model, config);
  const auto handle = engine.register_stream(3);
  for (const auto& w : make_stream_windows(11, 20, 4))
    engine.ingest(handle, w);
  engine.drain();

  std::stringstream buffer;
  engine.checkpoint(buffer);
  engine.shutdown();
  const EngineSnapshot snap = EngineSnapshot::read_or_throw(buffer);
  ASSERT_TRUE(snap.tier.present);
  EXPECT_EQ(snap.tier.name, "int8");

  const auto shared = std::make_shared<const EngineSnapshot>(snap);
  {
    // Matching tier: restore is accepted.
    ServeConfig same = config;
    same.restore_from = shared;
    EXPECT_NO_THROW(StreamEngine(model, same).shutdown());
  }
  for (const ServeConfig::Tier other :
       {ServeConfig::Tier::kFloat, ServeConfig::Tier::kQ16,
        ServeConfig::Tier::kFpga}) {
    ServeConfig mismatched = config;
    mismatched.tier = other;
    mismatched.restore_from = shared;
    EXPECT_THROW(StreamEngine(model, mismatched), PreconditionError)
        << to_string(other);
  }
  // A float-tier checkpoint is pinned too — it refuses a quantized-tier
  // restore just the same.
  ServeConfig float_cfg;
  float_cfg.window_size = 4;
  StreamEngine float_engine(model, float_cfg);
  std::stringstream float_buf;
  float_engine.checkpoint(float_buf);
  float_engine.shutdown();
  const auto float_snap = std::make_shared<const EngineSnapshot>(
      EngineSnapshot::read_or_throw(float_buf));
  EXPECT_EQ(float_snap->tier.name, "float");
  ServeConfig int8_cfg = config;
  int8_cfg.restore_from = float_snap;
  EXPECT_THROW(StreamEngine(model, int8_cfg), PreconditionError);
  metrics().reset();
}

TEST(StreamEngine, Int8TierKeepsFloatPathForUnsupportedScheme) {
  // Schemes without an int8 lowering silently serve float under
  // --tier int8 — verdicts must equal the float serial replay exactly.
  StubModel model;
  ServeConfig config;
  config.window_size = 4;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kInt8;
  StreamEngine engine(model, config);
  const auto handle = engine.register_stream(0);
  const auto windows = make_stream_windows(321, 60, 4);
  for (const auto& w : windows) engine.ingest(handle, w);
  engine.drain();
  const auto expected = serial_replay(model, config.policy, windows);
  expect_verdicts_identical(engine.verdicts(handle), expected,
                            "unsupported-scheme int8 tier");
  engine.shutdown();
  metrics().reset();
}

// Randomized-interleaving soak: concurrent feeders, random per-stream
// window counts and random scheduling jitter across repeats and shard
// counts; every stream must still match its serial replay exactly. The
// TSan CI job runs this suite (ServeSoak) for race coverage of the
// multi-producer ingest path.
TEST(ServeSoak, RandomInterleavingsMatchSerialReplay) {
  StubModel model;
  const auto policy =
      OnlineDetectorConfig{.flag_threshold = 0.9, .confirm_windows = 2};
  constexpr std::size_t kFeeders = 4;
  constexpr std::size_t kStreamsPerFeeder = 6;
  constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;

  std::uint64_t master = 0xfeed5eed;
  for (std::size_t repeat = 0; repeat < 3; ++repeat) {
    const std::size_t shards = repeat + 1;  // 1, 2, 3
    ServeConfig config;
    config.window_size = 2;
    config.num_shards = shards;
    config.ring_capacity = 32;
    config.record_verdicts = true;
    config.policy = policy;
    StreamEngine engine(model, config);

    // Random-length workloads, deterministic in the repeat seed.
    std::vector<std::vector<std::vector<double>>> workload;
    std::vector<StreamEngine::StreamHandle> handles;
    Rng shape_rng(splitmix64(master));
    for (std::size_t s = 0; s < kStreams; ++s) {
      handles.push_back(engine.register_stream(1000 + s));
      const auto count =
          static_cast<std::size_t>(shape_rng.uniform_int(10, 120));
      workload.push_back(
          make_stream_windows(splitmix64(master), count, 2));
    }

    // Each feeder owns a disjoint slice of streams and walks them in a
    // random order, so shards see arbitrarily interleaved arrivals.
    std::vector<std::thread> feeders;
    for (std::size_t f = 0; f < kFeeders; ++f)
      feeders.emplace_back([&, f] {
        Rng feed_rng(0xf00d + f * 7919 + repeat);
        std::vector<std::size_t> cursor(kStreamsPerFeeder, 0);
        std::vector<std::size_t> open;
        for (std::size_t j = 0; j < kStreamsPerFeeder; ++j) open.push_back(j);
        while (!open.empty()) {
          const std::size_t pick = static_cast<std::size_t>(
              feed_rng.uniform_index(open.size()));
          const std::size_t local = open[pick];
          const std::size_t s = f * kStreamsPerFeeder + local;
          engine.ingest(handles[s], workload[s][cursor[local]]);
          if (++cursor[local] == workload[s].size())
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      });
    for (auto& t : feeders) t.join();
    engine.drain();

    for (std::size_t s = 0; s < kStreams; ++s) {
      const auto expected = serial_replay(model, policy, workload[s]);
      expect_verdicts_identical(
          engine.verdicts(handles[s]), expected,
          "repeat " + std::to_string(repeat) + " stream " +
              std::to_string(s));
      EXPECT_EQ(engine.monitor(handles[s]).alarm_window(),
                expected.empty()
                    ? OnlineDetector::kNoAlarm
                    : [&] {
                        OnlineDetector det(model, policy);
                        for (const auto& w : workload[s]) det.observe(w);
                        return det.alarm_window();
                      }());
    }
    engine.shutdown();
  }
}

// Quantized-tier soak: concurrent feeders through the int8 tier while the
// SAME trained model is re-published mid-traffic. The re-publish bumps the
// epoch version, forcing every shard worker to re-derive its cached
// quantized lowering under live ingest — the tier's only swap-adjacent
// state — while keeping scores identical, so every stream must still
// match the quantized serial replay exactly. The TSan CI job runs this
// suite (ServeSoak) for race coverage of the tier cache.
TEST(ServeSoak, QuantizedTierSurvivesConcurrentFeedersAndRepublish) {
  constexpr std::size_t kWidth = 8;
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kWidth; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "tier_soak");
  Rng rng(79);
  for (std::size_t i = 0; i < 300; ++i) {
    ml::Instance row;
    const double cls = i % 2 == 0 ? 0.0 : 1.0;
    for (std::size_t f = 0; f < kWidth; ++f)
      row.values.push_back(rng.normal(cls * 2.0, 1.0));
    row.values.push_back(cls);
    data.add(std::move(row));
  }
  const auto model = std::make_shared<ml::Logistic>(
      ml::Logistic::Params{.iterations = 30});
  model->train(data);

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 3;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kInt8;
  config.policy = {.flag_threshold = 0.6, .confirm_windows = 2};
  auto hub = std::make_shared<ModelHub>();
  hub->publish(model);
  StreamEngine engine(hub, config);

  constexpr std::size_t kFeeders = 3;
  constexpr std::size_t kStreamsPerFeeder = 4;
  constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;
  constexpr std::size_t kWindows = 120;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(2000 + s));
    auto windows = make_stream_windows(700 + s, kWindows, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 4.0 - 1.0;
    workload.push_back(std::move(windows));
  }

  std::vector<std::thread> feeders;
  for (std::size_t f = 0; f < kFeeders; ++f)
    feeders.emplace_back([&, f] {
      for (std::size_t w = 0; w < kWindows; ++w)
        for (std::size_t j = 0; j < kStreamsPerFeeder; ++j)
          engine.ingest(handles[f * kStreamsPerFeeder + j],
                        workload[f * kStreamsPerFeeder + j][w]);
    });
  // Re-publish the identical model under live traffic: new epoch
  // versions, identical scores, fresh quantized lowerings per shard.
  std::thread publisher([&] {
    for (int i = 0; i < 4; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      hub->publish(model);
    }
  });
  for (auto& t : feeders) t.join();
  publisher.join();
  engine.drain();

  const ml::QuantizedModel int8(model, ml::QuantizedModel::Mode::kInt8);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(int8, config.policy, workload[s]);
    expect_verdicts_identical(engine.verdicts(handles[s]), expected,
                              "tier soak stream " + std::to_string(s));
  }
  engine.shutdown();
  metrics().reset();
}

}  // namespace
}  // namespace hmd::serve
