// Tests for the concept-drift layer (serve/drift.hpp): Page–Hinkley and
// windowed-KS detector semantics, the property contracts the retrain loop
// rests on (silence on stationary streams, guaranteed trips after a real
// shift), snapshot round-trips through the EngineSnapshot text format,
// and the StreamEngine integration (trip emission, cooldown, retrain
// gating). Suite names matter: the TSan CI job selects drift coverage by
// the PageHinkley/KsWindow/DriftSoak prefixes.
#include "serve/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "serve/resilience.hpp"
#include "serve/stream_engine.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

/// Deterministic stub: P(malware) = first counter value.
class StubModel : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

/// A stationary benign-looking score stream (scores well under any flag
/// threshold, i.i.d. — the distribution a calibrated detector idles on).
std::vector<double> benign_scores(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> scores(n);
  for (double& s : scores) s = rng.uniform(0.05, 0.35);
  return scores;
}

/// Current value of a serve.drift.* counter (process-wide registry, so
/// tests compare before/after deltas).
std::uint64_t drift_counter(const std::string& name) {
  return metrics().counter("serve.drift." + name).value();
}

// ---------------------------------------------------------------------------
// PageHinkley
// ---------------------------------------------------------------------------

TEST(PageHinkley, StaysSilentOnStationaryStreamsAcrossSeeds) {
  // Property: an i.i.d. score stream must never trip the mean test — a
  // false trip would thrash the retrain loop on healthy traffic. 50 seeds
  // x 4000 scores.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    PageHinkley ph;
    for (const double s : benign_scores(seed, 4000))
      ASSERT_FALSE(ph.observe(s)) << "seed " << seed;
    EXPECT_EQ(ph.state().trips, 0u) << "seed " << seed;
  }
}

TEST(PageHinkley, TripsWithinBoundAfterUpwardMeanShift) {
  // Property: once the mean genuinely moves, the trip must land within a
  // bounded number of post-shift scores (λ / shift magnitude plus warm-up
  // slack), for every seed.
  constexpr std::size_t kShiftAt = 1000;
  constexpr std::size_t kBound = 500;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    PageHinkley ph;
    Rng rng(seed);
    for (std::size_t i = 0; i < kShiftAt; ++i)
      ASSERT_FALSE(ph.observe(rng.uniform(0.05, 0.35)));
    bool tripped = false;
    std::size_t at = 0;
    for (std::size_t i = 0; i < kBound && !tripped; ++i) {
      tripped = ph.observe(rng.uniform(0.55, 0.85));
      at = i;
    }
    EXPECT_TRUE(tripped) << "seed " << seed;
    EXPECT_LT(at, kBound) << "seed " << seed;
    EXPECT_EQ(ph.state().trips, 1u);
    // The trip statistic survives the internal re-baseline so the caller
    // can report it.
    EXPECT_GT(ph.deviation(), ph.config().lambda);
  }
}

TEST(PageHinkley, TripResetsBaselineButKeepsLifetimeTrips) {
  PageHinkley ph({.delta = 0.0, .lambda = 1.0, .min_samples = 4});
  for (int i = 0; i < 8; ++i) (void)ph.observe(0.1);
  bool tripped = false;
  for (int i = 0; i < 64 && !tripped; ++i) tripped = ph.observe(0.9);
  ASSERT_TRUE(tripped);
  EXPECT_EQ(ph.state().trips, 1u);
  EXPECT_EQ(ph.state().count, 0u);  // fresh baseline
  ph.reset();
  EXPECT_EQ(ph.state().trips, 1u);  // lifetime count survives reset()
  EXPECT_EQ(ph.deviation(), 0.0);   // explicit reset clears the statistic
}

TEST(PageHinkley, RestoreContinuesBitIdentically) {
  // Run one detector straight through; run a twin to the cut, snapshot,
  // restore into a fresh instance, finish — every observation and the
  // final state must match exactly.
  const auto scores = benign_scores(77, 600);
  const std::size_t cut = 389;
  PageHinkley reference;
  for (const double s : scores) (void)reference.observe(s);

  PageHinkley first;
  for (std::size_t i = 0; i < cut; ++i) (void)first.observe(scores[i]);
  PageHinkley resumed;
  resumed.restore(first.state());
  for (std::size_t i = cut; i < scores.size(); ++i)
    (void)resumed.observe(scores[i]);

  EXPECT_EQ(resumed.state().count, reference.state().count);
  EXPECT_EQ(resumed.state().mean, reference.state().mean);
  EXPECT_EQ(resumed.state().cumulative, reference.state().cumulative);
  EXPECT_EQ(resumed.state().minimum, reference.state().minimum);
  EXPECT_EQ(resumed.deviation(), reference.deviation());
}

TEST(PageHinkley, ConfigValidation) {
  EXPECT_THROW(PageHinkleyConfig{.delta = -0.1}.validate(),
               PreconditionError);
  EXPECT_THROW(PageHinkleyConfig{.lambda = 0.0}.validate(),
               PreconditionError);
  EXPECT_THROW(PageHinkleyConfig{.min_samples = 0}.validate(),
               PreconditionError);
  EXPECT_NO_THROW(PageHinkleyConfig{}.validate());
}

// ---------------------------------------------------------------------------
// KsWindowDetector
// ---------------------------------------------------------------------------

TEST(KsWindow, StatisticMatchesHandComputedValues) {
  // Identical samples: D = 0.
  EXPECT_DOUBLE_EQ(
      KsWindowDetector::ks_statistic({1, 2, 3, 4}, {1, 2, 3, 4}), 0.0);
  // Disjoint samples: D = 1.
  EXPECT_DOUBLE_EQ(KsWindowDetector::ks_statistic({1, 2, 3}, {10, 11, 12}),
                   1.0);
  // Half-overlapping: a = {1,2,3,4}, b = {3,4,5,6}. At x just below 3,
  // F_a = 1/2 and F_b = 0 → D = 1/2.
  EXPECT_DOUBLE_EQ(
      KsWindowDetector::ks_statistic({1, 2, 3, 4}, {3, 4, 5, 6}), 0.5);
  // Ties across samples must not inflate D: a = {1,2,2,3}, b = {2,2,2,2}.
  // Just below 2: F_a = 1/4, F_b = 0; from 2 on: F_a = 3/4, F_b = 1 —
  // the sup gap is 1/4 on both sides of the tie block.
  EXPECT_DOUBLE_EQ(KsWindowDetector::ks_statistic({1, 2, 2, 3}, {2, 2, 2, 2}),
                   0.25);
}

TEST(KsWindow, StaysSilentOnStationaryStreamsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    KsWindowDetector ks;
    for (const double s : benign_scores(seed + 500, 4000))
      ASSERT_FALSE(ks.observe(s)) << "seed " << seed;
    EXPECT_EQ(ks.state().trips, 0u) << "seed " << seed;
  }
}

TEST(KsWindow, TripsWithinBoundAfterDistributionChange) {
  // The sliding window fully turns over `window` scores after the shift;
  // the next evaluation (≤ stride later) must see D near 1 and trip.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    KsWindowDetector ks;
    const KsConfig& cfg = ks.config();
    Rng rng(seed);
    for (std::size_t i = 0; i < 1000; ++i)
      ASSERT_FALSE(ks.observe(rng.uniform(0.05, 0.35)));
    const std::size_t bound = cfg.window + cfg.stride;
    bool tripped = false;
    for (std::size_t i = 0; i < bound && !tripped; ++i)
      tripped = ks.observe(rng.uniform(0.55, 0.85));
    EXPECT_TRUE(tripped) << "seed " << seed;
    EXPECT_EQ(ks.state().trips, 1u) << "seed " << seed;
  }
}

TEST(KsWindow, DetectsShapeChangeTheMeanTestMisses) {
  // Same mean, different shape: benign mass split into two far modes.
  // Page–Hinkley stays silent (the mean never moves); KS must trip.
  Rng rng(3);
  PageHinkley ph;
  KsWindowDetector ks;
  bool ks_tripped = false;
  for (std::size_t i = 0; i < 1000; ++i) {
    const double s = rng.uniform(0.18, 0.22);  // tight around 0.2
    ASSERT_FALSE(ph.observe(s));
    ASSERT_FALSE(ks.observe(s));
  }
  for (std::size_t i = 0; i < 400; ++i) {
    // Bimodal with the same 0.2 mean.
    const double s = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.02)
                                        : rng.uniform(0.38, 0.4);
    ASSERT_FALSE(ph.observe(s)) << "mean test should not fire";
    ks_tripped = ks.observe(s) || ks_tripped;
  }
  EXPECT_TRUE(ks_tripped);
}

TEST(KsWindow, EvaluatesOnTheStrideSchedule) {
  // window 8, stride 4: first evaluation at score 16 (reference + first
  // full window), then every 4th. Feed a shifted stream so every
  // evaluation trips, and check trips land exactly on the schedule.
  KsWindowDetector ks({.window = 8, .threshold = 0.4, .stride = 4});
  std::vector<std::size_t> trip_points;
  for (std::size_t i = 1; i <= 16; ++i)
    if (ks.observe(0.1)) trip_points.push_back(i);
  // Reference and window identical: no trip despite the schedule.
  EXPECT_TRUE(trip_points.empty());
  // Now a fresh detector with a shifted tail.
  KsWindowDetector shifted({.window = 8, .threshold = 0.4, .stride = 4});
  for (std::size_t i = 1; i <= 8; ++i) ASSERT_FALSE(shifted.observe(0.1));
  std::size_t fed = 8;
  bool tripped = false;
  while (!tripped) {
    ++fed;
    tripped = shifted.observe(0.9);
    ASSERT_LE(fed, 16u);  // must trip at the first evaluation point
  }
  EXPECT_EQ(fed, 16u);
  EXPECT_DOUBLE_EQ(shifted.last_statistic(), 1.0);
}

TEST(KsWindow, RestoreContinuesBitIdenticallyMidRing) {
  // Cut inside the ring phase (reference full, sliding window wrapping):
  // the restored chronological `current` must reproduce the same
  // evaluations at the same points.
  Rng rng(91);
  std::vector<double> scores(700);
  for (double& s : scores) s = rng.uniform(0.0, 1.0);
  const KsConfig cfg{.window = 32, .threshold = 1.0, .stride = 8};

  KsWindowDetector reference(cfg);
  std::vector<double> ref_stats;
  for (const double s : scores) {
    (void)reference.observe(s);
    ref_stats.push_back(reference.last_statistic());
  }

  const std::size_t cut = 357;  // mid-ring, not stride-aligned
  KsWindowDetector first(cfg);  // threshold 1.0: D can never exceed it
  for (std::size_t i = 0; i < cut; ++i) (void)first.observe(scores[i]);
  KsWindowDetector resumed(cfg);
  resumed.restore(first.state());
  for (std::size_t i = cut; i < scores.size(); ++i) {
    (void)resumed.observe(scores[i]);
    EXPECT_EQ(resumed.last_statistic(), ref_stats[i]) << "score " << i;
  }
  EXPECT_EQ(resumed.state().observed, reference.state().observed);
}

TEST(KsWindow, RestoreRejectsOversizedSamples) {
  KsWindowDetector ks({.window = 8, .threshold = 0.4, .stride = 2});
  KsWindowDetector::State state;
  state.reference = std::vector<double>(9, 0.1);  // > window
  EXPECT_THROW(ks.restore(state), PreconditionError);
  state.reference = {0.1, 0.2};
  state.current = std::vector<double>(9, 0.1);
  EXPECT_THROW(ks.restore(state), PreconditionError);
}

TEST(KsWindow, ConfigValidation) {
  EXPECT_THROW(KsConfig{.window = 1}.validate(), PreconditionError);
  EXPECT_THROW(KsConfig{.threshold = 0.0}.validate(), PreconditionError);
  EXPECT_THROW(KsConfig{.stride = 0}.validate(), PreconditionError);
  EXPECT_NO_THROW(KsConfig{}.validate());
}

// ---------------------------------------------------------------------------
// ShardDriftDetector: cooldown / hysteresis
// ---------------------------------------------------------------------------

/// Aggressive config so unit tests trip in a handful of scores.
DriftConfig fast_drift_config() {
  DriftConfig config;
  config.enabled = true;
  config.page_hinkley = {.delta = 0.0, .lambda = 1.0, .min_samples = 4};
  config.ks = {.window = 8, .threshold = 0.4, .stride = 4};
  config.cooldown_scores = 64;
  return config;
}

TEST(ShardDrift, EmitsEventThenSuppressesDuringCooldown) {
  ShardDriftDetector det(fast_drift_config(), 3);
  std::optional<DriftEvent> event;
  std::uint64_t fed = 0;
  for (int i = 0; i < 8 && !event; ++i) {
    event = det.observe(0.1, 5);
    ++fed;
  }
  for (int i = 0; i < 64 && !event; ++i) {
    event = det.observe(0.9, 5);
    ++fed;
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->shard, 3u);
  EXPECT_EQ(event->model_version, 5u);
  EXPECT_EQ(event->score_index, fed);
  EXPECT_GT(event->statistic, 0.0);

  // Keep hammering a shifting stream inside the cooldown: trips are
  // counted as suppressed, never emitted.
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const double s = rng.bernoulli(0.5) ? 0.05 : 0.95;
    EXPECT_FALSE(det.observe(s, 5).has_value()) << "score " << i;
  }
  EXPECT_GT(det.suppressed(), 0u);
}

TEST(ShardDrift, CooldownExpiresAndEventsResume) {
  DriftConfig config = fast_drift_config();
  config.cooldown_scores = 16;
  ShardDriftDetector det(config, 0);
  auto drive_to_trip = [&det]() {
    for (int i = 0; i < 8; ++i)
      if (det.observe(0.1, 1)) return true;
    for (int i = 0; i < 128; ++i)
      if (det.observe(0.9, 1)) return true;
    return false;
  };
  ASSERT_TRUE(drive_to_trip());
  // Walk off the cooldown with a calm stream, then shift again.
  for (int i = 0; i < 16; ++i) (void)det.observe(0.1, 1);
  ASSERT_TRUE(drive_to_trip());
}

TEST(ShardDrift, ModelSwapResetsBaselinesAndCooldown) {
  ShardDriftDetector det(fast_drift_config(), 0);
  for (int i = 0; i < 8; ++i) (void)det.observe(0.1, 1);
  bool tripped = false;
  for (int i = 0; i < 64 && !tripped; ++i)
    tripped = det.observe(0.9, 1).has_value();
  ASSERT_TRUE(tripped);

  det.on_model_swap();
  // The new model's scores ARE the new baseline: a stream that would have
  // re-tripped against the stale reference is now normal.
  for (int i = 0; i < 200; ++i)
    EXPECT_FALSE(det.observe(0.9, 2).has_value()) << "score " << i;
}

TEST(ShardDrift, StateRoundTripContinuesIdentically) {
  const DriftConfig config = fast_drift_config();
  Rng rng(13);
  std::vector<double> scores(300);
  for (double& s : scores) s = rng.uniform(0.0, 1.0);

  ShardDriftDetector reference(config, 1);
  for (const double s : scores) (void)reference.observe(s, 1);

  const std::size_t cut = 143;
  ShardDriftDetector first(config, 1);
  for (std::size_t i = 0; i < cut; ++i) (void)first.observe(scores[i], 1);
  ShardDriftDetector resumed(config, 1);
  resumed.restore(first.state());
  for (std::size_t i = cut; i < scores.size(); ++i)
    (void)resumed.observe(scores[i], 1);

  EXPECT_EQ(resumed.scores(), reference.scores());
  EXPECT_EQ(resumed.suppressed(), reference.suppressed());
  EXPECT_EQ(resumed.page_hinkley().state().trips,
            reference.page_hinkley().state().trips);
  EXPECT_EQ(resumed.page_hinkley().state().mean,
            reference.page_hinkley().state().mean);
  EXPECT_EQ(resumed.ks().state().trips, reference.ks().state().trips);
  EXPECT_EQ(resumed.ks().last_statistic(), reference.ks().last_statistic());
}

// ---------------------------------------------------------------------------
// DriftConfig validation
// ---------------------------------------------------------------------------

TEST(DriftConfigValidate, RejectsBadPolicies) {
  DriftConfig config;
  config.retrain = true;
  config.retrain_scheme = "MLR";  // supervised: cannot learn from benign log
  EXPECT_THROW(config.validate(), PreconditionError);
  config = {};
  config.retrain = true;
  config.retrain_scheme = "NotAScheme";
  EXPECT_THROW(config.validate(), PreconditionError);
  config = {};
  config.retrain = true;
  config.window_log_capacity = 0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = {};
  config.retrain = true;
  config.retrain_min_rows = 4;  // under the one-class fit minimum
  EXPECT_THROW(config.validate(), PreconditionError);
  config = {};
  config.retrain = true;
  config.retrain_max_rows = 16;  // < retrain_min_rows
  EXPECT_THROW(config.validate(), PreconditionError);
  config = {};
  // Without retrain the log policy is inert and deliberately unchecked.
  config.window_log_capacity = 0;
  EXPECT_NO_THROW(config.validate());
  config = {};
  EXPECT_NO_THROW(config.validate());
  config.retrain = true;
  EXPECT_NO_THROW(config.validate());  // MahalanobisThreshold default
}

// ---------------------------------------------------------------------------
// EngineSnapshot drift section
// ---------------------------------------------------------------------------

TEST(EngineSnapshotDrift, SectionRoundTripsExactly) {
  // Drift state with awkward doubles (negative, subnormal-ish, exact
  // binary fractions) must survive the hexfloat text format bit-for-bit.
  EngineSnapshot snap;
  snap.model_version = 2;
  StreamSnapshot stream;
  stream.id = 4;
  stream.accepted = 10;
  stream.detector = {.windows = 10, .flagged = 2, .streak = 1};
  snap.streams = {stream};

  DriftShardSnapshot shard0;
  shard0.shard = 0;
  shard0.state.page_hinkley = {.count = 42,
                               .mean = 0.1,
                               .cumulative = -3.25,
                               .minimum = -7.75,
                               .last_deviation = 4.5,
                               .trips = 2};
  shard0.state.ks.reference = {0.25, 0.5, 1e-300};
  shard0.state.ks.current = {0.125, 0.0625};
  shard0.state.ks.observed = 99;
  shard0.state.ks.last_statistic = 0.375;
  shard0.state.ks.trips = 1;
  shard0.state.scores = 1234;
  shard0.state.cooldown_left = 17;
  shard0.state.suppressed = 3;
  DriftShardSnapshot shard1;
  shard1.shard = 1;  // fresh shard: everything zero/empty
  snap.drift = {shard0, shard1};

  std::ostringstream out;
  snap.write(out);
  std::istringstream in(out.str());
  const Result<EngineSnapshot> loaded = EngineSnapshot::read(in);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  ASSERT_EQ(loaded.value().drift.size(), 2u);
  const ShardDriftDetector::State& got = loaded.value().drift[0].state;
  EXPECT_EQ(loaded.value().drift[0].shard, 0u);
  EXPECT_EQ(got.page_hinkley.count, 42u);
  EXPECT_EQ(got.page_hinkley.mean, 0.1);
  EXPECT_EQ(got.page_hinkley.cumulative, -3.25);
  EXPECT_EQ(got.page_hinkley.minimum, -7.75);
  EXPECT_EQ(got.page_hinkley.last_deviation, 4.5);
  EXPECT_EQ(got.page_hinkley.trips, 2u);
  EXPECT_EQ(got.ks.reference, shard0.state.ks.reference);
  EXPECT_EQ(got.ks.current, shard0.state.ks.current);
  EXPECT_EQ(got.ks.observed, 99u);
  EXPECT_EQ(got.ks.last_statistic, 0.375);
  EXPECT_EQ(got.ks.trips, 1u);
  EXPECT_EQ(got.scores, 1234u);
  EXPECT_EQ(got.cooldown_left, 17u);
  EXPECT_EQ(got.suppressed, 3u);
  EXPECT_EQ(loaded.value().drift[1].shard, 1u);
  EXPECT_TRUE(loaded.value().drift[1].state.ks.reference.empty());
}

TEST(EngineSnapshotDrift, SnapshotsWithoutDriftSectionStillParse) {
  // Pre-drift checkpoints have no trailing section; they must load with
  // an empty drift vector (back-compat with existing snapshot files).
  EngineSnapshot snap;
  snap.model_version = 1;
  StreamSnapshot stream;
  stream.id = 1;
  stream.accepted = 5;
  stream.detector = {.windows = 5, .flagged = 1};
  snap.streams = {stream};
  std::ostringstream out;
  snap.write(out);  // snap.drift empty: no drift section written
  EXPECT_EQ(out.str().find("drift_shards"), std::string::npos);

  std::istringstream in(out.str());
  const Result<EngineSnapshot> loaded = EngineSnapshot::read(in);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_TRUE(loaded.value().drift.empty());
}

TEST(EngineSnapshotDrift, ReadRejectsMalformedDriftSections) {
  auto expect_parse_error = [](const std::string& drift_text,
                               const std::string& label) {
    const std::string text =
        "hmd-snapshot v1\nmodel_version 1\nstreams 0\n" + drift_text;
    std::istringstream in(text);
    const Result<EngineSnapshot> r = EngineSnapshot::read(in);
    ASSERT_FALSE(r.ok()) << label;
    EXPECT_EQ(r.error().code(), ErrCode::kParse) << label;
  };
  expect_parse_error("drift_shards 1\n", "truncated shard block");
  expect_parse_error(
      "drift_shards 1\n"
      "drift_shard 0 scores 1 cooldown_left 0 suppressed 0\n"
      "ph count 1 mean nope cumulative 0x0p+0 minimum 0x0p+0 "
      "last_deviation 0x0p+0 trips 0\n"
      "ks observed 0 last_statistic 0x0p+0 trips 0\n"
      "ks_reference 0\nks_current 0\n",
      "non-numeric double");
  expect_parse_error(
      "drift_shards 1\n"
      "drift_shard 0 scores 1 cooldown_left 0 suppressed 0\n"
      "ph count 1 mean 0x0p+0 cumulative 0x0p+0 minimum 0x0p+0 "
      "last_deviation 0x0p+0 trips 0\n"
      "ks observed 0 last_statistic 0x0p+0 trips 0\n"
      "ks_reference 2 0x1p-1\nks_current 0\n",
      "reference count mismatch");
}

// ---------------------------------------------------------------------------
// StreamEngine integration
// ---------------------------------------------------------------------------

/// Engine config that trips quickly on a one-feature stream.
ServeConfig drift_engine_config() {
  ServeConfig config;
  config.window_size = 1;
  config.num_shards = 1;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.97, .confirm_windows = 4};
  config.drift = fast_drift_config();
  config.drift.cooldown_scores = 32;
  return config;
}

TEST(StreamEngine, DriftTripEmitsEventsAndMetrics) {
  const std::uint64_t trips_before = drift_counter("trips");
  const std::uint64_t scores_before = drift_counter("scores");
  StubModel model;
  StreamEngine engine(model, drift_engine_config());
  auto* stream = engine.register_stream(1);
  for (int i = 0; i < 50; ++i)
    engine.ingest(stream, std::vector<double>{0.1});
  engine.drain();
  EXPECT_TRUE(engine.drift_events().empty());  // stationary: no trips
  for (int i = 0; i < 100; ++i)
    engine.ingest(stream, std::vector<double>{0.9});
  engine.drain();

  const auto events = engine.drift_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().shard, 0u);
  EXPECT_EQ(events.front().model_version, 1u);
  EXPECT_GT(events.front().statistic, 0.0);
  EXPECT_GT(events.front().score_index, 50u);  // after the benign phase
  EXPECT_GT(drift_counter("trips"), trips_before);
  EXPECT_EQ(drift_counter("scores"), scores_before + 150);
  // No retrain was armed: the pump has nothing to do.
  const auto pump = engine.drift_pump();
  EXPECT_FALSE(pump.retrain_started);
  EXPECT_EQ(pump.published_version, 0u);
  EXPECT_EQ(engine.hub().version(), 1u);
  engine.shutdown();
}

TEST(StreamEngine, DriftDisabledCarriesNoStateAndEmitsNothing) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(1);
  for (int i = 0; i < 200; ++i)
    engine.ingest(stream, std::vector<double>{i < 100 ? 0.1 : 0.9});
  engine.drain();
  EXPECT_TRUE(engine.drift_events().empty());
  EXPECT_TRUE(engine.snapshot().drift.empty());
  EXPECT_EQ(engine.await_retrain(), 0u);
  engine.shutdown();
}

TEST(StreamEngine, TripWithRetrainRebuildsAndPublishesOneClassEpoch) {
  const std::uint64_t completed_before = drift_counter("retrains_completed");
  const std::uint64_t published_before = drift_counter("swaps_published");
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config = drift_engine_config();
  config.window_size = 4;
  config.drift.retrain = true;
  config.drift.retrain_scheme = "MahalanobisThreshold";
  config.drift.retrain_min_rows = 32;
  StreamEngine engine(hub, config);
  auto* stream = engine.register_stream(7);

  // Benign phase (P = f[0] ≈ 0.1, unflagged → logged), then a shifted
  // phase (P ≈ 0.8, still unflagged → logged, but the mean shift trips).
  Rng rng(55);
  auto feed = [&](double lo, double hi, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> w(4);
      w[0] = rng.uniform(lo, hi);
      for (std::size_t f = 1; f < 4; ++f) w[f] = rng.normal(0.0, 1.0);
      engine.ingest(stream, w);
    }
  };
  feed(0.05, 0.2, 80);
  engine.drain();
  feed(0.7, 0.9, 80);
  engine.drain();
  ASSERT_FALSE(engine.drift_events().empty());

  const std::uint64_t version = engine.await_retrain();
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(engine.hub().version(), 2u);
  EXPECT_FALSE(engine.last_retrain_error().has_value());
  EXPECT_EQ(engine.hub().current()->primary->name(), "MahalanobisThreshold");
  EXPECT_EQ(drift_counter("retrains_completed"), completed_before + 1);
  EXPECT_EQ(drift_counter("swaps_published"), published_before + 1);

  // Traffic scored by the new epoch is stamped with it, and the shard's
  // drift baseline now watches the new epoch: any further trips must be
  // attributed to version 2, never to the retired model.
  feed(0.7, 0.9, 40);
  engine.drain();
  EXPECT_EQ(engine.verdict_versions(stream).back(), 2u);
  for (const DriftEvent& event : engine.drift_events()) {
    // 160 scores were fed before the swap; anything after is epoch 2.
    EXPECT_EQ(event.model_version, event.score_index <= 160 ? 1u : 2u)
        << "score " << event.score_index;
  }
  engine.shutdown();
}

TEST(StreamEngine, RetrainSkippedWhenWindowLogTooSmall) {
  const std::uint64_t skipped_before = drift_counter("retrains_skipped");
  StubModel model;
  ServeConfig config = drift_engine_config();
  config.drift.retrain = true;
  // Every logged row fits, but the minimum is out of reach: capacity 64
  // with one stream can never satisfy 4096 rows.
  config.drift.window_log_capacity = 64;
  config.drift.retrain_min_rows = 4096;
  config.drift.retrain_max_rows = 4096;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(2);
  for (int i = 0; i < 40; ++i)
    engine.ingest(stream, std::vector<double>{0.1});
  engine.drain();
  for (int i = 0; i < 80; ++i)
    engine.ingest(stream, std::vector<double>{0.9});
  engine.drain();
  ASSERT_FALSE(engine.drift_events().empty());

  EXPECT_EQ(engine.await_retrain(), 0u);
  EXPECT_EQ(drift_counter("retrains_skipped"), skipped_before + 1);
  EXPECT_EQ(engine.hub().version(), 1u);  // nothing was published
  engine.shutdown();
}

TEST(StreamEngine, CleanRetrainNeverTouchesTheFailurePath) {
  // A successful retrain must leave retrains_failed and
  // last_retrain_error() untouched (the worker catches and stages
  // failures instead of throwing — a clean run proves the happy path
  // never trips that machinery).
  const std::uint64_t failed_before = drift_counter("retrains_failed");
  StubModel model;
  ServeConfig config = drift_engine_config();
  config.drift.retrain = true;
  StreamEngine engine(model, config);
  auto* stream = engine.register_stream(3);
  for (int i = 0; i < 60; ++i)
    engine.ingest(stream, std::vector<double>{0.1});
  engine.drain();
  for (int i = 0; i < 80; ++i)
    engine.ingest(stream, std::vector<double>{0.9});
  engine.drain();
  (void)engine.await_retrain();
  EXPECT_EQ(drift_counter("retrains_failed"), failed_before);
  EXPECT_FALSE(engine.last_retrain_error().has_value());
  engine.shutdown();
}

TEST(StreamEngine, DriftStateSurvivesCheckpointRestore) {
  // Feed a benign phase, checkpoint, restore into a fresh engine, then
  // shift: the restored engine must trip using the checkpointed baseline
  // (a cold engine would need its own warm-up first).
  StubModel model;
  ServeConfig config = drift_engine_config();
  config.drift.page_hinkley = {.delta = 0.0, .lambda = 2.0,
                               .min_samples = 40};
  std::string checkpoint_text;
  {
    StreamEngine first(model, config);
    auto* stream = first.register_stream(11);
    for (int i = 0; i < 60; ++i)
      first.ingest(stream, std::vector<double>{0.1});
    first.drain();
    const EngineSnapshot snap = first.snapshot();
    ASSERT_EQ(snap.drift.size(), 1u);
    EXPECT_EQ(snap.drift[0].state.scores, 60u);
    std::ostringstream out;
    first.checkpoint(out);
    checkpoint_text = out.str();
    first.shutdown();
  }

  std::istringstream in(checkpoint_text);
  Result<EngineSnapshot> snap = EngineSnapshot::read(in);
  ASSERT_TRUE(snap.ok()) << snap.error().to_string();
  ServeConfig resumed_config = config;
  resumed_config.restore_from =
      std::make_shared<const EngineSnapshot>(std::move(snap).value());
  StreamEngine resumed(model, resumed_config);
  auto* stream = resumed.register_stream(11);
  // Only 30 shifted windows: under min_samples from cold, but the
  // restored baseline already has 60 — the trip must fire.
  for (int i = 0; i < 30; ++i)
    resumed.ingest(stream, std::vector<double>{0.9});
  resumed.drain();
  EXPECT_FALSE(resumed.drift_events().empty());
  resumed.shutdown();
}

TEST(ServeConfigDrift, ValidateIsEnforcedByTheEngine) {
  StubModel model;
  ServeConfig config;
  config.window_size = 1;
  config.drift.enabled = true;
  config.drift.retrain = true;
  config.drift.retrain_scheme = "J48";  // supervised
  EXPECT_THROW(StreamEngine(model, config), PreconditionError);
}

}  // namespace
}  // namespace hmd::serve
