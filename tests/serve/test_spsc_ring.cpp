#include "serve/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hmd::serve {
namespace {

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), PreconditionError);
}

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
}

TEST(SpscRing, FifoOrderWithWraparound) {
  // 10 laps push 20 items through 16 slots, so the cursors wrap; the net
  // +1 growth per lap peaks at 11 queued, comfortably under capacity.
  SpscRing<int> ring(16);
  int out = 0;
  int next_push = 0, next_pop = 0;
  for (int lap = 0; lap < 10; ++lap) {
    ASSERT_TRUE(ring.try_push(next_push++));
    ASSERT_TRUE(ring.try_push(next_push++));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_EQ(ring.size_approx(), 2u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(3));  // space again after a pop
}

TEST(SpscRing, EmptyRingRejectsPop) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_approx());
  ring.try_push(7);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, PopDiscardDropsOldest) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(10));
  ASSERT_TRUE(ring.try_push(11));
  ASSERT_FALSE(ring.try_push(12));
  ASSERT_TRUE(ring.pop_discard());  // evicts 10
  ASSERT_TRUE(ring.try_push(12));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 11);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 12);
  EXPECT_FALSE(ring.pop_discard());  // empty
}

// SPSC stress: one producer, one consumer, order and completeness under
// contention (the TSan CI job runs this suite).
TEST(SpscRing, SpscStressPreservesOrder) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

// The slot-sequenced implementation tolerates multiple producers (that is
// what makes producer-side drop-oldest safe). Verify per-producer
// subsequence order and exact totals under 4-way push contention.
TEST(SpscRing, MultiProducerContentionKeepsPerProducerOrder) {
  constexpr std::uint64_t kPerProducer = 20000;
  constexpr std::uint64_t kProducers = 4;
  SpscRing<std::uint64_t> ring(32);
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged = (p << 32) | i;
        while (!ring.try_push(tagged)) std::this_thread::yield();
      }
    });

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kPerProducer * kProducers) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = v >> 32;
    const std::uint64_t i = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (std::uint64_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next[p], kPerProducer);
}

// Producer-side discard racing the consumer (the drop-oldest path): no
// element is delivered twice and accounting is exact.
TEST(SpscRing, ConcurrentDiscardAndPopNeverDuplicates) {
  constexpr std::uint64_t kItems = 50000;
  SpscRing<std::uint64_t> ring(8);
  std::atomic<std::uint64_t> discarded{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::atomic<std::uint8_t>> seen(kItems);
  for (auto& s : seen) s.store(0);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) {
        std::uint64_t sink = 0;
        if (ring.try_pop(sink)) {
          discarded.fetch_add(1);
          ASSERT_EQ(seen[sink].fetch_add(1), 0u);
        }
      }
    }
  });
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (popped.load() + discarded.load() < kItems) {
      if (ring.try_pop(v)) {
        popped.fetch_add(1);
        ASSERT_EQ(seen[v].fetch_add(1), 0u);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  // Drain whatever the consumer's exit condition left behind.
  std::uint64_t v = 0;
  while (ring.try_pop(v)) {
    popped.fetch_add(1);
    ASSERT_EQ(seen[v].fetch_add(1), 0u);
  }
  EXPECT_EQ(popped.load() + discarded.load(), kItems);
}

}  // namespace
}  // namespace hmd::serve
