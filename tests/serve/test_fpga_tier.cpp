// ServeConfig::Tier::kFpga: windows scored by the compiled netlist through
// the cycle-accurate simulator (hw::NetlistClassifier). The FpgaSoak suite
// rides in the TSan CI job — per-shard lazy compiles after a hot-swap are
// the concurrency-sensitive path.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/online_detector.hpp"
#include "hw/compile.hpp"
#include "hw/netlist_model.hpp"
#include "ml/svm.hpp"
#include "serve/stream_engine.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

using core::OnlineDetector;
using core::OnlineDetectorConfig;

/// Deterministic stub with no netlist lowering (float-fallback tests).
class StubModel final : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

std::vector<std::vector<double>> make_stream_windows(
    std::uint64_t stream_seed, std::size_t num_windows, std::size_t width) {
  Rng rng(stream_seed);
  std::vector<std::vector<double>> windows;
  windows.reserve(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    std::vector<double> window(width);
    const bool hot = rng.bernoulli(0.3);
    for (std::size_t f = 0; f < width; ++f)
      window[f] = hot ? rng.uniform(0.95, 1.0) : rng.uniform();
    windows.push_back(std::move(window));
  }
  return windows;
}

std::vector<OnlineDetector::Verdict> serial_replay(
    const ml::Classifier& model, const OnlineDetectorConfig& policy,
    const std::vector<std::vector<double>>& windows) {
  OnlineDetector det(model, policy);
  std::vector<OnlineDetector::Verdict> verdicts;
  verdicts.reserve(windows.size());
  for (const auto& w : windows) verdicts.push_back(det.observe(w));
  return verdicts;
}

void expect_verdicts_identical(
    const std::vector<OnlineDetector::Verdict>& actual,
    const std::vector<OnlineDetector::Verdict>& expected,
    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(actual[w].probability, expected[w].probability)
        << label << " window " << w;
    EXPECT_EQ(actual[w].flagged, expected[w].flagged)
        << label << " window " << w;
    EXPECT_EQ(actual[w].alarm, expected[w].alarm)
        << label << " window " << w;
  }
}

/// A trained SVM over kWidth features — a compile-supported scheme the
/// fpga tier actually lowers.
constexpr std::size_t kWidth = 6;

ml::LinearSvm trained_svm() {
  std::vector<ml::Attribute> attrs;
  for (std::size_t f = 0; f < kWidth; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  ml::Dataset data(std::move(attrs), "fpga_tier");
  Rng rng(79);
  for (std::size_t i = 0; i < 300; ++i) {
    ml::Instance row;
    const double cls = i % 2 == 0 ? 0.0 : 1.0;
    for (std::size_t f = 0; f < kWidth; ++f)
      row.values.push_back(rng.normal(cls * 2.0, 1.0));
    row.values.push_back(cls);
    data.add(std::move(row));
  }
  ml::LinearSvm model;
  model.train(data);
  return model;
}

TEST(FpgaTier, MatchesNetlistSerialReplay) {
  // --tier fpga: every shard scores with the compiled netlist, so a serial
  // replay through an identically compiled hw::NetlistClassifier must
  // match the engine's verdicts bit-for-bit.
  const ml::LinearSvm model = trained_svm();

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 2;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kFpga;
  config.policy = {.flag_threshold = 0.6, .confirm_windows = 2};
  StreamEngine engine(model, config);

  constexpr std::size_t kStreams = 5;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(s));
    auto windows = make_stream_windows(700 + s, 80, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 4.0 - 1.0;
    workload.push_back(std::move(windows));
  }
  for (std::size_t w = 0; w < 80; ++w)
    for (std::size_t s = 0; s < kStreams; ++s)
      engine.ingest(handles[s], workload[s][w]);
  engine.drain();

  hw::CompileOptions opts;
  opts.num_features = kWidth;
  const hw::NetlistClassifier fpga(model, std::move(opts));
  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto expected = serial_replay(fpga, config.policy, workload[s]);
    expect_verdicts_identical(engine.verdicts(handles[s]), expected,
                              "fpga stream " + std::to_string(s));
  }
  engine.shutdown();
  metrics().reset();
}

TEST(FpgaSoak, VerdictsInvariantAcrossShardCounts) {
  // Each shard compiles its own netlist lazily; the model-derived input
  // grid is a deterministic function of the model alone, so resharding
  // must never move a verdict.
  const ml::LinearSvm model = trained_svm();
  constexpr std::size_t kStreams = 6;

  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    auto windows = make_stream_windows(900 + s, 60, kWidth);
    for (auto& w : windows)
      for (auto& v : w) v = v * 4.0 - 1.0;
    workload.push_back(std::move(windows));
  }

  std::vector<std::vector<OnlineDetector::Verdict>> baseline;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ServeConfig config;
    config.window_size = kWidth;
    config.num_shards = shards;
    config.record_verdicts = true;
    config.tier = ServeConfig::Tier::kFpga;
    config.policy = {.flag_threshold = 0.6, .confirm_windows = 2};
    StreamEngine engine(model, config);
    std::vector<StreamEngine::StreamHandle> handles;
    for (std::size_t s = 0; s < kStreams; ++s)
      handles.push_back(engine.register_stream(s));
    for (std::size_t w = 0; w < 60; ++w)
      for (std::size_t s = 0; s < kStreams; ++s)
        engine.ingest(handles[s], workload[s][w]);
    engine.drain();
    if (baseline.empty()) {
      for (std::size_t s = 0; s < kStreams; ++s)
        baseline.push_back(engine.verdicts(handles[s]));
    } else {
      for (std::size_t s = 0; s < kStreams; ++s)
        expect_verdicts_identical(
            engine.verdicts(handles[s]), baseline[s],
            "shards=" + std::to_string(shards) + " stream " +
                std::to_string(s));
    }
    engine.shutdown();
  }
  metrics().reset();
}

TEST(FpgaTier, SnapshotPinsFpgaTier) {
  const ml::LinearSvm model = trained_svm();
  ServeConfig config;
  config.window_size = kWidth;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kFpga;
  StreamEngine engine(model, config);
  const auto handle = engine.register_stream(1);
  for (const auto& w : make_stream_windows(12, 20, kWidth))
    engine.ingest(handle, w);
  engine.drain();
  std::stringstream buffer;
  engine.checkpoint(buffer);
  engine.shutdown();

  const EngineSnapshot snap = EngineSnapshot::read_or_throw(buffer);
  ASSERT_TRUE(snap.tier.present);
  EXPECT_EQ(snap.tier.name, "fpga");

  const auto shared = std::make_shared<const EngineSnapshot>(snap);
  {
    ServeConfig same = config;
    same.restore_from = shared;
    EXPECT_NO_THROW(StreamEngine(model, same).shutdown());
  }
  ServeConfig mismatched = config;
  mismatched.tier = ServeConfig::Tier::kFloat;
  mismatched.restore_from = shared;
  EXPECT_THROW(StreamEngine(model, mismatched), PreconditionError);
  metrics().reset();
}

TEST(FpgaTier, KeepsFloatPathForUnsupportedScheme) {
  // Schemes without a netlist lowering silently serve float under
  // --tier fpga — verdicts must equal the float serial replay exactly.
  StubModel model;
  ServeConfig config;
  config.window_size = 4;
  config.record_verdicts = true;
  config.tier = ServeConfig::Tier::kFpga;
  StreamEngine engine(model, config);
  const auto handle = engine.register_stream(0);
  const auto windows = make_stream_windows(322, 60, 4);
  for (const auto& w : windows) engine.ingest(handle, w);
  engine.drain();
  const auto expected = serial_replay(model, config.policy, windows);
  expect_verdicts_identical(engine.verdicts(handle), expected,
                            "unsupported-scheme fpga tier");
  engine.shutdown();
  metrics().reset();
}

}  // namespace
}  // namespace hmd::serve
