// Drift → retrain → hot-swap soaks (the TSan CI job runs the DriftSoak
// suite for race coverage). Two contracts:
//
//  * Determinism: a seeded phased run (benign feed → drain → shifted feed
//    → drain → await_retrain → post-swap feed) produces the same swap
//    epoch, bit-identical verdict/version streams and a byte-identical
//    retrained model on every execution, because publishing happens only
//    at the caller's pump points and the window-log harvest is a pure
//    function of the traffic.
//
//  * Race-freedom: drift_pump(), snapshot(), concurrent feeders and the
//    background retrain worker can all overlap without data races or
//    deadlocks (asserts here are deliberately loose — TSan is the judge).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_detector.hpp"
#include "ml/serialization.hpp"
#include "serve/drift.hpp"
#include "serve/resilience.hpp"
#include "serve/stream_engine.hpp"
#include "util/rng.hpp"

namespace hmd::serve {
namespace {

using core::OnlineDetector;

/// Deterministic stub: P(malware) = first counter value.
class StubModel : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return f[0] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    return {1.0 - f[0], f[0]};
  }
  std::string name() const override { return "Stub"; }
  std::size_t num_classes() const override { return 2; }
};

/// Windows whose first counter sits in [lo, hi) (the stub's P(malware))
/// and whose remaining counters are benign-shaped noise the retrained
/// one-class model fits on.
std::vector<std::vector<double>> phase_windows(std::uint64_t seed,
                                               std::size_t count,
                                               std::size_t width, double lo,
                                               double hi) {
  Rng rng(seed);
  std::vector<std::vector<double>> windows(count);
  for (auto& w : windows) {
    w.resize(width);
    w[0] = rng.uniform(lo, hi);
    for (std::size_t f = 1; f < width; ++f) w[f] = rng.normal(0.0, 1.0);
  }
  return windows;
}

/// Feed one phase: one thread per stream (ingest must be serialized per
/// stream), all streams concurrently, then join and drain.
void feed_phase(StreamEngine& engine,
                const std::vector<StreamEngine::StreamHandle>& handles,
                const std::vector<std::vector<std::vector<double>>>& phase) {
  std::vector<std::thread> feeders;
  feeders.reserve(handles.size());
  for (std::size_t s = 0; s < handles.size(); ++s)
    feeders.emplace_back([&, s] {
      for (const auto& w : phase[s]) engine.ingest(handles[s], w);
    });
  for (auto& t : feeders) t.join();
  engine.drain();
}

struct SoakRun {
  std::uint64_t swap_version = 0;
  std::vector<std::vector<OnlineDetector::Verdict>> verdicts;
  std::vector<std::vector<std::uint64_t>> versions;
  std::string retrained_model;  ///< serialized post-swap primary
};

SoakRun run_seeded_soak(std::uint64_t seed) {
  constexpr std::size_t kStreams = 4;
  constexpr std::size_t kWidth = 4;
  constexpr std::size_t kPhaseWindows = 150;

  // All traffic is fixed up front: both executions of a seed feed the
  // exact same windows.
  std::vector<std::vector<std::vector<double>>> benign, shifted, post;
  for (std::size_t s = 0; s < kStreams; ++s) {
    benign.push_back(
        phase_windows(seed * 100 + s, kPhaseWindows, kWidth, 0.05, 0.25));
    shifted.push_back(phase_windows(seed * 100 + 50 + s, kPhaseWindows,
                                    kWidth, 0.55, 0.85));
    post.push_back(phase_windows(seed * 100 + 80 + s, kPhaseWindows, kWidth,
                                 0.55, 0.85));
  }

  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = kWidth;
  config.num_shards = 2;
  config.record_verdicts = true;
  config.policy = {.flag_threshold = 0.97, .confirm_windows = 4};
  config.drift.enabled = true;
  config.drift.page_hinkley = {.delta = 0.005, .lambda = 5.0,
                               .min_samples = 32};
  config.drift.ks = {.window = 64, .threshold = 0.5, .stride = 16};
  config.drift.cooldown_scores = 128;
  config.drift.retrain = true;
  config.drift.retrain_scheme = "MahalanobisThreshold";
  config.drift.retrain_min_rows = 32;
  config.drift.retrain_seed = seed;

  StreamEngine engine(hub, config);
  std::vector<StreamEngine::StreamHandle> handles;
  for (std::size_t s = 0; s < kStreams; ++s)
    handles.push_back(engine.register_stream(s));

  feed_phase(engine, handles, benign);
  (void)engine.drift_pump();  // stationary phase: nothing to do

  feed_phase(engine, handles, shifted);
  SoakRun run;
  run.swap_version = engine.await_retrain();

  feed_phase(engine, handles, post);

  for (std::size_t s = 0; s < kStreams; ++s) {
    run.verdicts.push_back(engine.verdicts(handles[s]));
    run.versions.push_back(engine.verdict_versions(handles[s]));
  }
  const auto epoch = engine.hub().current();
  std::ostringstream out;
  ml::save_model(out, *epoch->primary);
  run.retrained_model = out.str();
  engine.shutdown();
  return run;
}

TEST(DriftSoak, SeededRetrainLoopIsDeterministic) {
  for (const std::uint64_t seed : {3u, 4u}) {
    const SoakRun first = run_seeded_soak(seed);
    const SoakRun second = run_seeded_soak(seed);

    // The shift must actually have driven a retrain and a swap.
    ASSERT_EQ(first.swap_version, 2u) << "seed " << seed;
    EXPECT_EQ(second.swap_version, first.swap_version);
    EXPECT_EQ(second.retrained_model, first.retrained_model)
        << "seed " << seed << ": retrained models differ";
    EXPECT_FALSE(first.retrained_model.empty());

    ASSERT_EQ(first.verdicts.size(), second.verdicts.size());
    for (std::size_t s = 0; s < first.verdicts.size(); ++s) {
      const auto& va = first.verdicts[s];
      const auto& vb = second.verdicts[s];
      ASSERT_EQ(va.size(), vb.size()) << "seed " << seed << " stream " << s;
      ASSERT_EQ(va.size(), 450u);  // three phases of 150
      for (std::size_t w = 0; w < va.size(); ++w) {
        ASSERT_EQ(va[w].probability, vb[w].probability)
            << "seed " << seed << " stream " << s << " window " << w;
        ASSERT_EQ(va[w].flagged, vb[w].flagged);
        ASSERT_EQ(va[w].alarm, vb[w].alarm);
        ASSERT_EQ(first.versions[s][w], second.versions[s][w])
            << "seed " << seed << " stream " << s << " window " << w;
      }
      // Phases A and B scored by epoch 1, phase C by the retrained epoch.
      EXPECT_EQ(first.versions[s].front(), 1u);
      EXPECT_EQ(first.versions[s].back(), 2u);
    }
  }
}

TEST(DriftSoak, LiveRetrainUnderTrafficIsRaceFree) {
  // Feeders, a pump/snapshot thread and the background retrain worker all
  // overlap. Assertions are loose; the TSan job turns any race or lock
  // inversion here into a failure.
  auto hub = std::make_shared<ModelHub>();
  hub->publish(std::make_shared<StubModel>());

  ServeConfig config;
  config.window_size = 2;
  config.num_shards = 2;
  config.ring_capacity = 32;
  config.policy = {.flag_threshold = 0.97, .confirm_windows = 4};
  config.drift.enabled = true;
  config.drift.page_hinkley = {.delta = 0.0, .lambda = 1.0,
                               .min_samples = 16};
  config.drift.ks = {.window = 16, .threshold = 0.4, .stride = 8};
  config.drift.cooldown_scores = 64;
  config.drift.retrain = true;
  config.drift.retrain_scheme = "MahalanobisThreshold";
  config.drift.retrain_min_rows = 32;
  config.drift.window_log_capacity = 128;
  StreamEngine engine(hub, config);

  constexpr std::size_t kFeeders = 3;
  constexpr std::size_t kStreamsPerFeeder = 2;
  constexpr std::size_t kStreams = kFeeders * kStreamsPerFeeder;
  constexpr std::size_t kWindows = 400;
  std::vector<StreamEngine::StreamHandle> handles;
  std::vector<std::vector<std::vector<double>>> workload;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.register_stream(600 + s));
    // First half benign, second half shifted: trips mid-traffic.
    auto windows = phase_windows(40 + s, kWindows / 2, 2, 0.05, 0.25);
    const auto tail =
        phase_windows(70 + s, kWindows / 2, 2, 0.6, 0.9);
    windows.insert(windows.end(), tail.begin(), tail.end());
    workload.push_back(std::move(windows));
  }

  std::atomic<bool> feeding{true};
  std::vector<std::thread> feeders;
  for (std::size_t f = 0; f < kFeeders; ++f)
    feeders.emplace_back([&, f] {
      for (std::size_t w = 0; w < kWindows; ++w)
        for (std::size_t j = 0; j < kStreamsPerFeeder; ++j) {
          const std::size_t s = f * kStreamsPerFeeder + j;
          engine.ingest(handles[s], workload[s][w]);
        }
    });

  // Pump continuously while traffic is live: harvests, worker launches,
  // publishes and snapshots all race the feeders.
  std::thread pumper([&] {
    while (feeding.load(std::memory_order_relaxed)) {
      (void)engine.drift_pump();
      const EngineSnapshot snap = engine.snapshot();
      EXPECT_EQ(snap.drift.size(), config.num_shards);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& t : feeders) t.join();
  feeding.store(false, std::memory_order_relaxed);
  pumper.join();
  engine.drain();
  (void)engine.await_retrain();  // settle any in-flight retrain

  EXPECT_FALSE(engine.last_error().has_value());
  EXPECT_FALSE(engine.drift_events().empty());
  // At least one retrain was published — mid-traffic (pumper) or at the
  // final await — and the engine still serves afterwards.
  EXPECT_GE(engine.hub().version(), 2u);
  for (std::size_t s = 0; s < kStreams; ++s)
    engine.ingest(handles[s], std::vector<double>{0.1, 0.0});
  engine.drain();
  EXPECT_EQ(engine.total_ingested(), kStreams * kWindows + kStreams);
  engine.shutdown();
}

}  // namespace
}  // namespace hmd::serve
