#include "workload/behavior_profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/app_class.hpp"

namespace hmd::workload {
namespace {

TEST(AppClass, NamesRoundTrip) {
  for (AppClass c : all_app_classes())
    EXPECT_EQ(app_class_from_name(app_class_name(c)), c);
}

TEST(AppClass, UnknownNameThrows) {
  EXPECT_THROW(app_class_from_name("ransomware"), ParseError);
}

TEST(AppClass, FiveMalwareFamilies) {
  EXPECT_EQ(malware_classes().size(), 5u);
  for (AppClass c : malware_classes()) EXPECT_TRUE(is_malware(c));
  EXPECT_FALSE(is_malware(AppClass::kBenign));
}

TEST(Archetypes, EveryClassHasPhases) {
  for (AppClass c : all_app_classes()) {
    const BehaviorProfile p = class_archetype(c);
    EXPECT_EQ(p.app_class, c);
    EXPECT_GE(p.phases.size(), 2u) << app_class_name(c);
  }
}

TEST(Archetypes, WeightsNormalize) {
  for (AppClass c : all_app_classes()) {
    const auto w = class_archetype(c).normalized_weights();
    double total = 0.0;
    for (double x : w) total += x;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Archetypes, BackdoorIsBranchyAndTiny) {
  const BehaviorProfile p = class_archetype(AppClass::kBackdoor);
  const PhaseParams& poll = p.phases.front();
  const PhaseParams& benign =
      class_archetype(AppClass::kBenign).phases.front();
  EXPECT_GT(poll.branch_frac, benign.branch_frac);
  EXPECT_LT(poll.data_pages, benign.data_pages);
  EXPECT_GT(poll.branch_bias, 0.95);
}

TEST(Archetypes, RootkitHasLargeCodeAndPoorPredictability) {
  const BehaviorProfile p = class_archetype(AppClass::kRootkit);
  const PhaseParams& interpose = p.phases.front();
  EXPECT_GE(interpose.code_pages, 64u);
  EXPECT_LT(interpose.branch_bias, 0.7);
  EXPECT_GT(interpose.jump_spread, 0.3);
}

TEST(Archetypes, WormHasLargestWorkingSet) {
  const auto worm = class_archetype(AppClass::kWorm).phases.front();
  for (AppClass c : all_app_classes()) {
    if (c == AppClass::kWorm) continue;
    for (const PhaseParams& p : class_archetype(c).phases)
      EXPECT_GE(worm.data_pages, p.data_pages) << app_class_name(c);
  }
}

TEST(Archetypes, VirusIsStreamingReader) {
  const auto scan = class_archetype(AppClass::kVirus).phases.front();
  EXPECT_GT(scan.load_frac, 0.3);
  EXPECT_GT(scan.stream_frac, 0.8);
  EXPECT_LT(scan.store_frac, 0.1);
}

TEST(Sanitize, ClampsFractions) {
  PhaseParams p;
  p.load_frac = 1.5;
  p.store_frac = -0.2;
  p.hot_frac = 2.0;
  p.sanitize();
  EXPECT_LE(p.load_frac, 1.0);
  EXPECT_GE(p.store_frac, 0.0);
  EXPECT_LE(p.hot_frac, 1.0);
}

TEST(Sanitize, KeepsMixAValidDistribution) {
  PhaseParams p;
  p.load_frac = 0.6;
  p.store_frac = 0.6;
  p.branch_frac = 0.6;
  p.sanitize();
  EXPECT_LE(p.load_frac + p.store_frac + p.branch_frac, 0.96);
}

TEST(Sanitize, HotPagesNeverExceedDataPages) {
  PhaseParams p;
  p.data_pages = 4;
  p.hot_pages = 100;
  p.sanitize();
  EXPECT_LE(p.hot_pages, p.data_pages);
}

TEST(Instantiate, IsDeterministicInSeed) {
  Rng a(123), b(123);
  const BehaviorProfile pa = instantiate_sample_profile(AppClass::kVirus, a);
  const BehaviorProfile pb = instantiate_sample_profile(AppClass::kVirus, b);
  ASSERT_EQ(pa.phases.size(), pb.phases.size());
  for (std::size_t i = 0; i < pa.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.phases[i].load_frac, pb.phases[i].load_frac);
    EXPECT_EQ(pa.phases[i].data_pages, pb.phases[i].data_pages);
  }
}

TEST(Instantiate, JitterVariesAcrossSeeds) {
  Rng a(1), b(2);
  const BehaviorProfile pa = instantiate_sample_profile(AppClass::kVirus, a);
  const BehaviorProfile pb = instantiate_sample_profile(AppClass::kVirus, b);
  EXPECT_NE(pa.phases.front().load_frac, pb.phases.front().load_frac);
}

TEST(Instantiate, StealthAddsFacadePhase) {
  Rng rng(5);
  int with_facade = 0;
  for (int i = 0; i < 200; ++i) {
    const BehaviorProfile p =
        instantiate_sample_profile(AppClass::kWorm, rng, 1.0);
    bool found = false;
    for (const auto& phase : p.phases)
      if (phase.name == "stealth-facade") found = true;
    with_facade += found;
  }
  EXPECT_EQ(with_facade, 200);
}

TEST(Instantiate, NoStealthWhenProbabilityZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BehaviorProfile p =
        instantiate_sample_profile(AppClass::kTrojan, rng, 0.0);
    for (const auto& phase : p.phases)
      EXPECT_NE(phase.name, "stealth-facade");
  }
}

TEST(Instantiate, BenignNeverGetsStealthPhase) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const BehaviorProfile p =
        instantiate_sample_profile(AppClass::kBenign, rng, 1.0);
    for (const auto& phase : p.phases)
      EXPECT_NE(phase.name, "stealth-facade");
  }
}

TEST(Instantiate, AllParamsRemainValid) {
  Rng rng(31);
  for (AppClass c : all_app_classes()) {
    for (int i = 0; i < 50; ++i) {
      const BehaviorProfile p = instantiate_sample_profile(c, rng);
      for (const PhaseParams& ph : p.phases) {
        EXPECT_GE(ph.load_frac, 0.0);
        EXPECT_LE(ph.load_frac + ph.store_frac + ph.branch_frac, 0.96);
        EXPECT_GE(ph.branch_bias, 0.0);
        EXPECT_LE(ph.branch_bias, 1.0);
        EXPECT_GE(ph.data_pages, 1u);
        EXPECT_LE(ph.hot_pages, ph.data_pages);
      }
    }
  }
}

}  // namespace
}  // namespace hmd::workload
