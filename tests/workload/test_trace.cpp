#include "workload/trace_generator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "workload/app_class.hpp"

namespace hmd::workload {
namespace {

using hwsim::MicroOp;
using hwsim::OpKind;

TraceGenerator make_gen(AppClass c, std::uint64_t seed = 7) {
  return TraceGenerator(class_archetype(c), seed);
}

TEST(TraceGenerator, DeterministicInSeed) {
  TraceGenerator a = make_gen(AppClass::kVirus, 42);
  TraceGenerator b = make_gen(AppClass::kVirus, 42);
  for (int i = 0; i < 1000; ++i) {
    const MicroOp oa = a.next();
    const MicroOp ob = b.next();
    EXPECT_EQ(oa.pc, ob.pc);
    EXPECT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
    EXPECT_EQ(oa.addr, ob.addr);
  }
}

TEST(TraceGenerator, DiffersAcrossSeeds) {
  TraceGenerator a = make_gen(AppClass::kVirus, 1);
  TraceGenerator b = make_gen(AppClass::kVirus, 2);
  int identical = 0;
  for (int i = 0; i < 200; ++i)
    if (a.next().pc == b.next().pc) ++identical;
  EXPECT_LT(identical, 100);
}

TEST(TraceGenerator, MixMatchesProfile) {
  TraceGenerator gen = make_gen(AppClass::kBenign);
  std::map<OpKind, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().kind];
  // The benign archetype mixes phases; check coarse bands.
  const double load_frac = static_cast<double>(counts[OpKind::kLoad]) / n;
  const double branch_frac = static_cast<double>(counts[OpKind::kBranch]) / n;
  EXPECT_GT(load_frac, 0.10);
  EXPECT_LT(load_frac, 0.40);
  EXPECT_GT(branch_frac, 0.08);
  EXPECT_LT(branch_frac, 0.35);
}

TEST(TraceGenerator, BackdoorIsBranchierThanWorm) {
  TraceGenerator bd = make_gen(AppClass::kBackdoor);
  TraceGenerator wm = make_gen(AppClass::kWorm);
  int bd_branches = 0, wm_branches = 0;
  for (int i = 0; i < 30000; ++i) {
    bd_branches += bd.next().kind == OpKind::kBranch;
    wm_branches += wm.next().kind == OpKind::kBranch;
  }
  EXPECT_GT(bd_branches, wm_branches);
}

TEST(TraceGenerator, LoadsCarryDataAddresses) {
  TraceGenerator gen = make_gen(AppClass::kVirus);
  for (int i = 0; i < 5000; ++i) {
    const MicroOp op = gen.next();
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore)
      EXPECT_GE(op.addr, 0x40000000u);
  }
}

TEST(TraceGenerator, PcStaysInCodeSegment) {
  TraceGenerator gen = make_gen(AppClass::kRootkit);
  for (int i = 0; i < 20000; ++i) {
    const MicroOp op = gen.next();
    EXPECT_GE(op.pc, 0x400000u);
    EXPECT_LT(op.pc, 0x40000000u);  // below the data segment
  }
}

TEST(TraceGenerator, TakenBranchesRedirectPc) {
  // Phase transitions legitimately reset the pc, so a small fraction of
  // taken branches are followed by a fresh code region instead of their
  // target; everything else must land on the target.
  // Exclusions: phase transitions reset the pc, and a loop-closing branch
  // immediately after a taken branch reports the fixed loop-branch site
  // rather than the fall-through (see TraceGenerator's loop model).
  TraceGenerator gen = make_gen(AppClass::kBenign);
  MicroOp prev = gen.next();
  int taken = 0, redirected = 0;
  for (int i = 0; i < 20000; ++i) {
    const MicroOp op = gen.next();
    if (prev.kind == OpKind::kBranch && prev.taken &&
        !(op.kind == OpKind::kBranch && op.conditional)) {
      ++taken;
      redirected += op.pc == prev.target;
    }
    prev = op;
  }
  ASSERT_GT(taken, 100);
  EXPECT_GT(static_cast<double>(redirected) / taken, 0.95);
}

TEST(TraceGenerator, WormTouchesMoreDataThanBackdoor) {
  TraceGenerator bd = make_gen(AppClass::kBackdoor);
  TraceGenerator wm = make_gen(AppClass::kWorm);
  std::uint64_t bd_span = 0, wm_span = 0;
  std::uint64_t bd_base = ~0ull, wm_base = ~0ull;
  for (int i = 0; i < 30000; ++i) {
    const MicroOp a = bd.next();
    if (a.kind == OpKind::kLoad || a.kind == OpKind::kStore) {
      bd_base = std::min(bd_base, a.addr);
      bd_span = std::max(bd_span, a.addr);
    }
    const MicroOp b = wm.next();
    if (b.kind == OpKind::kLoad || b.kind == OpKind::kStore) {
      wm_base = std::min(wm_base, b.addr);
      wm_span = std::max(wm_span, b.addr);
    }
  }
  EXPECT_GT(wm_span - wm_base, (bd_span - bd_base) * 10);
}

TEST(TraceGenerator, GenerateFillsRequestedCount) {
  TraceGenerator gen = make_gen(AppClass::kTrojan);
  const auto ops = gen.generate(1234);
  EXPECT_EQ(ops.size(), 1234u);
}

TEST(TraceGenerator, PhaseChangesOccur) {
  TraceGenerator gen = make_gen(AppClass::kTrojan);
  std::map<std::size_t, int> phase_hits;
  for (int i = 0; i < 20000; ++i) {
    gen.next();
    ++phase_hits[gen.current_phase()];
  }
  // The trojan archetype has 3 phases; all should be visited.
  EXPECT_EQ(phase_hits.size(), class_archetype(AppClass::kTrojan).phases.size());
}

// Property: every class generates valid op streams.
class TraceClassSweep : public ::testing::TestWithParam<AppClass> {};

TEST_P(TraceClassSweep, StreamsAreWellFormed) {
  TraceGenerator gen(class_archetype(GetParam()), 99);
  for (int i = 0; i < 5000; ++i) {
    const MicroOp op = gen.next();
    if (op.kind == OpKind::kBranch && op.taken) EXPECT_NE(op.target, 0u);
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore)
      EXPECT_NE(op.addr, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, TraceClassSweep,
    ::testing::Values(AppClass::kBenign, AppClass::kBackdoor,
                      AppClass::kRootkit, AppClass::kTrojan, AppClass::kVirus,
                      AppClass::kWorm),
    [](const auto& info) {
      return std::string(app_class_name(info.param));
    });

}  // namespace
}  // namespace hmd::workload
