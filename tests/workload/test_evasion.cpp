#include "workload/evasion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/app_class.hpp"
#include "workload/behavior_profile.hpp"

namespace hmd::workload {
namespace {

/// Frozen surrogate for the search: P(malware) is a smooth, monotone
/// function of the mean counter magnitude, so perturbations that shrink
/// the footprint actually lower the score and the hill-climb has a
/// gradient to follow. No training needed — the search only calls
/// distribution_batch.
class MagnitudeSurrogate : public ml::Classifier {
 public:
  void train(const ml::DatasetView&) override {}
  std::size_t predict(std::span<const double> f) const override {
    return distribution(f)[1] > 0.5 ? 1 : 0;
  }
  std::vector<double> distribution(
      std::span<const double> f) const override {
    double mean = 0.0;
    for (const double v : f) mean += v;
    mean /= static_cast<double>(f.size());
    const double p = 1.0 / (1.0 + std::exp(-(mean - 400.0) / 120.0));
    return {1.0 - p, p};
  }
  std::string name() const override { return "MagnitudeSurrogate"; }
  std::size_t num_classes() const override { return 2; }
};

/// Golden fingerprint of the seeded search below. Captured from a
/// verified run; changes only when the generative pipeline changes.
constexpr std::uint64_t kGoldenFingerprint = 0xcb4f91574a6447ull;

/// Cheap-but-real search config: tiny probe collection, few iterations.
EvasionConfig fast_config(std::uint64_t seed) {
  EvasionConfig config;
  config.seed = seed;
  config.iterations = 8;
  config.probe_samples = 1;
  config.collector.num_windows = 2;
  config.collector.warmup_windows = 1;
  config.collector.ops_per_window = 400;
  return config;
}

TEST(EvasionBudget, ValidateNamesOffendingField) {
  EXPECT_NO_THROW(EvasionBudget{}.validate());
  EvasionBudget budget;
  budget.max_rel_step = 0.0;
  Result<void> r = budget.try_validate();
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find("max_rel_step"), std::string::npos);
  EXPECT_THROW(budget.validate(), PreconditionError);
  budget = {};
  budget.max_facade_weight = 1.0;
  r = budget.try_validate();
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message().find("max_facade_weight"),
            std::string::npos);
}

TEST(EvasionPerturbation, ValidateEnforcesBudget) {
  const EvasionBudget budget;  // 0.30 / 0.35
  EvasionPerturbation p;
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(bool(p.try_validate(budget)));

  p.factors.assign(kKnobsPerPhase, 1.0);
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(bool(p.try_validate(budget)));

  p.factors[3] = 1.0 + budget.max_rel_step + 0.01;
  EXPECT_FALSE(bool(p.try_validate(budget)));
  p.factors[3] = 1.0;
  p.facade_weight = budget.max_facade_weight + 0.01;
  EXPECT_FALSE(bool(p.try_validate(budget)));
}

TEST(EvasionPerturbation, EmptyPerturbationIsIdentity) {
  const BehaviorProfile base = class_archetype(AppClass::kVirus);
  const BehaviorProfile out = EvasionPerturbation{}.apply(base);
  ASSERT_EQ(out.phases.size(), base.phases.size());
  for (std::size_t i = 0; i < base.phases.size(); ++i) {
    EXPECT_EQ(out.phases[i].name, base.phases[i].name);
    EXPECT_EQ(out.phases[i].weight, base.phases[i].weight);
    EXPECT_EQ(out.phases[i].load_frac, base.phases[i].load_frac);
    EXPECT_EQ(out.phases[i].data_pages, base.phases[i].data_pages);
  }
}

TEST(EvasionPerturbation, ApplyPreservesPayloadStructure) {
  const BehaviorProfile base = class_archetype(AppClass::kTrojan);
  EvasionPerturbation p;
  p.factors.assign(base.phases.size() * kKnobsPerPhase, 0.8);
  p.facade_weight = 0.3;
  const BehaviorProfile out = p.apply(base);

  // The payload phases survive in declaration order; the facade is
  // appended, never spliced in.
  ASSERT_EQ(out.phases.size(), base.phases.size() + 1);
  for (std::size_t i = 0; i < base.phases.size(); ++i)
    EXPECT_EQ(out.phases[i].name, base.phases[i].name) << "phase " << i;

  // Facade share of total weight matches the declared blend.
  double total = 0.0;
  for (const PhaseParams& phase : out.phases) total += phase.weight;
  EXPECT_NEAR(out.phases.back().weight / total, 0.3, 1e-9);
}

TEST(EvasionPerturbation, FingerprintIsContentAddressed) {
  EvasionPerturbation a, b;
  a.factors.assign(kKnobsPerPhase, 1.1);
  b.factors.assign(kKnobsPerPhase, 1.1);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.factors[0] = 1.1000001;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = a;
  b.facade_weight = 0.1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ProfileSpec, MatchesLegacyInstantiationPath) {
  for (const AppClass c : all_app_classes()) {
    Rng legacy_rng(91u + static_cast<std::uint64_t>(c));
    const BehaviorProfile legacy =
        instantiate_sample_profile(c, legacy_rng);
    const BehaviorProfile spec =
        ProfileSpec{}
            .family(c)
            .seed(91u + static_cast<std::uint64_t>(c))
            .instantiate();
    ASSERT_EQ(spec.phases.size(), legacy.phases.size())
        << app_class_name(c);
    for (std::size_t i = 0; i < legacy.phases.size(); ++i) {
      EXPECT_EQ(spec.phases[i].name, legacy.phases[i].name);
      EXPECT_EQ(spec.phases[i].weight, legacy.phases[i].weight);
      EXPECT_EQ(spec.phases[i].hot_frac, legacy.phases[i].hot_frac);
    }
  }
}

TEST(ProfileSpec, PerturbationFlowsThroughInstantiate) {
  EvasionPerturbation p;
  p.facade_weight = 0.25;
  const auto shared = std::make_shared<const EvasionPerturbation>(p);
  const BehaviorProfile plain =
      ProfileSpec{}.family(AppClass::kWorm).seed(7).instantiate();
  const BehaviorProfile perturbed = ProfileSpec{}
                                        .family(AppClass::kWorm)
                                        .seed(7)
                                        .perturb(shared)
                                        .instantiate();
  EXPECT_EQ(perturbed.phases.size(), plain.phases.size() + 1);
}

TEST(EvasionPlan, FindAndFingerprint) {
  EvasionPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.find(AppClass::kVirus), nullptr);

  EvasionPerturbation p;
  p.factors.assign(kKnobsPerPhase, 0.9);
  plan.set(AppClass::kVirus, p);
  EXPECT_FALSE(plan.empty());
  ASSERT_NE(plan.find(AppClass::kVirus), nullptr);
  EXPECT_EQ(plan.find(AppClass::kWorm), nullptr);

  EvasionPlan same;
  same.set(AppClass::kVirus, p);
  EXPECT_EQ(plan.fingerprint(), same.fingerprint());
  same.set(AppClass::kWorm, p);
  EXPECT_NE(plan.fingerprint(), same.fingerprint());
}

// Property: whatever the seed, the search's output stays inside the
// declared budget, never worsens the surrogate score, and spends at most
// the configured evaluation budget.
TEST(EvadeFamily, BudgetAndScoreInvariantsAcrossSeeds) {
  const MagnitudeSurrogate surrogate;
  for (const std::uint64_t seed : {1ull, 77ull, 4096ull}) {
    const EvasionConfig config = fast_config(seed);
    const EvasionResult r =
        evade_family(AppClass::kRootkit, surrogate, config);
    EXPECT_TRUE(bool(r.perturbation.try_validate(config.budget)))
        << "seed " << seed;
    for (const double f : r.perturbation.factors) {
      EXPECT_GE(f, 1.0 - config.budget.max_rel_step) << "seed " << seed;
      EXPECT_LE(f, 1.0 + config.budget.max_rel_step) << "seed " << seed;
    }
    EXPECT_GE(r.perturbation.facade_weight, 0.0);
    EXPECT_LE(r.perturbation.facade_weight,
              config.budget.max_facade_weight);
    EXPECT_LE(r.evaded_score, r.clean_score) << "seed " << seed;
    EXPECT_LE(r.evaluations, 1 + 2 * config.iterations);
    EXPECT_GE(r.evaluations, 1u);
  }
}

TEST(EvadeFamily, RejectsBenignFamilyAndNonBinarySurrogate) {
  const MagnitudeSurrogate surrogate;
  EXPECT_THROW(
      evade_family(AppClass::kBenign, surrogate, fast_config(1)),
      PreconditionError);
}

// Determinism pin: the full probe pipeline (profile -> sandbox ->
// simulated core -> HPC collector -> surrogate) is a pure function of the
// seed, so the search lands on the exact same perturbation every run —
// the property that makes adversarial datasets byte-identical. The golden
// fingerprint guards the whole chain against accidental nondeterminism
// (update it deliberately when the generative pipeline changes).
TEST(EvadeFamily, SeededSearchIsDeterministicWithGoldenFingerprint) {
  const MagnitudeSurrogate surrogate;
  const EvasionConfig config = fast_config(0xd00d);
  const EvasionResult a =
      evade_family(AppClass::kVirus, surrogate, config);
  const EvasionResult b =
      evade_family(AppClass::kVirus, surrogate, config);
  EXPECT_EQ(a.perturbation.fingerprint(), b.perturbation.fingerprint());
  EXPECT_EQ(a.clean_score, b.clean_score);
  EXPECT_EQ(a.evaded_score, b.evaded_score);
  EXPECT_EQ(a.perturbation.fingerprint(), kGoldenFingerprint)
      << "seeded evasion output changed — if the generative pipeline "
         "changed deliberately, update the golden";
}

}  // namespace
}  // namespace hmd::workload
