#include "workload/mibench.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hwsim/core.hpp"
#include "util/error.hpp"
#include "workload/trace_generator.hpp"

namespace hmd::workload {
namespace {

TEST(Mibench, SixKernelsProvided) {
  EXPECT_EQ(mibench_kernels().size(), 6u);
}

TEST(Mibench, EveryKernelHasAValidProfile) {
  for (const std::string& kernel : mibench_kernels()) {
    const BehaviorProfile p = mibench_profile(kernel);
    EXPECT_EQ(p.app_class, AppClass::kBenign) << kernel;
    EXPECT_GE(p.phases.size(), 1u);
    const auto w = p.normalized_weights();
    double total = 0.0;
    for (double x : w) total += x;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Mibench, UnknownKernelThrows) {
  EXPECT_THROW(mibench_profile("doom"), PreconditionError);
}

TEST(Mibench, SuiteShapeAndDeterminism) {
  const auto a = mibench_suite(3, 7);
  const auto b = mibench_suite(3, 7);
  EXPECT_EQ(a.size(), 18u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_DOUBLE_EQ(a[i].profile.phases[0].load_frac,
                     b[i].profile.phases[0].load_frac);
  }
}

TEST(Mibench, SuiteInstancesAreJittered) {
  const auto suite = mibench_suite(2, 9);
  // Two instances of the same kernel differ.
  EXPECT_NE(suite[0].profile.phases[0].data_pages,
            suite[1].profile.phases[0].data_pages);
  std::set<std::uint64_t> seeds;
  for (const auto& inst : suite) seeds.insert(inst.seed);
  EXPECT_EQ(seeds.size(), suite.size());
}

TEST(Mibench, ShaIsComputeBoundCrcIsPredictable) {
  // Run the kernels and check their signature microarchitectural traits.
  auto run = [](const std::string& kernel) {
    hwsim::Core core;
    TraceGenerator gen(mibench_profile(kernel), 5);
    for (int i = 0; i < 50000; ++i) core.execute(gen.next());
    return std::pair{core.pmu().true_count(hwsim::HwEvent::kL1DcacheLoadMisses),
                     core.pmu().true_count(hwsim::HwEvent::kBranchMisses)};
  };
  const auto [sha_misses, sha_bm] = run("sha");
  const auto [susan_misses, susan_bm] = run("susan");
  (void)sha_bm;
  (void)susan_bm;
  // The stencil streams memory; the crypto kernel barely touches it.
  EXPECT_GT(susan_misses, sha_misses * 20);
}

TEST(Mibench, PerKernelZeroThrows) {
  EXPECT_THROW(mibench_suite(0, 1), PreconditionError);
}

}  // namespace
}  // namespace hmd::workload
