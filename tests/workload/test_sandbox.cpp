#include "workload/sandbox.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::workload {
namespace {

SampleRecord test_record(AppClass c = AppClass::kVirus,
                         std::uint64_t seed = 77) {
  return {.id = "test", .label = c, .seed = seed, .av_positives = 50,
          .av_total = 60};
}

TEST(Sandbox, DeterministicInSampleSeed) {
  Sandbox a(test_record());
  Sandbox b(test_record());
  for (int i = 0; i < 2000; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    EXPECT_EQ(oa.pc, ob.pc);
    EXPECT_EQ(oa.addr, ob.addr);
  }
}

TEST(Sandbox, ZeroNoiseMatchesRawTrace) {
  const SampleRecord rec = test_record();
  Sandbox sb(rec, {.host_noise_frac = 0.0});
  TraceGenerator raw(rec.profile(), rec.seed);
  for (int i = 0; i < 2000; ++i) {
    const auto a = sb.next();
    const auto b = raw.next();
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.addr, b.addr);
  }
}

TEST(Sandbox, NoiseInjectsForeignOps) {
  const SampleRecord rec = test_record();
  Sandbox noisy(rec, {.host_noise_frac = 0.5});
  TraceGenerator raw(rec.profile(), rec.seed);
  int divergent = 0;
  for (int i = 0; i < 2000; ++i) {
    if (noisy.next().pc != raw.next().pc) ++divergent;
  }
  EXPECT_GT(divergent, 500);
}

TEST(Sandbox, NoiseFractionRoughlyHonored) {
  // Noise ops come from a different code segment than the sample's.
  const SampleRecord rec = test_record(AppClass::kBackdoor, 123);
  Sandbox sb(rec, {.host_noise_frac = 0.2});
  TraceGenerator raw(rec.profile(), rec.seed);
  const auto sample_op = raw.next();
  (void)sample_op;
  // Count ops outside the sample's own code base neighbourhood by running
  // a parallel clean sandbox for reference pcs.
  Sandbox clean(rec, {.host_noise_frac = 0.0});
  int mismatches = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (sb.next().pc != clean.next().pc) ++mismatches;
  // Once streams diverge they stay divergent, so just require substantial
  // divergence for 20% noise.
  EXPECT_GT(mismatches, n / 10);
}

TEST(Sandbox, RejectsInvalidNoiseFraction) {
  EXPECT_THROW(Sandbox(test_record(), {.host_noise_frac = 1.0}),
               PreconditionError);
  EXPECT_THROW(Sandbox(test_record(), {.host_noise_frac = -0.1}),
               PreconditionError);
}

TEST(Sandbox, ExposesSampleRecord) {
  const SampleRecord rec = test_record(AppClass::kRootkit, 5);
  Sandbox sb(rec);
  EXPECT_EQ(sb.sample().label, AppClass::kRootkit);
  EXPECT_EQ(sb.sample().seed, 5u);
}

}  // namespace
}  // namespace hmd::workload
