#include "workload/sample_database.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace hmd::workload {
namespace {

TEST(Composition, PaperTable1Counts) {
  const auto comp = DatabaseComposition::paper_table1();
  EXPECT_EQ(comp.total(), 3070u);
  std::map<AppClass, std::size_t> by_class(comp.counts.begin(),
                                           comp.counts.end());
  EXPECT_EQ(by_class[AppClass::kBackdoor], 452u);
  EXPECT_EQ(by_class[AppClass::kRootkit], 324u);
  EXPECT_EQ(by_class[AppClass::kTrojan], 1169u);
  EXPECT_EQ(by_class[AppClass::kVirus], 650u);
  EXPECT_EQ(by_class[AppClass::kWorm], 149u);
  EXPECT_EQ(by_class[AppClass::kBenign], 326u);
}

TEST(Composition, ScaledKeepsAllClasses) {
  const auto comp = DatabaseComposition::scaled(0.1);
  EXPECT_EQ(comp.counts.size(), 6u);
  for (const auto& [cls, n] : comp.counts) EXPECT_GE(n, 2u);
}

TEST(Composition, ScaleOneIsAtLeastPaper) {
  EXPECT_GE(DatabaseComposition::scaled(1.0).total(), 3070u);
}

TEST(Composition, RejectsNonPositiveScale) {
  EXPECT_THROW(DatabaseComposition::scaled(0.0), PreconditionError);
}

TEST(Database, GeneratesRequestedCounts) {
  const auto db =
      SampleDatabase::generate(DatabaseComposition::scaled(0.05), 1);
  const auto comp = DatabaseComposition::scaled(0.05);
  EXPECT_EQ(db.size(), comp.total());
  for (const auto& [cls, n] : comp.counts) EXPECT_EQ(db.count(cls), n);
}

TEST(Database, DeterministicInSeed) {
  const auto a =
      SampleDatabase::generate(DatabaseComposition::scaled(0.02), 9);
  const auto b =
      SampleDatabase::generate(DatabaseComposition::scaled(0.02), 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples()[i].id, b.samples()[i].id);
    EXPECT_EQ(a.samples()[i].seed, b.samples()[i].seed);
  }
}

TEST(Database, SeedsAreUnique) {
  const auto db =
      SampleDatabase::generate(DatabaseComposition::scaled(0.1), 3);
  std::set<std::uint64_t> seeds;
  for (const auto& s : db.samples()) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), db.size());
}

TEST(Database, MalwareHasVirusShareIdsAndDetections) {
  const auto db =
      SampleDatabase::generate(DatabaseComposition::scaled(0.05), 5);
  for (const auto& s : db.samples()) {
    if (is_malware(s.label)) {
      EXPECT_EQ(s.id.rfind("VirusShare_", 0), 0u) << s.id;
      EXPECT_GT(s.av_positives, 0);
      EXPECT_LE(s.av_positives, s.av_total);
    } else {
      EXPECT_EQ(s.av_positives, 0);
      EXPECT_EQ(s.id.rfind("benign_", 0), 0u) << s.id;
    }
  }
}

TEST(Database, ByClassFiltersCorrectly) {
  const auto db =
      SampleDatabase::generate(DatabaseComposition::scaled(0.05), 5);
  const auto worms = db.by_class(AppClass::kWorm);
  EXPECT_EQ(worms.size(), db.count(AppClass::kWorm));
  for (const auto* s : worms) EXPECT_EQ(s->label, AppClass::kWorm);
}

TEST(Database, DistributionSumsToOne) {
  const auto db = SampleDatabase::generate(
      DatabaseComposition::paper_table1(), 7);
  for (bool malware_only : {false, true}) {
    double total = 0.0;
    for (const auto& [cls, share] : db.distribution(malware_only))
      total += share;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Database, TrojanDominatesMalwareDistribution) {
  // Fig. 3/6: trojans are the largest family (~43% of the used samples,
  // ~70% on the internet).
  const auto db = SampleDatabase::generate(
      DatabaseComposition::paper_table1(), 7);
  const auto dist = db.distribution(/*malware_only=*/true);
  double trojan_share = 0.0, max_other = 0.0;
  for (const auto& [cls, share] : dist) {
    if (cls == AppClass::kTrojan)
      trojan_share = share;
    else
      max_other = std::max(max_other, share);
  }
  EXPECT_GT(trojan_share, max_other);
  EXPECT_NEAR(trojan_share, 1169.0 / 2744.0, 1e-9);
}

TEST(Database, ProfileIsDeterministicPerRecord) {
  const auto db =
      SampleDatabase::generate(DatabaseComposition::scaled(0.02), 11);
  const auto& rec = db.samples().front();
  const BehaviorProfile p1 = rec.profile();
  const BehaviorProfile p2 = rec.profile();
  ASSERT_EQ(p1.phases.size(), p2.phases.size());
  EXPECT_DOUBLE_EQ(p1.phases[0].load_frac, p2.phases[0].load_frac);
  EXPECT_EQ(p1.app_class, rec.label);
}

TEST(Database, EmptyCompositionThrows) {
  EXPECT_THROW(SampleDatabase::generate({}, 1), PreconditionError);
}

}  // namespace
}  // namespace hmd::workload
