#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace hmd {
namespace {

TEST(CsvRead, ParsesHeaderAndRows) {
  std::istringstream in("a,b,c\n1,2,3\n4,5,6\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(CsvRead, HandlesQuotedFields) {
  std::istringstream in("name,desc\nx,\"hello, world\"\n");
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.rows[0][1], "hello, world");
}

TEST(CsvRead, HandlesEscapedQuotes) {
  std::istringstream in("a\n\"say \"\"hi\"\"\"\n");
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(CsvRead, SkipsEmptyLinesAndCr) {
  std::istringstream in("a,b\r\n\r\n1,2\r\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(CsvRead, RaggedRowThrows) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(CsvRead, TruncatedRowThrows) {
  // A row cut short (fewer columns than the header) is a parse error, not a
  // silently padded record.
  std::istringstream in("a,b,c\n1,2,3\n4,5\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(CsvRead, TruncatedFileMidQuoteThrows) {
  // Stream ends inside a quoted field — e.g. a partial download.
  std::istringstream in("a,b\n1,\"unfinis");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(CsvRead, HeaderOnlyYieldsNoRows) {
  std::istringstream in("a,b,c\n");
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.header.size(), 3u);
  EXPECT_TRUE(t.rows.empty());
}

TEST(CsvRead, EmptyStreamYieldsEmptyTable) {
  std::istringstream in("");
  const CsvTable t = read_csv(in);
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(CsvRead, UnterminatedQuoteThrows) {
  std::istringstream in("a\n\"oops\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(CsvRead, EmptyFieldsPreserved) {
  std::istringstream in("a,b,c\n,,\n");
  const CsvTable t = read_csv(in);
  ASSERT_EQ(t.rows[0].size(), 3u);
  EXPECT_EQ(t.rows[0][0], "");
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), Error);
}

TEST(CsvTable, ColumnIndexLookup) {
  std::istringstream in("alpha,beta\n1,2\n");
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.column_index("beta"), 1u);
  EXPECT_THROW((void)t.column_index("gamma"), ParseError);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, RoundTripsThroughReader) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<std::string>{"x", "y"});
  w.write_row(std::vector<std::string>{"1", "with, comma"});
  std::istringstream in(out.str());
  const CsvTable t = read_csv(in);
  EXPECT_EQ(t.header[1], "y");
  EXPECT_EQ(t.rows[0][1], "with, comma");
}

TEST(CsvWriter, NumericRowPrecision) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_EQ(out.str(), "1.50,2.25\n");
}

}  // namespace
}  // namespace hmd
