#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/thread_pool.hpp"

namespace hmd {
namespace {

/// Enables the global tracer for one test and restores a clean slate.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().clear();
    tracer().set_enabled(true);
  }
  void TearDown() override {
    tracer().set_enabled(false);
    tracer().clear();
  }
};

TEST_F(TracerTest, SpanRecordsOnDestruction) {
  {
    TraceSpan span("unit/span");
    EXPECT_EQ(tracer().size(), 0u);  // not recorded until it closes
  }
  ASSERT_EQ(tracer().size(), 1u);
  const TraceEvent e = tracer().events().front();
  EXPECT_EQ(e.name, "unit/span");
}

TEST_F(TracerTest, CloseIsIdempotent) {
  TraceSpan span("unit/close");
  span.close();
  span.close();
  EXPECT_EQ(tracer().size(), 1u);
}

TEST_F(TracerTest, EmptyNameIsPureTimer) {
  {
    TraceSpan timer("");
    EXPECT_GE(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(tracer().size(), 0u);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  tracer().set_enabled(false);
  { TraceSpan span("unit/disabled"); }
  EXPECT_EQ(tracer().size(), 0u);
  // elapsed_seconds still works as a scoped timer.
  TraceSpan timer("unit/timer");
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
  timer.close();
}

TEST_F(TracerTest, NestedSpansBothRecordAndNest) {
  {
    TraceSpan outer("unit/outer");
    { HMD_TRACE_SPAN("unit/inner"); }
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; outer's interval must contain inner's.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "unit/inner");
  EXPECT_EQ(outer.name, "unit/outer");
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.duration_us,
            inner.start_us + inner.duration_us);
}

TEST_F(TracerTest, ChromeJsonShape) {
  { HMD_TRACE_SPAN("json/\"quoted\""); }
  std::ostringstream out;
  tracer().write_chrome_json(out);
  const std::string s = out.str();
  EXPECT_EQ(s.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("json/\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\": 1"), std::string::npos);
}

TEST_F(TracerTest, ConcurrentSpansFromPoolWorkers) {
  ThreadPool pool(4);
  parallel_for(&pool, 64, [&](std::size_t i) {
    TraceSpan span("worker/" + std::to_string(i % 4));
  });
  EXPECT_EQ(tracer().size(), 64u);
}

TEST(TracerThreadIds, StableAndSmall) {
  const std::uint32_t a = Tracer::current_thread_id();
  const std::uint32_t b = Tracer::current_thread_id();
  EXPECT_EQ(a, b);
}

TEST(TracerClock, Monotonic) {
  const std::uint64_t t0 = Tracer::now_us();
  const std::uint64_t t1 = Tracer::now_us();
  EXPECT_GE(t1, t0);
}

}  // namespace
}  // namespace hmd
