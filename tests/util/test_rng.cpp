#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace hmd {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.06);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(23);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliZeroAndOneAreDegenerate) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  Rng rng(41);
  RunningStats s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(rng.poisson(3.5)));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  Rng rng(43);
  RunningStats s;
  for (int i = 0; i < 20000; ++i)
    s.add(static_cast<double>(rng.poisson(100.0)));
  EXPECT_NEAR(s.mean(), 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambdaIsZero) {
  Rng rng(47);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(53);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(59);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.015);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(61);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(61);
  EXPECT_THROW(rng.categorical({}), PreconditionError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(67);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(71);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(73);
  Rng child = parent.fork();
  // The child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
  Rng rng(GetParam());
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST_P(RngSeedSweep, NormalSymmetricAcrossSeeds) {
  Rng rng(GetParam());
  int positive = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) positive += rng.normal() > 0.0;
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ull, 42ull, 2018ull, 0xdeadbeefull,
                                           ~0ull));

}  // namespace
}  // namespace hmd
