#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hmd {
namespace {

TEST(TextTable, RendersTitleAndHeader) {
  TextTable t("My Table");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== My Table =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"longer", "1"});
  t.add_row({"x", "22"});
  const std::string s = t.to_string();
  // Both data rows must place column b at the same offset.
  std::istringstream in(s);
  std::string l1, l2, l3, l4;
  std::getline(in, l1);  // header
  std::getline(in, l2);  // rule
  std::getline(in, l3);
  std::getline(in, l4);
  EXPECT_EQ(l3.find('1'), l4.find("22"));
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t;
  t.add_row("row", {1.234, 5.0}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.0"), std::string::npos);
}

TEST(TextTable, PrintWritesToStream) {
  TextTable t;
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(TextTable, EmptyTableRendersNothing) {
  TextTable t;
  EXPECT_EQ(t.to_string(), "");
}

}  // namespace
}  // namespace hmd
