#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace hmd {
namespace {

/// parse() from an initializer list, prepending the program name.
Result<void> parse(ArgParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParser, ParsesEveryFlagKind) {
  bool binary = false;
  std::string out;
  std::vector<std::string> logs;
  double scale = 0.0;
  std::size_t windows = 0;
  std::uint64_t seed = 0;

  ArgParser parser("prog", "summary");
  parser.add_flag("--binary", &binary, "flag");
  parser.add_string("--out", &out, "FILE", "string");
  parser.add_strings("--log", &logs, "FILE", "repeatable");
  parser.add_double("--scale", &scale, "F", "double");
  parser.add_size("--windows", &windows, "N", "size");
  parser.add_uint64("--seed", &seed, "N", "uint64");

  const Result<void> r =
      parse(parser, {"--binary", "--out", "a.csv", "--log", "x", "--log",
                     "y", "--scale", "0.25", "--windows", "12", "--seed",
                     "99"});
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(binary);
  EXPECT_EQ(out, "a.csv");
  EXPECT_EQ(logs, (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(scale, 0.25);
  EXPECT_EQ(windows, 12u);
  EXPECT_EQ(seed, 99u);
  EXPECT_FALSE(parser.help_requested());
}

TEST(ArgParser, DefaultsSurviveWhenFlagsAbsent) {
  std::size_t windows = 8;
  ArgParser parser("prog", "");
  parser.add_size("--windows", &windows, "N", "windows");
  ASSERT_TRUE(parse(parser, {}).ok());
  EXPECT_EQ(windows, 8u);
}

TEST(ArgParser, UnknownFlagListsEveryRegisteredFlag) {
  bool binary = false;
  std::string out;
  ArgParser parser("prog", "");
  parser.add_flag("--binary", &binary, "flag");
  parser.add_string("--out", &out, "FILE", "string");
  const Result<void> r = parse(parser, {"--bogus"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kPrecondition);
  const std::string text = r.error().to_string();
  EXPECT_NE(text.find("--bogus"), std::string::npos);
  EXPECT_NE(text.find("--binary"), std::string::npos);
  EXPECT_NE(text.find("--out"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(ArgParser, MissingValueIsPrecondition) {
  std::string out;
  ArgParser parser("prog", "");
  parser.add_string("--out", &out, "FILE", "string");
  const Result<void> r = parse(parser, {"--out"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kPrecondition);
  EXPECT_NE(r.error().to_string().find("--out"), std::string::npos);
}

TEST(ArgParser, BadTypedValueIsParseErrorNamingTheFlag) {
  std::size_t windows = 0;
  double scale = 0.0;
  ArgParser parser("prog", "");
  parser.add_size("--windows", &windows, "N", "size");
  parser.add_double("--scale", &scale, "F", "double");

  const Result<void> bad_int = parse(parser, {"--windows", "soon"});
  ASSERT_FALSE(bad_int.ok());
  EXPECT_EQ(bad_int.error().code(), ErrCode::kParse);
  EXPECT_NE(bad_int.error().to_string().find("flag --windows"),
            std::string::npos);

  const Result<void> bad_double = parse(parser, {"--scale", "wide"});
  ASSERT_FALSE(bad_double.ok());
  EXPECT_EQ(bad_double.error().code(), ErrCode::kParse);
  EXPECT_NE(bad_double.error().to_string().find("flag --scale"),
            std::string::npos);
}

TEST(ArgParser, HelpIsAlwaysAcceptedAndOnlySetsTheFlag) {
  bool binary = false;
  ArgParser parser("prog", "");
  parser.add_flag("--binary", &binary, "flag");
  const Result<void> r = parse(parser, {"--help", "--binary"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(parser.help_requested());
  EXPECT_TRUE(binary);  // parsing continues past --help
}

TEST(ArgParser, HelpTextListsFlagsValuesAndSummary) {
  bool binary = false;
  std::size_t windows = 0;
  ArgParser parser("prog", "one-line summary");
  parser.add_flag("--binary", &binary, "emit binary labels");
  parser.add_size("--windows", &windows, "N", "window count");
  const std::string text = parser.help();
  EXPECT_NE(text.find("usage: prog"), std::string::npos);
  EXPECT_NE(text.find("one-line summary"), std::string::npos);
  EXPECT_NE(text.find("--binary"), std::string::npos);
  EXPECT_NE(text.find("--windows N"), std::string::npos);
  EXPECT_NE(text.find("emit binary labels"), std::string::npos);
}

TEST(ArgParser, RejectsDuplicateAndMalformedRegistrations) {
  bool b = false;
  ArgParser parser("prog", "");
  parser.add_flag("--binary", &b, "flag");
  EXPECT_THROW(parser.add_flag("--binary", &b, "again"), PreconditionError);
  EXPECT_THROW(parser.add_flag("binary", &b, "no dashes"), PreconditionError);
}

}  // namespace
}  // namespace hmd
