#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hmd {
namespace {

TEST(Fixed16, RoundTripsSmallValues) {
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -987.125}) {
    EXPECT_NEAR(Fixed16::from_double(v).to_double(), v, 1.0 / 65536.0);
  }
}

TEST(Fixed16, OneHasExpectedRaw) {
  EXPECT_EQ(Fixed16::from_double(1.0).raw(), Fixed16::kOne);
}

TEST(Fixed16, AdditionExact) {
  const auto a = Fixed16::from_double(1.5);
  const auto b = Fixed16::from_double(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
}

TEST(Fixed16, SubtractionAndNegation) {
  const auto a = Fixed16::from_double(1.0);
  const auto b = Fixed16::from_double(3.0);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -2.0);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.0);
}

TEST(Fixed16, MultiplicationNearExact) {
  const auto a = Fixed16::from_double(3.0);
  const auto b = Fixed16::from_double(-2.5);
  EXPECT_NEAR((a * b).to_double(), -7.5, 1e-4);
}

TEST(Fixed16, DivisionNearExact) {
  const auto a = Fixed16::from_double(7.5);
  const auto b = Fixed16::from_double(2.5);
  EXPECT_NEAR((a / b).to_double(), 3.0, 1e-4);
}

TEST(Fixed16, DivisionByZeroThrows) {
  const auto a = Fixed16::from_double(1.0);
  EXPECT_THROW((void)(a / Fixed16{}), PreconditionError);
}

TEST(Fixed16, ComparisonOperators) {
  const auto a = Fixed16::from_double(1.0);
  const auto b = Fixed16::from_double(2.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Fixed16::from_double(1.0));
  EXPECT_GT(b, a);
}

TEST(Fixed16, CompoundAssignment) {
  auto a = Fixed16::from_double(1.0);
  a += Fixed16::from_double(2.0);
  EXPECT_DOUBLE_EQ(a.to_double(), 3.0);
  a -= Fixed16::from_double(0.5);
  EXPECT_DOUBLE_EQ(a.to_double(), 2.5);
  a *= Fixed16::from_double(2.0);
  EXPECT_NEAR(a.to_double(), 5.0, 1e-4);
}

TEST(Fixed16, NonFiniteThrows) {
  EXPECT_THROW(Fixed16::from_double(std::nan("")), PreconditionError);
  EXPECT_THROW(Fixed16::from_double(INFINITY), PreconditionError);
}

TEST(QuantizeQ16, ErrorBounded) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-1e4, 1e4);
    EXPECT_NEAR(quantize_q16(v), v, 1.0 / 65536.0);
  }
}

// Property: quantization is idempotent.
class QuantizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizeSweep, Idempotent) {
  const double q = quantize_q16(GetParam());
  EXPECT_DOUBLE_EQ(quantize_q16(q), q);
}

INSTANTIATE_TEST_SUITE_P(Values, QuantizeSweep,
                         ::testing::Values(0.0, 1e-6, -1e-6, 3.14159, -2.71828,
                                           1000.125, -31415.9));

}  // namespace
}  // namespace hmd
