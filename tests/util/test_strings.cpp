#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, SingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD-42"), "mixed-42");
}

TEST(IStartsWith, CaseInsensitive) {
  EXPECT_TRUE(istarts_with("@ATTRIBUTE foo", "@attribute"));
  EXPECT_FALSE(istarts_with("@attr", "@attribute"));
  EXPECT_TRUE(istarts_with("abc", ""));
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, InvalidThrows) {
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
}

TEST(ParseInt, InvalidThrows) {
  EXPECT_THROW(parse_int("4.5"), ParseError);
  EXPECT_THROW(parse_int("x"), ParseError);
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace hmd
