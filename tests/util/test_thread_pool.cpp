#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hmd {
namespace {

TEST(ThreadPool, ConstructionSpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, TeardownDrainsPendingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&executed] { ++executed; });
    // Destructor must run everything already queued before joining.
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, RepeatedConstructTeardownIsClean) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; }).wait();
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(ThreadPool, SubmitRejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW((void)pool.submit(nullptr), PreconditionError);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughHandle) {
  ThreadPool pool(2);
  auto handle = pool.submit([] { throw Error("task blew up"); });
  try {
    handle.get();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "task blew up");
  }
}

TEST(ThreadPool, PoolSurvivesThrowingTasks) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(bad.get(), Error);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; }).wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(&pool, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ExceptionInIterationRethrown) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw Error("iteration 37");
                            }),
               Error);
}

TEST(ParallelFor, ExceptionSkipsRemainingIterations) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(&pool, 100000,
                            [&](std::size_t) {
                              ++ran;
                              throw Error("first iteration fails");
                            }),
               Error);
  // The batch bails out once a failure is recorded; with 2 workers plus
  // the caller at most a handful of iterations can be in flight.
  EXPECT_LT(ran.load(), 100);
}

TEST(ParallelMap, PreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  const auto results = parallel_map(&pool, items, [](int x) {
    // Stagger completion so out-of-order finishes would be visible.
    if (x % 7 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    return x * x;
  });
  ASSERT_EQ(results.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(results[i], static_cast<int>(i * i)) << i;
}

TEST(ParallelMap, WorksWithNonDefaultConstructibleResults) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  ThreadPool pool(2);
  const std::vector<int> items = {1, 2, 3};
  const auto results =
      parallel_map(&pool, items, [](int x) { return NoDefault(x * 10); });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2].value, 30);
}

TEST(ParallelFor, NestedFanOutCompletesWithoutDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer iterations on purpose
  const std::size_t outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  parallel_for(&pool, outer, [&](std::size_t o) {
    // Runs on a worker; the nested batch must not block on pool capacity.
    parallel_for(&pool, inner,
                 [&](std::size_t i) { ++hits[o * inner + i]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> seen_on_worker{false};
  pool.submit([&] { seen_on_worker = pool.on_worker_thread(); }).wait();
  EXPECT_TRUE(seen_on_worker.load());
}

TEST(DefaultJobs, AtLeastOne) { EXPECT_GE(default_jobs(), 1u); }

TEST(GlobalPool, StableIdentity) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace hmd
