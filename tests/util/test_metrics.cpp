#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hmd {
namespace {

TEST(MetricsCounter, AddAndReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  // Same name returns the same instrument.
  EXPECT_EQ(&reg.counter("c"), &c);
}

TEST(MetricsGauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsHistogram, BucketEdgesUseLessOrEqualSemantics) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  h.record(1.0);    // lands in le=1 (boundary inclusive)
  h.record(1.0001); // lands in le=10
  h.record(10.0);   // le=10
  h.record(100.0);  // le=100
  h.record(101.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(MetricsHistogram, SumMinMaxMean) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reports zeros
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.record(5.0);
  h.record(15.0);
  h.record(40.0);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 40.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(MetricsHistogram, QuantileFromBucketBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.record(1.5);  // le=2
  for (int i = 0; i < 10; ++i) h.record(7.0);  // le=8
  // p50 falls in the le=2 bucket; p99 in the le=8 bucket.
  EXPECT_LE(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
}

TEST(MetricsHistogram, RejectsUnsortedBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {10.0, 5.0}), PreconditionError);
  EXPECT_THROW(reg.histogram("empty", {}), PreconditionError);
}

TEST(MetricsHistogram, MismatchedReRegistrationThrows) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), PreconditionError);
}

TEST(MetricsRegistry, NamesAndJson) {
  MetricsRegistry reg;
  reg.counter("requests").add(3);
  reg.gauge("load").set(0.75);
  reg.histogram("latency", {1.0, 10.0}).record(4.0);
  const std::vector<std::string> names = reg.names();
  EXPECT_EQ(names.size(), 3u);

  std::ostringstream json;
  reg.write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"requests\": 3"), std::string::npos);
  EXPECT_NE(s.find("\"load\": 0.75"), std::string::npos);
  EXPECT_NE(s.find("\"latency\""), std::string::npos);
  EXPECT_NE(s.find("\"le\": \"inf\""), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("counter,requests,value,3"), std::string::npos);
}

TEST(MetricsRegistry, DefaultLatencyBucketsAreSorted) {
  const std::vector<double> b = default_latency_buckets_us();
  ASSERT_GE(b.size(), 2u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  const std::vector<double> c = default_count_buckets();
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
}

// Concurrent increments from the thread pool must neither race nor lose
// updates (this suite runs under TSan in CI).
TEST(MetricsConcurrency, ParallelCounterIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ThreadPool pool(4);
  constexpr std::size_t kItems = 10000;
  parallel_for(&pool, kItems, [&](std::size_t i) {
    c.add();
    h.record(static_cast<double>(i % 120));
  });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.count(), kItems);
}

TEST(MetricsConcurrency, ParallelRegistryLookups) {
  MetricsRegistry reg;
  ThreadPool pool(4);
  parallel_for(&pool, 1000, [&](std::size_t i) {
    reg.counter("shared").add();
    reg.counter("c" + std::to_string(i % 7)).add();
  });
  EXPECT_EQ(reg.counter("shared").value(), 1000u);
  std::uint64_t spread = 0;
  for (int i = 0; i < 7; ++i)
    spread += reg.counter("c" + std::to_string(i)).value();
  EXPECT_EQ(spread, 1000u);
}

TEST(MetricsConcurrency, GlobalRegistryFromGlobalPool) {
  Counter& c = metrics().counter("test.metrics_concurrency");
  c.reset();
  parallel_for(&global_pool(), 2048, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), 2048u);
}

}  // namespace
}  // namespace hmd
