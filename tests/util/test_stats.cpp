#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(10.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Pearson, PerfectPositiveCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {5, 5, 5};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Pearson, MismatchedLengthsThrow) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {1, 2};
  EXPECT_THROW((void)pearson_correlation(x, y), PreconditionError);
}

TEST(Pearson, IndependentStreamsNearZero) {
  Rng rng(9);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.05);
}

TEST(MeanStddev, BasicValues) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanStddev, EdgeCases) {
  EXPECT_EQ(mean_of({}), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_EQ(stddev_of(one), 0.0);
}

TEST(Percentile, Median) {
  std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW((void)percentile(xs, 101.0), PreconditionError);
  EXPECT_THROW((void)percentile({}, 50.0), PreconditionError);
}

TEST(BinnedHistogram, CountsIntoCorrectBins) {
  BinnedHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(BinnedHistogram, ClampsOutOfRange) {
  BinnedHistogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(BinnedHistogram, BinEdges) {
  BinnedHistogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(BinnedHistogram, ModeBin) {
  BinnedHistogram h(0.0, 3.0, 3);
  h.add(1.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(BinnedHistogram, RejectsDegenerateGeometry) {
  EXPECT_THROW(BinnedHistogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(BinnedHistogram(0.0, 1.0, 0), PreconditionError);
}

TEST(BinnedHistogram, NormalDistributionPeaksInMiddle) {
  Rng rng(33);
  BinnedHistogram h(-4.0, 4.0, 16);
  for (int i = 0; i < 50000; ++i) h.add(rng.normal());
  // Mode bin should straddle zero.
  const std::size_t mode = h.mode_bin();
  EXPECT_TRUE(mode == 7 || mode == 8) << "mode bin " << mode;
}

}  // namespace
}  // namespace hmd
