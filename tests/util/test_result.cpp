#include "util/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/deployment.hpp"
#include "ml/arff.hpp"
#include "ml/serialization.hpp"
#include "util/csv.hpp"

namespace hmd {
namespace {

TEST(ErrorInfo, CarriesCodeMessageAndContext) {
  ErrorInfo e(ErrCode::kParse, "bad token");
  EXPECT_EQ(e.code(), ErrCode::kParse);
  EXPECT_EQ(e.message(), "bad token");
  EXPECT_TRUE(e.context().empty());
  EXPECT_EQ(e.to_string(), "bad token");

  e.with_context("line 3").with_context("loading widget");
  ASSERT_EQ(e.context().size(), 2u);
  // Innermost frame first in storage, outermost first in rendering.
  EXPECT_EQ(e.to_string(), "loading widget: line 3: bad token");
}

TEST(ErrorInfo, RaiseMapsCodesToExceptionTypes) {
  EXPECT_THROW(ErrorInfo(ErrCode::kParse, "x").raise(), ParseError);
  EXPECT_THROW(ErrorInfo(ErrCode::kPrecondition, "x").raise(),
               PreconditionError);
  EXPECT_THROW(ErrorInfo(ErrCode::kIo, "x").raise(), Error);
  EXPECT_THROW(ErrorInfo(ErrCode::kUnavailable, "x").raise(), Error);
  EXPECT_THROW(ErrorInfo(ErrCode::kInternal, "x").raise(), Error);
  try {
    ErrorInfo(ErrCode::kParse, "inner").with_context("outer").raise();
    FAIL() << "raise did not throw";
  } catch (const ParseError& e) {
    EXPECT_STREQ(e.what(), "outer: inner");
  }
}

TEST(ErrorInfo, FromCurrentExceptionClassifies) {
  auto classify = [](auto thrower) {
    try {
      thrower();
    } catch (...) {
      return ErrorInfo::from_current_exception();
    }
    return ErrorInfo(ErrCode::kInternal, "did not throw");
  };
  EXPECT_EQ(classify([] { throw ParseError("p"); }).code(), ErrCode::kParse);
  EXPECT_EQ(classify([] { throw PreconditionError("q"); }).code(),
            ErrCode::kPrecondition);
  EXPECT_EQ(classify([] { throw Error("r"); }).code(), ErrCode::kInternal);
  EXPECT_EQ(classify([] { throw std::runtime_error("s"); }).code(),
            ErrCode::kInternal);
  EXPECT_EQ(classify([] { throw 42; }).code(), ErrCode::kInternal);
  EXPECT_EQ(classify([] { throw Error("msg kept"); }).message(), "msg kept");
}

TEST(Result, ValueAndErrorStates) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);

  Result<int> bad(ErrorInfo(ErrCode::kIo, "disk gone"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrCode::kIo);
  EXPECT_THROW((void)bad.value(), Error);
  EXPECT_EQ(Result<int>(ErrorInfo(ErrCode::kIo, "x")).value_or(9), 9);
  EXPECT_EQ(Result<int>(3).value_or(9), 3);
}

TEST(Result, SupportsMoveOnlyPayloads) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(Result, WithContextAnnotatesOnlyErrors) {
  Result<int> bad = Result<int>(ErrorInfo(ErrCode::kParse, "bad digit"))
                        .with_context("flag --seed");
  EXPECT_EQ(bad.error().to_string(), "flag --seed: bad digit");
  Result<int> fine = Result<int>(1).with_context("ignored");
  EXPECT_TRUE(fine.ok());
  EXPECT_EQ(fine.value(), 1);
}

TEST(ResultVoid, DefaultIsSuccess) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_NO_THROW(ok.value());
  Result<void> bad{ErrorInfo(ErrCode::kPrecondition, "nope")};
  EXPECT_FALSE(bad.ok());
  EXPECT_THROW(bad.value(), PreconditionError);
}

TEST(CaptureResult, ConvertsThrowsToValues) {
  const Result<int> ok = capture_result([] { return 3; });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3);
  const Result<int> bad =
      capture_result([]() -> int { throw ParseError("boom"); });
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrCode::kParse);
  const Result<void> v = capture_result([] {});
  EXPECT_TRUE(v.ok());
}

// ---------------------------------------------------------------------------
// Migrated load boundaries: the Result surface of each fallible parser.
// ---------------------------------------------------------------------------

TEST(ResultBoundaries, CorruptBundleReportsParseChain) {
  std::istringstream bad("definitely not a bundle\n");
  const Result<core::DeploymentBundle> r = core::try_load_bundle(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kParse);
  EXPECT_NE(r.error().to_string().find("loading deployment bundle"),
            std::string::npos);
}

TEST(ResultBoundaries, CorruptModelReportsParseChain) {
  std::istringstream bad("hmd-model v9 Nonsense\n");
  const Result<std::unique_ptr<ml::Classifier>> r = ml::try_load_model(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kParse);
  EXPECT_NE(r.error().to_string().find("loading model"), std::string::npos);
}

TEST(ResultBoundaries, CorruptArffReportsParseChain) {
  std::istringstream bad("@relation x\n@attribute a numeric\n@data\n1,2,3\n");
  const Result<ml::Dataset> r = ml::try_read_arff(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kParse);
  EXPECT_NE(r.error().to_string().find("reading ARFF"), std::string::npos);
}

TEST(ResultBoundaries, RaggedCsvReportsParse) {
  std::istringstream bad("a,b\n1,2\n3\n");
  const Result<CsvTable> r = try_read_csv(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kParse);
}

TEST(ResultBoundaries, MissingCsvFileReportsIo) {
  const Result<CsvTable> r =
      try_read_csv_file("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrCode::kIo);
}

TEST(ResultBoundaries, ThrowingWrappersKeepExceptionTypes) {
  // The thin wrappers must fail exactly as the pre-Result API did, so
  // untouched call sites (and their tests) keep working.
  std::istringstream bad_bundle("junk\n");
  EXPECT_THROW((void)core::load_bundle(bad_bundle), ParseError);
  std::istringstream bad_model("junk\n");
  EXPECT_THROW((void)ml::load_model(bad_model), ParseError);
  std::istringstream bad_arff("junk\n");
  EXPECT_THROW((void)ml::read_arff(bad_arff), ParseError);
}

}  // namespace
}  // namespace hmd
