// Golden-fingerprint helper for the RTL backend tests: FNV-1a over the
// emitted text. Both backends are deterministic functions of the netlist
// IR, so a fingerprint change means the emission (or a lowering feeding
// it) changed — the test failure prints the new value to re-pin after an
// intentional change.
#pragma once

#include <cstdint>
#include <string>

namespace hmd::hw::testutil {

inline std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace hmd::hw::testutil
