#include "hw/pareto.hpp"

#include <gtest/gtest.h>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

std::vector<DesignPoint> explore_mlp() {
  static const std::vector<DesignPoint> points = [] {
    const auto d = ml::testdata::separable_binary();
    auto mlp = ml::make_classifier("MLP");
    mlp->train(d);
    return explore_classifier(*mlp, d.num_features());
  }();
  return points;
}

TEST(Pareto, ProducesMultiplePoints) {
  const auto points = explore_mlp();
  EXPECT_GE(points.size(), 5u);
}

TEST(Pareto, PointsSortedByArea) {
  const auto points = explore_mlp();
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].area_slices, points[i - 1].area_slices);
}

TEST(Pareto, FrontIsMonotoneTradeoff) {
  const auto front = pareto_front(explore_mlp());
  ASSERT_GE(front.size(), 2u);
  // Along the front: more area must buy strictly less latency.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].area_slices, front[i - 1].area_slices);
    EXPECT_LT(front[i].latency_cycles, front[i - 1].latency_cycles);
  }
}

TEST(Pareto, NoFrontPointIsDominated) {
  const auto points = explore_mlp();
  const auto front = pareto_front(points);
  for (const auto& f : front) {
    for (const auto& p : points) {
      const bool dominates =
          p.area_slices <= f.area_slices &&
          p.latency_cycles <= f.latency_cycles &&
          (p.area_slices < f.area_slices ||
           p.latency_cycles < f.latency_cycles);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Pareto, UnboundedPointHasLowestLatency) {
  const auto points = explore_mlp();
  std::uint32_t min_latency = ~0u;
  for (const auto& p : points)
    min_latency = std::min(min_latency, p.latency_cycles);
  // The fully-parallel design achieves the minimum latency.
  bool found = false;
  for (const auto& p : points) {
    if (!p.allocation.multipliers.has_value() &&
        p.latency_cycles == min_latency)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Pareto, TinyClassifierCollapsesToOnePoint) {
  // A stump has no shared-pool pressure: every allocation gives the same
  // design, so the explored set collapses after deduplication.
  const auto d = ml::testdata::separable_binary();
  auto stump = ml::make_classifier("DecisionStump");
  stump->train(d);
  const auto points = explore_classifier(*stump, d.num_features());
  EXPECT_LE(points.size(), 3u);
  EXPECT_TRUE(points.front().pareto_optimal);
}

TEST(Pareto, RejectsEmptyPoolList) {
  const auto d = ml::testdata::separable_binary();
  auto clf = ml::make_classifier("SVM");
  clf->train(d);
  ParetoOptions options;
  options.pool_sizes.clear();
  EXPECT_THROW((void)explore_classifier(*clf, 4, options),
               hmd::PreconditionError);
}

}  // namespace
}  // namespace hmd::hw
