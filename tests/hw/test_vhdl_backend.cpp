// VhdlBackend: the second language rendered from the same netlist IR.
// Goldens are FNV-1a fingerprints of the full emitted text per scheme —
// when an intentional emission change trips one, re-pin it with the new
// value the failure message prints.
#include "hw/vhdl_backend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "hw/backend.hpp"
#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "hw/verilog_backend.hpp"
#include "ml/registry.hpp"
#include "tests/hw/rtl_fingerprint.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

using ml::testdata::separable_binary;
using ml::testdata::three_class;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

CompiledDesign compile_on(const ml::Classifier& clf, const ml::Dataset& data,
                          const std::string& module_name) {
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.module_name = module_name;
  return compile(clf, std::move(opts));
}

/// Structural sanity every emitted entity must satisfy.
void expect_well_formed(const std::string& vhdl, std::size_t num_features,
                        const std::string& name) {
  EXPECT_NE(vhdl.find("library ieee;"), std::string::npos);
  EXPECT_NE(vhdl.find("use ieee.numeric_std.all;"), std::string::npos);
  EXPECT_EQ(count_occurrences(vhdl, "entity " + name + " is"), 1u);
  EXPECT_EQ(count_occurrences(vhdl, "architecture rtl of " + name), 1u);
  EXPECT_NE(vhdl.find("end architecture rtl;"), std::string::npos);
  for (std::size_t f = 0; f < num_features; ++f)
    EXPECT_NE(vhdl.find("f" + std::to_string(f) +
                        "        : in  signed(31 downto 0);"),
              std::string::npos)
        << "missing port f" << f;
  EXPECT_NE(vhdl.find("class_out"), std::string::npos);
  EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
  // Every process closes.
  EXPECT_EQ(count_occurrences(vhdl, " : process"),
            count_occurrences(vhdl, "end process;"));
}

/// Deterministic per-scheme entity for the golden tests (same models the
/// Verilog golden test compiles, so the two languages pin the same IR).
std::string golden_vhdl(const std::string& scheme) {
  const auto data = scheme == "MLR" || scheme == "SVM" || scheme == "MLP" ||
                            scheme == "NaiveBayes"
                        ? three_class()
                        : separable_binary();
  auto clf = ml::make_classifier(scheme);
  clf->train(data);
  return compile_on(*clf, data, "golden_det").emit(VhdlBackend());
}

TEST(VhdlBackend, GoldenFingerprintsPerScheme) {
  const std::map<std::string, std::uint64_t> expected = {
      {"OneR", 0x3ffb183a84de4144ull},
      {"DecisionStump", 0x67125a720e82d9eaull},
      {"J48", 0xd1e83c0c326c5543ull},
      {"JRip", 0xb97b06603ad404b1ull},
      {"NaiveBayes", 0x2a26e12a17aad394ull},
      {"MLR", 0x228d37f6142536feull},
      {"SVM", 0x9d347fca6e70cfcaull},
      {"MLP", 0xb8fabe3f4bdc7829ull},
  };
  for (const std::string& scheme : ml::rtl_schemes()) {
    ASSERT_TRUE(expected.count(scheme)) << "unpinned scheme " << scheme;
    const std::uint64_t got = testutil::fnv1a(golden_vhdl(scheme));
    EXPECT_EQ(got, expected.at(scheme))
        << scheme << ": re-pin with 0x" << std::hex << got << "ull";
  }
}

TEST(VhdlBackend, AllRtlSchemesEmitWellFormedEntities) {
  const auto d = three_class();
  for (const std::string& scheme : ml::rtl_schemes()) {
    SCOPED_TRACE(scheme);
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    const std::string vhdl =
        compile_on(*clf, d, "det").emit(VhdlBackend());
    expect_well_formed(vhdl, d.num_features(), "det");
    EXPECT_NE(vhdl.find("-- Scheme: " + scheme), std::string::npos);
  }
}

TEST(VhdlBackend, SameNetlistFeedsBothLanguages) {
  // One compile, two languages: net counts quoted in the headers match.
  const auto d = three_class();
  auto clf = ml::make_classifier("MLR");
  clf->train(d);
  const CompiledDesign design = compile_on(*clf, d, "det");
  const std::string marker =
      std::to_string(design.netlist().num_nodes()) + " nets";
  EXPECT_NE(design.emit(VerilogBackend()).find(marker), std::string::npos);
  EXPECT_NE(design.emit(VhdlBackend()).find(marker), std::string::npos);
}

TEST(VhdlBackend, MulticlassEmitsArgmaxProcess) {
  const auto d = three_class();
  auto clf = ml::make_classifier("SVM");
  clf->train(d);
  const std::string vhdl = compile_on(*clf, d, "det").emit(VhdlBackend());
  EXPECT_NE(vhdl.find(" : process ("), std::string::npos);
  EXPECT_NE(vhdl.find("best_idx"), std::string::npos);
  EXPECT_NE(vhdl.find("class_out : out unsigned(1 downto 0);"),
            std::string::npos);
}

TEST(VhdlBackend, LutSchemesEmitRomConstants) {
  const auto d = three_class();
  auto nb = ml::make_classifier("NaiveBayes");
  nb->train(d);
  const std::string vhdl = compile_on(*nb, d, "det").emit(VhdlBackend());
  EXPECT_NE(vhdl.find("-- Gaussian ROM"), std::string::npos);
  EXPECT_NE(vhdl.find("type rom0_t is array"), std::string::npos);
  EXPECT_NE(vhdl.find("constant rom0 : rom0_t := ("), std::string::npos);
}

TEST(VhdlBackend, DeterministicOutput) {
  const auto d = separable_binary();
  auto clf = ml::make_classifier("JRip");
  clf->train(d);
  const CompiledDesign design = compile_on(*clf, d, "det");
  EXPECT_EQ(design.emit(VhdlBackend()), design.emit(VhdlBackend()));
}

TEST(VhdlBackend, TestbenchIsSelfCheckingAndFinishes) {
  const auto d = separable_binary();
  auto clf = ml::make_classifier("J48");
  clf->train(d);
  CompileOptions opts;
  opts.num_features = d.num_features();
  opts.module_name = "j48_det";
  opts.feature_absmax = calibrate_feature_absmax(d);
  const CompiledDesign design = compile(*clf, std::move(opts));
  const std::string tb = VhdlBackend().emit_testbench(design, d, 8);
  EXPECT_NE(tb.find("entity j48_det_tb is"), std::string::npos);
  EXPECT_NE(tb.find("dut : entity work.j48_det"), std::string::npos);
  EXPECT_NE(tb.find("use std.env.all;"), std::string::npos);
  EXPECT_NE(tb.find("finish;"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
  // One expectation check per vector, sourced from the simulator.
  const auto vectors = testbench_vectors(design, d, 8);
  EXPECT_EQ(count_occurrences(tb, "if class_out /= to_unsigned("),
            vectors.size());
  for (const TestVector& v : vectors)
    EXPECT_NE(tb.find("to_unsigned(" + std::to_string(v.expected) + ", 1)"),
              std::string::npos);
}

TEST(VhdlBackend, BackendRegistryResolvesBothLanguages) {
  EXPECT_EQ(backend_by_name("verilog").name(), "verilog");
  EXPECT_EQ(backend_by_name("vhdl").name(), "vhdl");
  EXPECT_EQ(backend_by_name("verilog").file_extension(), ".v");
  EXPECT_EQ(backend_by_name("vhdl").file_extension(), ".vhd");
  EXPECT_THROW((void)backend_by_name("systemverilog"), PreconditionError);
}

}  // namespace
}  // namespace hmd::hw
