#include "hw/fixed_point_eval.hpp"

#include <gtest/gtest.h>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

TEST(FixedPointEval, MatchesFloatOnSeparableData) {
  const auto d = ml::testdata::separable_binary();
  auto clf = ml::make_classifier("J48");
  clf->train(d);
  const double float_acc = ml::evaluate(*clf, d).accuracy();
  const double fixed_acc = evaluate_fixed_point(*clf, d).accuracy();
  EXPECT_NEAR(fixed_acc, float_acc, 0.02);
}

TEST(FixedPointEval, HandlesLargeMagnitudeFeatures) {
  // HPC counts reach 1e6+; the evaluator must rescale into Q16.16 range.
  std::vector<ml::Attribute> attrs;
  attrs.emplace_back("big");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  ml::Dataset d(std::move(attrs));
  hmd::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const bool hi = i % 2 == 1;
    d.add({{(hi ? 5e6 : 1e6) + rng.normal(0.0, 1e5), hi ? 1.0 : 0.0}});
  }
  auto clf = ml::make_classifier("DecisionStump");
  clf->train(d);
  const auto result = evaluate_fixed_point(*clf, d);
  EXPECT_GT(result.accuracy(), 0.95);
}

TEST(FixedPointEval, QuantizationCostIsBoundedAcrossSchemes) {
  const auto d = ml::testdata::three_class(120);
  for (const auto& scheme : {"OneR", "J48", "MLR", "SVM", "NaiveBayes"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    const double float_acc = ml::evaluate(*clf, d).accuracy();
    const double fixed_acc = evaluate_fixed_point(*clf, d).accuracy();
    EXPECT_NEAR(fixed_acc, float_acc, 0.05) << scheme;
  }
}

TEST(FixedPointEval, EmptyTestSetThrows) {
  std::vector<ml::Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  const ml::Dataset empty(std::move(attrs));
  auto clf = ml::make_classifier("ZeroR");
  EXPECT_THROW((void)evaluate_fixed_point(*clf, empty),
               hmd::PreconditionError);
}

}  // namespace
}  // namespace hmd::hw
