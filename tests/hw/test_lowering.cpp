#include "hw/lowering.hpp"

#include <gtest/gtest.h>

#include "ml/knn.hpp"
#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

using ml::testdata::separable_binary;
using ml::testdata::three_class;

TEST(Lowering, OneRIsTiny) {
  ml::OneR model;
  const auto d = separable_binary();
  model.train(d);
  const DataflowGraph g = lower_one_r(model, d.num_features());
  EXPECT_EQ(g.count_ops(HwOp::kMul), 0u);
  EXPECT_LE(g.total_resources().equivalent_slices(), 200.0);
}

TEST(Lowering, StumpIsOneComparator) {
  ml::DecisionStump model;
  const auto d = separable_binary();
  model.train(d);
  const DataflowGraph g = lower_decision_stump(model, d.num_features());
  EXPECT_EQ(g.count_ops(HwOp::kCompare), 1u);
  EXPECT_EQ(g.count_ops(HwOp::kMux2), 1u);
}

TEST(Lowering, J48ComparatorPerInternalNode) {
  ml::J48 model;
  const auto d = separable_binary();
  model.train(d);
  const DataflowGraph g = lower_j48(model, d.num_features());
  EXPECT_EQ(g.count_ops(HwOp::kCompare), model.num_nodes() - model.num_leaves());
  EXPECT_EQ(g.count_ops(HwOp::kMux2), model.num_nodes() - model.num_leaves());
}

TEST(Lowering, DeeperTreeHasHigherLatency) {
  const auto d = ml::testdata::overlapping_binary(400);
  ml::J48 shallow({.min_leaf = 2, .max_depth = 2, .prune = false});
  ml::J48 deep({.min_leaf = 2, .max_depth = 12, .prune = false});
  shallow.train(d);
  deep.train(d);
  ASSERT_GT(deep.depth(), shallow.depth());
  const auto s1 = synthesize(lower_j48(shallow, 4), "s");
  const auto s2 = synthesize(lower_j48(deep, 4), "d");
  EXPECT_LT(s1.latency_cycles, s2.latency_cycles);
}

TEST(Lowering, JRipComparatorPerCondition) {
  ml::JRip model;
  const auto d = separable_binary();
  model.train(d);
  const DataflowGraph g = lower_jrip(model, d.num_features());
  EXPECT_EQ(g.count_ops(HwOp::kCompare), model.total_conditions());
}

TEST(Lowering, NaiveBayesScalesWithClassesTimesFeatures) {
  ml::NaiveBayes model;
  const auto d = three_class();  // 3 classes x 5 features
  model.train(d);
  const DataflowGraph g = lower_naive_bayes(model, d.num_features());
  EXPECT_EQ(g.count_ops(HwOp::kMul), 2u * 3u * 5u);  // square + scale
}

TEST(Lowering, LinearBankBinaryUsesOneHyperplane) {
  const DataflowGraph g = lower_linear_bank(16, 2);
  EXPECT_EQ(g.count_ops(HwOp::kMul), 16u);
  EXPECT_EQ(g.count_ops(HwOp::kArgmaxStage), 0u);
}

TEST(Lowering, LinearBankMulticlassUsesKHyperplanes) {
  const DataflowGraph g = lower_linear_bank(16, 6);
  EXPECT_EQ(g.count_ops(HwOp::kMul), 96u);
  EXPECT_EQ(g.count_ops(HwOp::kArgmaxStage), 5u);
}

TEST(Lowering, MlpDominatesEverything) {
  const auto d = separable_binary();
  ml::Mlp mlp({.epochs = 5});
  mlp.train(d);
  ml::OneR oner;
  oner.train(d);
  const auto mlp_synth = synthesize(lower_mlp(mlp, d.num_features()), "mlp");
  const auto oner_synth =
      synthesize(lower_one_r(oner, d.num_features()), "oner");
  EXPECT_GT(mlp_synth.area_slices(), 50.0 * oner_synth.area_slices());
  EXPECT_GT(mlp_synth.latency_cycles, oner_synth.latency_cycles);
}

TEST(Lowering, MlpMultiplierCount) {
  const auto d = separable_binary();  // 4 features, 2 classes
  ml::Mlp mlp({.hidden_units = 6, .epochs = 3});
  mlp.train(d);
  const DataflowGraph g = lower_mlp(mlp, d.num_features());
  // hidden: 6*4, output: 2*6 → 36 multipliers; sigmoid LUT per hidden unit.
  EXPECT_EQ(g.count_ops(HwOp::kMul), 36u);
  EXPECT_EQ(g.count_ops(HwOp::kSigmoidLut), 6u);
}

TEST(Lowering, DispatchCoversAllSynthesizableSchemes) {
  const auto d = separable_binary();
  for (const auto& scheme :
       {"OneR", "DecisionStump", "J48", "JRip", "NaiveBayes", "MLR", "SVM",
        "MLP"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    const DataflowGraph g = lower_classifier(*clf, d.num_features());
    EXPECT_GT(g.num_ops(), 0u) << scheme;
  }
}

TEST(Lowering, UnsupportedClassifierThrows) {
  ml::Knn knn;
  knn.train(separable_binary());
  EXPECT_THROW((void)lower_classifier(knn, 4), hmd::PreconditionError);
}

TEST(Synthesis, ReportFieldsConsistent) {
  const auto d = separable_binary();
  auto clf = ml::make_classifier("MLR");
  clf->train(d);
  const SynthesisReport r = synthesize_classifier(*clf, d.num_features());
  EXPECT_EQ(r.design_name, "MLR");
  EXPECT_GT(r.latency_cycles, 0u);
  EXPECT_GT(r.area_slices(), 0.0);
  EXPECT_GT(r.total_power_mw(), 0.0);
  EXPECT_NEAR(r.latency_us(),
              static_cast<double>(r.latency_cycles) / r.clock_mhz, 1e-12);
  EXPECT_NE(r.to_string().find("MLR"), std::string::npos);
}

TEST(Synthesis, ResourceSharingTradesLatencyForArea) {
  const auto d = separable_binary();
  ml::Mlp mlp({.hidden_units = 8, .epochs = 3});
  mlp.train(d);
  const DataflowGraph g = lower_mlp(mlp, d.num_features());
  SynthesisOptions shared;
  shared.allocation = OperatorAllocation{.multipliers = 2};
  const auto parallel = synthesize(g, "mlp");
  const auto serial = synthesize(g, "mlp", shared);
  EXPECT_LT(serial.resources.dsps, parallel.resources.dsps);
  EXPECT_GT(serial.latency_cycles, parallel.latency_cycles);
}

TEST(Synthesis, FasterClockShortensLatency) {
  const auto d = separable_binary();
  auto clf = ml::make_classifier("SVM");
  clf->train(d);
  const auto slow =
      synthesize_classifier(*clf, 4, {.clock_mhz = 100.0});
  const auto fast =
      synthesize_classifier(*clf, 4, {.clock_mhz = 200.0});
  EXPECT_EQ(slow.latency_cycles, fast.latency_cycles);
  EXPECT_GT(slow.latency_us(), fast.latency_us());
}

}  // namespace
}  // namespace hmd::hw
