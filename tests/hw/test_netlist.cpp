#include "hw/netlist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace hmd::hw {
namespace {

// ---------------------------------------------------------------------------
// Q16.16 input-grid helpers.

TEST(NetlistGrid, RawRoundTripsThroughValue) {
  EXPECT_EQ(q16_raw(1.0), 65536);
  EXPECT_EQ(q16_raw(-0.5), -32768);
  EXPECT_DOUBLE_EQ(q16_value(65536), 1.0);
  EXPECT_DOUBLE_EQ(q16_value(q16_raw(3.25)), 3.25);
}

TEST(NetlistGrid, RawMatchesFixed16) {
  // The grid helpers and util/fixed_point.hpp must agree on the word.
  for (const double v : {0.0, 1.0, -2.75, 123.456, -0.0001})
    EXPECT_EQ(q16_raw(v), Fixed16::from_double(v).raw()) << v;
}

TEST(NetlistGrid, RawRejectsNonFinite) {
  EXPECT_THROW((void)q16_raw(std::nan("")), PreconditionError);
  EXPECT_THROW((void)q16_raw(1e300), PreconditionError);
}

TEST(NetlistGrid, InputScaleMatchesQuantizedModelRule) {
  // absmax <= 16000 passes through unscaled; larger magnitudes compress to
  // the ±16000 band; degenerate absmax clamps instead of dividing by zero.
  EXPECT_DOUBLE_EQ(q16_input_scale(100.0), 1.0);
  EXPECT_DOUBLE_EQ(q16_input_scale(16000.0), 1.0);
  EXPECT_DOUBLE_EQ(q16_input_scale(32000.0), 0.5);
  EXPECT_GT(q16_input_scale(0.0), 0.0);
  EXPECT_TRUE(std::isfinite(q16_input_scale(0.0)));
}

TEST(NetlistGrid, QuantizeInputIsTheRawOverTheScale) {
  const double scale = q16_input_scale(5e6);
  for (const double x : {0.0, 1e6, -3.7e6, 4.999e6}) {
    const std::int64_t raw = quantize_input_raw(x, scale);
    EXPECT_DOUBLE_EQ(quantize_input(x, scale), q16_value(raw) / scale) << x;
  }
}

TEST(NetlistGrid, ThresholdFloorEquivalenceIsExact) {
  // The property the whole tree/rule lowering rests on:
  //   raw <= threshold_raw(t, scale)  <=>  quantize_input(x, scale) <= t
  // for every x — including x exactly on / adjacent to the threshold.
  Rng rng(42);
  for (const double absmax : {1.0, 100.0, 5e6}) {
    const double scale = q16_input_scale(absmax);
    for (int trial = 0; trial < 2000; ++trial) {
      const double t = rng.uniform(-absmax, absmax);
      double x = rng.uniform(-absmax, absmax);
      if (trial % 4 == 0) x = t;  // exercise the boundary itself
      if (trial % 4 == 1) x = t + rng.normal(0.0, 1e-6 * absmax);
      const std::int64_t raw = quantize_input_raw(x, scale);
      const bool hw_le = raw <= threshold_raw(t, scale);
      const bool float_le = quantize_input(x, scale) <= t;
      ASSERT_EQ(hw_le, float_le)
          << "absmax=" << absmax << " t=" << t << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Builder validation: a Netlist that constructs is well-formed.

Netlist tiny() { return Netlist(2, 2); }

TEST(NetlistBuilder, InputValidatesFeatureIndex) {
  Netlist nl = tiny();
  EXPECT_NO_THROW((void)nl.input(1));
  EXPECT_THROW((void)nl.input(2), PreconditionError);
}

TEST(NetlistBuilder, CompareRequiresArithmeticOperands) {
  Netlist nl = tiny();
  const NetId a = nl.input(0);
  const NetId b = nl.constant(NetType::kQ16, q16_raw(1.0));
  const NetId bit = nl.cmp_le(a, b);
  EXPECT_EQ(nl.node(bit).type, NetType::kBit);
  // A bit net is not a valid compare operand.
  EXPECT_THROW((void)nl.cmp_gt(bit, b), PreconditionError);
  // Dangling operand ids are rejected.
  EXPECT_THROW((void)nl.cmp_le(a, static_cast<NetId>(99)), PreconditionError);
}

TEST(NetlistBuilder, MuxRequiresBitSelectAndMatchingArms) {
  Netlist nl = tiny();
  const NetId a = nl.input(0);
  const NetId t = nl.constant(NetType::kQ16, 0);
  const NetId sel = nl.cmp_gt(a, t);
  const NetId c0 = nl.class_constant(0);
  const NetId c1 = nl.class_constant(1);
  EXPECT_NO_THROW((void)nl.mux(sel, c1, c0));
  // Select must be a bit; arms must share a type.
  EXPECT_THROW((void)nl.mux(a, c1, c0), PreconditionError);
  EXPECT_THROW((void)nl.mux(sel, c1, a), PreconditionError);
}

TEST(NetlistBuilder, ClassConstantValidatesLabel) {
  Netlist nl = tiny();
  EXPECT_NO_THROW((void)nl.class_constant(1));
  EXPECT_THROW((void)nl.class_constant(2), PreconditionError);
}

TEST(NetlistBuilder, ArgmaxRejectsMoreScoresThanClasses) {
  Netlist nl(2, 3);
  std::vector<NetId> scores;
  for (int c = 0; c < 3; ++c)
    scores.push_back(nl.constant(NetType::kWide, c));
  EXPECT_NO_THROW((void)nl.argmax(scores));
  scores.push_back(nl.constant(NetType::kWide, 3));
  EXPECT_THROW((void)nl.argmax(scores), PreconditionError);
  EXPECT_THROW((void)nl.argmax({}), PreconditionError);
}

TEST(NetlistBuilder, OutputRequiresClassNetExactlyOnce) {
  Netlist nl = tiny();
  EXPECT_FALSE(nl.has_output());
  EXPECT_THROW((void)nl.output(), PreconditionError);
  const NetId score = nl.input(0);
  EXPECT_THROW(nl.set_output(score), PreconditionError);  // not kClass
  const NetId cls = nl.class_constant(0);
  nl.set_output(cls);
  EXPECT_TRUE(nl.has_output());
  EXPECT_THROW(nl.set_output(cls), PreconditionError);  // only once
}

TEST(NetlistBuilder, LutRomValidatesTableAndAddress) {
  Netlist nl = tiny();
  const NetId addr = nl.input(0);
  LutRom rom;
  rom.values.assign(256, 0);
  const std::uint32_t table = nl.add_lut(std::move(rom));
  const NetId out = nl.lut_rom(table, addr);
  EXPECT_EQ(nl.node(out).type, NetType::kWide);
  EXPECT_THROW((void)nl.lut_rom(table + 1, addr), PreconditionError);
  // ROM sizes must be a non-empty power of two (addressable by shift).
  LutRom bad;
  bad.values.assign(100, 0);
  EXPECT_THROW((void)nl.add_lut(std::move(bad)), PreconditionError);
}

TEST(NetlistBuilder, ClassBitsIsCeilLog2) {
  EXPECT_EQ(Netlist(1, 2).class_bits(), 1u);
  EXPECT_EQ(Netlist(1, 3).class_bits(), 2u);
  EXPECT_EQ(Netlist(1, 4).class_bits(), 2u);
  EXPECT_EQ(Netlist(1, 5).class_bits(), 3u);
}

// ---------------------------------------------------------------------------
// Cost / latency annotations.

TEST(NetlistCost, ReductionsPriceNMinusOneStagesAtLogDepth) {
  Netlist nl(1, 4);
  std::vector<NetId> scores;
  for (int c = 0; c < 4; ++c)
    scores.push_back(nl.constant(NetType::kWide, c));
  const NetId amax = nl.argmax(scores);
  const ResourceCost cost = nl.node_cost(amax);
  const ResourceCost one_stage = hw_op_cost(HwOp::kArgmaxStage);
  EXPECT_EQ(cost.luts, 3 * one_stage.luts);  // n-1 stages
  // Balanced tree: ceil(log2 4) = 2 levels of argmax stages.
  EXPECT_EQ(nl.node_latency(amax), 2u * hw_op_latency(HwOp::kArgmaxStage));
}

TEST(NetlistCost, TotalsSumTheInstantiatedNets) {
  Netlist nl = tiny();
  const NetId a = nl.input(0);
  const NetId t = nl.constant(NetType::kQ16, q16_raw(0.5));
  const NetId sel = nl.cmp_le(a, t);
  const NetId decision = nl.mux(sel, nl.class_constant(0),
                                nl.class_constant(1));
  nl.set_output(decision);
  const ResourceCost total = nl.total_resources();
  EXPECT_GT(total.luts + total.ffs, 0u);
  EXPECT_GT(nl.total_energy_pj(), 0.0);
  EXPECT_EQ(nl.count_ops(NetOp::kMux), 1u);
  EXPECT_EQ(nl.count_ops(NetOp::kCmpLe), 1u);
}

}  // namespace
}  // namespace hmd::hw
