#include "hw/compile.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hw/fixed_point_eval.hpp"
#include "hw/lowering.hpp"
#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

TEST(Compile, SupportedSetAgreesWithTheRegistry) {
  // hw::compile_supported and ml::rtl_schemes() are two views of the same
  // contract; every scheme must land on the same side of both.
  const auto data = ml::testdata::separable_binary(60);
  for (const std::string& scheme : ml::known_schemes()) {
    auto clf = ml::make_classifier(scheme);
    clf->train(data);
    EXPECT_EQ(compile_supported(*clf), ml::is_rtl_scheme(scheme)) << scheme;
  }
}

TEST(Compile, TryCompileNamesTheUnsupportedScheme) {
  const auto data = ml::testdata::separable_binary(60);
  for (const std::string& scheme : {"ZeroR", "IBk", "AdaBoostM1"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(data);
    CompileOptions opts;
    opts.num_features = data.num_features();
    const auto result = try_compile(*clf, std::move(opts));
    ASSERT_FALSE(result.ok()) << scheme;
    EXPECT_EQ(result.error().code(), ErrCode::kPrecondition) << scheme;
    EXPECT_NE(result.error().message().find("no netlist lowering"),
              std::string::npos)
        << scheme << ": " << result.error().message();
  }
}

TEST(Compile, CompileThrowsWhereTryCompileReturns) {
  auto clf = ml::make_classifier("ZeroR");
  clf->train(ml::testdata::separable_binary(60));
  CompileOptions opts;
  opts.num_features = 4;
  EXPECT_THROW((void)compile(*clf, std::move(opts)), PreconditionError);
}

TEST(Compile, RejectsBadOptions) {
  const auto data = ml::testdata::separable_binary(60);
  auto clf = ml::make_classifier("J48");
  clf->train(data);
  {
    CompileOptions opts;  // num_features missing
    const auto result = try_compile(*clf, std::move(opts));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrCode::kPrecondition);
  }
  {
    CompileOptions opts;
    opts.num_features = data.num_features();
    opts.feature_absmax = {1.0};  // wrong arity for the port list
    EXPECT_FALSE(try_compile(*clf, std::move(opts)).ok());
  }
}

TEST(Compile, RejectsUntrainedModel) {
  auto clf = ml::make_classifier("MLR");
  CompileOptions opts;
  opts.num_features = 4;
  EXPECT_FALSE(try_compile(*clf, std::move(opts)).ok());
}

TEST(Compile, AllRtlSchemesLowerToAWellFormedNetlist) {
  const auto data = ml::testdata::three_class(60);
  for (const std::string& scheme : ml::rtl_schemes()) {
    SCOPED_TRACE(scheme);
    auto clf = ml::make_classifier(scheme);
    clf->train(data);
    CompileOptions opts;
    opts.num_features = data.num_features();
    const CompiledDesign design = compile(*clf, std::move(opts));
    EXPECT_EQ(design.scheme(), scheme);
    EXPECT_EQ(design.num_features(), data.num_features());
    EXPECT_EQ(design.num_classes(), data.num_classes());
    EXPECT_TRUE(design.netlist().has_output());
    EXPECT_GT(design.netlist().num_nodes(), 0u);
    EXPECT_EQ(design.feature_scales().size(), data.num_features());
  }
}

TEST(Compile, ModelDerivedAbsmaxIsDeterministic) {
  // The fpga serving tier compiles per shard; identical models must yield
  // identical grids or verdicts would depend on the shard count.
  const auto data = ml::testdata::separable_binary(80);
  auto clf = ml::make_classifier("SVM");
  clf->train(data);
  const auto a = model_feature_absmax(*clf, data.num_features());
  const auto b = model_feature_absmax(*clf, data.num_features());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), data.num_features());
  for (const double v : a) EXPECT_GT(v, 0.0);
}

TEST(Compile, ReportQuotesMeasuredNetlistNumbers) {
  const auto data = ml::testdata::separable_binary(80);
  auto clf = ml::make_classifier("MLR");
  clf->train(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.clock_mhz = 100.0;
  const CompiledDesign design = compile(*clf, std::move(opts));
  const SynthesisReport report = design.report();
  EXPECT_EQ(report.design_name, "MLR");
  const ResourceCost total = design.netlist().total_resources();
  EXPECT_EQ(report.resources.luts, total.luts);
  EXPECT_EQ(report.resources.dsps, total.dsps);
  EXPECT_GT(report.latency_cycles, 0u);
  EXPECT_GT(report.energy_per_inference_pj, 0.0);
  EXPECT_GT(report.static_power_mw + report.dynamic_power_mw, 0.0);
}

TEST(Compile, DeprecatedSynthesizeClassifierMatchesReport) {
  // synthesize_classifier() without an explicit allocation is now a thin
  // wrapper over compile().report() — the two surfaces must agree.
  const auto data = ml::testdata::separable_binary(80);
  auto clf = ml::make_classifier("J48");
  clf->train(data);
  const SynthesisReport via_legacy =
      synthesize_classifier(*clf, data.num_features());
  CompileOptions opts;
  opts.num_features = data.num_features();
  const SynthesisReport via_report = compile(*clf, std::move(opts)).report();
  EXPECT_EQ(via_legacy.resources.luts, via_report.resources.luts);
  EXPECT_EQ(via_legacy.latency_cycles, via_report.latency_cycles);
  EXPECT_DOUBLE_EQ(via_legacy.energy_per_inference_pj,
                   via_report.energy_per_inference_pj);
}

TEST(Compile, DatasetPinnedGridMatchesCalibration) {
  const auto data = ml::testdata::separable_binary(60);
  auto clf = ml::make_classifier("DecisionStump");
  clf->train(data);
  const std::vector<double> absmax = calibrate_feature_absmax(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.feature_absmax = absmax;
  const CompiledDesign design = compile(*clf, std::move(opts));
  ASSERT_EQ(design.feature_absmax(), absmax);
  for (std::size_t f = 0; f < absmax.size(); ++f)
    EXPECT_DOUBLE_EQ(design.feature_scales()[f], q16_input_scale(absmax[f]));
}

}  // namespace
}  // namespace hmd::hw
