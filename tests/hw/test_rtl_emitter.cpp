#include "hw/rtl_emitter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

using ml::testdata::separable_binary;
using ml::testdata::three_class;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

/// Structural sanity every emitted module must satisfy.
void expect_well_formed(const std::string& rtl, std::size_t num_features) {
  EXPECT_EQ(count_occurrences(rtl, "module "), 1u);
  EXPECT_EQ(count_occurrences(rtl, "endmodule"), 1u);
  // Every `begin` has an `end`; `endmodule` accounts for the extra one.
  EXPECT_EQ(count_occurrences(rtl, "begin") + 1u,
            count_occurrences(rtl, "end"));
  // All feature ports present.
  for (std::size_t f = 0; f < num_features; ++f)
    EXPECT_NE(rtl.find("input  wire signed [31:0] f" + std::to_string(f)),
              std::string::npos)
        << "missing port f" << f;
  EXPECT_NE(rtl.find("class_out"), std::string::npos);
  EXPECT_NE(rtl.find("valid_out"), std::string::npos);
  EXPECT_NE(rtl.find("always @(posedge clk)"), std::string::npos);
}

TEST(RtlEmitter, StumpGoldenDecisionLine) {
  // Hand-built problem with a known split: signal feature 1 at ~2.5.
  const auto d = ml::testdata::single_feature_rule(300);
  ml::DecisionStump stump;
  stump.train(d);
  const std::string rtl = emit_verilog(stump, 2, "stump_detector");
  expect_well_formed(rtl, 2);
  // The decision references the learned split feature and a Q16.16 bound.
  EXPECT_NE(rtl.find("assign decision = (f1 <= 32'sd"), std::string::npos)
      << rtl;
}

TEST(RtlEmitter, OneRChainsIntervals) {
  const auto d = separable_binary();
  ml::OneR oner;
  oner.train(d);
  const std::string rtl = emit_verilog(oner, d.num_features(), "oner_det");
  expect_well_formed(rtl, d.num_features());
  // One comparator per internal interval boundary (the non-blocking `<=`
  // assignments in the output stage don't reference feature ports).
  const std::string cmp =
      "(f" + std::to_string(oner.chosen_feature()) + " <= ";
  EXPECT_EQ(count_occurrences(rtl, cmp), oner.intervals().size() - 1);
}

TEST(RtlEmitter, J48EmitsOneIfPerInternalNode) {
  const auto d = separable_binary();
  ml::J48 tree;
  tree.train(d);
  const std::string rtl = emit_verilog(tree, d.num_features(), "j48_det");
  expect_well_formed(rtl, d.num_features());
  const std::size_t internal = tree.num_nodes() - tree.num_leaves();
  EXPECT_EQ(count_occurrences(rtl, "if (f["), internal);
  EXPECT_EQ(count_occurrences(rtl, "decide_tree = "), tree.num_leaves());
}

TEST(RtlEmitter, JRipEmitsOneWirePerRule) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  const std::string rtl = emit_verilog(rip, d.num_features(), "jrip_det");
  expect_well_formed(rtl, d.num_features());
  for (std::size_t r = 0; r < rip.rules().size(); ++r)
    EXPECT_NE(rtl.find("wire rule" + std::to_string(r) + " ="),
              std::string::npos);
}

TEST(RtlEmitter, LinearBinaryUsesSignComparison) {
  const auto d = separable_binary();
  ml::LinearSvm svm;
  svm.train(d);
  const std::string rtl = emit_verilog(svm, d.num_features(), "svm_det");
  expect_well_formed(rtl, d.num_features());
  EXPECT_NE(rtl.find("score0"), std::string::npos);
  EXPECT_NE(rtl.find("score1"), std::string::npos);
  EXPECT_NE(rtl.find("(score1 > score0)"), std::string::npos);
  // One MAC term per feature per class.
  EXPECT_EQ(count_occurrences(rtl, ">>> 16"), 2 * d.num_features());
}

TEST(RtlEmitter, MulticlassLinearEmitsArgmax) {
  const auto d = three_class();
  ml::Logistic mlr;
  mlr.train(d);
  const std::string rtl = emit_verilog(mlr, d.num_features(), "mlr_det");
  expect_well_formed(rtl, d.num_features());
  EXPECT_NE(rtl.find("score2"), std::string::npos);
  EXPECT_NE(rtl.find("best_idx"), std::string::npos);
  // 3 classes need 2 selector bits.
  EXPECT_NE(rtl.find("output reg  [1:0] class_out"), std::string::npos);
}

TEST(RtlEmitter, DispatchCoversSupportedSchemes) {
  const auto d = separable_binary();
  for (const auto& scheme : {"OneR", "DecisionStump", "J48", "JRip", "MLR",
                             "SVM"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    const std::string rtl =
        emit_verilog(*clf, d.num_features(), "det");
    EXPECT_GT(rtl.size(), 200u) << scheme;
  }
}

TEST(RtlEmitter, UnsupportedSchemesThrow) {
  const auto d = separable_binary();
  for (const auto& scheme : {"MLP", "NaiveBayes", "ZeroR"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    EXPECT_THROW((void)emit_verilog(*clf, d.num_features(), "det"),
                 hmd::PreconditionError)
        << scheme;
  }
}

TEST(RtlEmitter, FeatureBeyondPortsThrows) {
  const auto d = separable_binary();  // 4 features
  ml::DecisionStump stump;
  stump.train(d);
  if (stump.split_feature() > 0)
    EXPECT_THROW(
        (void)emit_verilog(stump, stump.split_feature(), "det"),
        hmd::PreconditionError);
}

TEST(RtlEmitter, ModuleNameHonored) {
  const auto d = separable_binary();
  ml::DecisionStump stump;
  stump.train(d);
  const std::string rtl = emit_verilog(stump, 4, "my_special_detector");
  EXPECT_NE(rtl.find("module my_special_detector ("), std::string::npos);
}

TEST(RtlTestbench, SelfCheckingStructure) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  const std::string tb = emit_verilog_testbench(rip, d, 10, "jrip_det");
  EXPECT_NE(tb.find("module jrip_det_tb;"), std::string::npos);
  EXPECT_NE(tb.find("jrip_det dut ("), std::string::npos);
  EXPECT_EQ(count_occurrences(tb, "check("), 10u);  // one call per vector
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
}

TEST(RtlTestbench, ExpectedValuesMatchModelPredictions) {
  const auto d = separable_binary();
  ml::DecisionStump stump;
  stump.train(d);
  const std::string tb = emit_verilog_testbench(stump, d, 5, "det");
  // Every check() argument equals the C++ model's prediction.
  for (std::size_t v = 0; v < 5; ++v) {
    const std::string expected =
        "check(1'd" + std::to_string(stump.predict(d.features_of(v))) + ")";
    EXPECT_NE(tb.find(expected), std::string::npos) << expected;
  }
}

TEST(RtlTestbench, ClampsVectorCountToTestSet) {
  const auto d = separable_binary(3);  // 6 rows total
  ml::DecisionStump stump;
  stump.train(d);
  const std::string tb = emit_verilog_testbench(stump, d, 1000, "det");
  EXPECT_EQ(count_occurrences(tb, "check("), d.num_instances());
}

TEST(RtlEmitter, DeterministicOutput) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  EXPECT_EQ(emit_verilog(rip, 4, "a"), emit_verilog(rip, 4, "a"));
}

}  // namespace
}  // namespace hmd::hw
