// The deprecated emit_verilog() wrappers and the VerilogBackend they now
// route through. Goldens are FNV-1a fingerprints of the full emitted text
// per scheme — when an intentional emission change trips one, re-pin it
// with the new value the failure message prints.
#include "hw/rtl_emitter.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "hw/backend.hpp"
#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "hw/verilog_backend.hpp"
#include "ml/decision_stump.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/registry.hpp"
#include "ml/svm.hpp"
#include "tests/hw/rtl_fingerprint.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

using ml::testdata::separable_binary;
using ml::testdata::three_class;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

/// Structural sanity every emitted module must satisfy.
void expect_well_formed(const std::string& rtl, std::size_t num_features) {
  EXPECT_EQ(count_occurrences(rtl, "module "), 1u);
  EXPECT_EQ(count_occurrences(rtl, "endmodule"), 1u);
  // Every `begin` has an `end`; `endmodule` accounts for the extra one.
  EXPECT_EQ(count_occurrences(rtl, "begin") + 1u,
            count_occurrences(rtl, "end"));
  for (std::size_t f = 0; f < num_features; ++f)
    EXPECT_NE(rtl.find("input  wire signed [31:0] f" + std::to_string(f)),
              std::string::npos)
        << "missing port f" << f;
  EXPECT_NE(rtl.find("class_out"), std::string::npos);
  EXPECT_NE(rtl.find("valid_out"), std::string::npos);
  EXPECT_NE(rtl.find("always @(posedge clk)"), std::string::npos);
}

/// Deterministic per-scheme module for the golden tests: binary schemes
/// train on separable_binary(), multiclass-capable ones on three_class().
std::string golden_rtl(const std::string& scheme) {
  const auto data = scheme == "MLR" || scheme == "SVM" || scheme == "MLP" ||
                            scheme == "NaiveBayes"
                        ? three_class()
                        : separable_binary();
  auto clf = ml::make_classifier(scheme);
  clf->train(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.module_name = "golden_det";
  return compile(*clf, std::move(opts)).emit(VerilogBackend());
}

TEST(RtlEmitter, GoldenFingerprintsPerScheme) {
  const std::map<std::string, std::uint64_t> expected = {
      {"OneR", 0x05193953195e23f8ull},
      {"DecisionStump", 0xfaea3a0dd8d6dfa6ull},
      {"J48", 0xd70b9314b52e011aull},
      {"JRip", 0x890b4574dc6f9afdull},
      {"NaiveBayes", 0x5253cb59bdd65568ull},
      {"MLR", 0x46602253249d643dull},
      {"SVM", 0x8a250bf499b34a8dull},
      {"MLP", 0xcbfa95b2b486bccfull},
  };
  for (const std::string& scheme : ml::rtl_schemes()) {
    ASSERT_TRUE(expected.count(scheme)) << "unpinned scheme " << scheme;
    const std::uint64_t got = testutil::fnv1a(golden_rtl(scheme));
    EXPECT_EQ(got, expected.at(scheme))
        << scheme << ": re-pin with 0x" << std::hex << got << "ull";
  }
}

TEST(RtlEmitter, AllRtlSchemesEmitWellFormedModules) {
  const auto d = three_class();
  for (const std::string& scheme : ml::rtl_schemes()) {
    SCOPED_TRACE(scheme);
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    const std::string rtl = emit_verilog(*clf, d.num_features(), "det");
    expect_well_formed(rtl, d.num_features());
    EXPECT_NE(rtl.find("// Scheme: " + scheme), std::string::npos);
  }
}

TEST(RtlEmitter, DeprecatedOverloadsMatchThePipeline) {
  // The thin wrappers must be byte-identical to compile().emit(Verilog).
  const auto d = separable_binary();
  ml::J48 tree;
  tree.train(d);
  CompileOptions opts;
  opts.num_features = d.num_features();
  opts.module_name = "j48_det";
  EXPECT_EQ(emit_verilog(tree, d.num_features(), "j48_det"),
            compile(tree, std::move(opts)).emit(VerilogBackend()));
}

TEST(RtlEmitter, StumpComparesTheLearnedSplit) {
  const auto d = ml::testdata::single_feature_rule(300);
  ml::DecisionStump stump;
  stump.train(d);
  const std::string rtl = emit_verilog(stump, 2, "stump_detector");
  expect_well_formed(rtl, 2);
  // The split feature's port feeds a comparator somewhere in the netlist.
  EXPECT_GE(count_occurrences(rtl, " <= "), 1u);
  EXPECT_NE(rtl.find("f" + std::to_string(stump.split_feature()) + "[31]"),
            std::string::npos);
}

TEST(RtlEmitter, JRipEmitsOneConjunctionPerMultiConditionRule) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  const std::string rtl = emit_verilog(rip, d.num_features(), "jrip_det");
  expect_well_formed(rtl, d.num_features());
  // An n-condition conjunction renders as n-1 "&&" joins.
  std::size_t joins = 0;
  for (const auto& rule : rip.rules())
    if (rule.conditions.size() > 1) joins += rule.conditions.size() - 1;
  EXPECT_EQ(count_occurrences(rtl, " && "), joins);
}

TEST(RtlEmitter, MulticlassEmitsArgmaxChain) {
  const auto d = three_class();
  auto mlr = ml::make_classifier("MLR");
  mlr->train(d);
  const std::string rtl = emit_verilog(*mlr, d.num_features(), "mlr_det");
  expect_well_formed(rtl, d.num_features());
  EXPECT_NE(rtl.find("argmax chain"), std::string::npos);
  // 3 classes need 2 selector bits.
  EXPECT_NE(rtl.find("output reg  [1:0] class_out"), std::string::npos);
}

TEST(RtlEmitter, LutSchemesEmitRoms) {
  const auto d = three_class();
  auto nb = ml::make_classifier("NaiveBayes");
  nb->train(d);
  const std::string nb_rtl = emit_verilog(*nb, d.num_features(), "nb_det");
  EXPECT_NE(nb_rtl.find("Gaussian ROM"), std::string::npos);
  auto mlp = ml::make_classifier("MLP");
  mlp->train(d);
  const std::string mlp_rtl = emit_verilog(*mlp, d.num_features(), "mlp_det");
  EXPECT_NE(mlp_rtl.find("sigmoid ROM"), std::string::npos);
}

TEST(RtlEmitter, UnsupportedSchemesThrow) {
  const auto d = separable_binary();
  for (const auto& scheme : {"ZeroR", "IBk", "Bagging"}) {
    auto clf = ml::make_classifier(scheme);
    clf->train(d);
    EXPECT_THROW((void)emit_verilog(*clf, d.num_features(), "det"),
                 hmd::PreconditionError)
        << scheme;
  }
}

TEST(RtlEmitter, FeatureBeyondPortsThrows) {
  const auto d = separable_binary();  // 4 features
  ml::DecisionStump stump;
  stump.train(d);
  if (stump.split_feature() > 0)
    EXPECT_THROW(
        (void)emit_verilog(stump, stump.split_feature(), "det"),
        hmd::PreconditionError);
}

TEST(RtlEmitter, ModuleNameHonored) {
  const auto d = separable_binary();
  ml::DecisionStump stump;
  stump.train(d);
  const std::string rtl = emit_verilog(stump, 4, "my_special_detector");
  EXPECT_NE(rtl.find("module my_special_detector ("), std::string::npos);
}

TEST(RtlEmitter, DeterministicOutput) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  EXPECT_EQ(emit_verilog(rip, 4, "a"), emit_verilog(rip, 4, "a"));
}

TEST(RtlTestbench, SelfCheckingStructure) {
  const auto d = separable_binary();
  ml::JRip rip;
  rip.train(d);
  const std::string tb = emit_verilog_testbench(rip, d, 10, "jrip_det");
  EXPECT_NE(tb.find("module jrip_det_tb;"), std::string::npos);
  EXPECT_NE(tb.find("jrip_det dut ("), std::string::npos);
  EXPECT_EQ(count_occurrences(tb, "check("), 10u);  // one call per vector
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
}

TEST(RtlTestbench, ExpectedValuesMatchSimulatorDecisions) {
  const auto d = separable_binary();
  ml::DecisionStump stump;
  stump.train(d);
  const std::string tb = emit_verilog_testbench(stump, d, 5, "det");
  // Expected classes are the netlist simulator's decisions on the
  // dataset-calibrated grid — for an exact scheme that is also the C++
  // model's prediction over the quantized features.
  CompileOptions opts;
  opts.num_features = d.num_features();
  opts.module_name = "det";
  opts.feature_absmax = calibrate_feature_absmax(d);
  const CompiledDesign design = compile(stump, std::move(opts));
  const auto vectors = testbench_vectors(design, d, 5);
  ASSERT_EQ(vectors.size(), 5u);
  for (const TestVector& v : vectors) {
    const std::string expected =
        "check(1'd" + std::to_string(v.expected) + ")";
    EXPECT_NE(tb.find(expected), std::string::npos) << expected;
  }
}

TEST(RtlTestbench, ClampsVectorCountToTestSet) {
  const auto d = separable_binary(3);  // 6 rows total
  ml::DecisionStump stump;
  stump.train(d);
  const std::string tb = emit_verilog_testbench(stump, d, 1000, "det");
  EXPECT_EQ(count_occurrences(tb, "check("), d.num_instances());
}

}  // namespace
}  // namespace hmd::hw
