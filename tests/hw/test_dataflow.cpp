#include "hw/dataflow.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::hw {
namespace {

TEST(Dataflow, InputsAreFree) {
  DataflowGraph g;
  g.add_input();
  g.add_input();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_ops(), 0u);
  EXPECT_EQ(g.total_resources().luts, 0u);
  EXPECT_EQ(g.schedule_asap().latency_cycles, 0u);
}

TEST(Dataflow, SingleOpLatency) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  g.add_node(HwOp::kMul, {in});
  EXPECT_EQ(g.schedule_asap().latency_cycles, hw_op_latency(HwOp::kMul));
}

TEST(Dataflow, ChainLatencyIsSum) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  const NodeId m = g.add_node(HwOp::kMul, {in});    // 3 cycles
  const NodeId a = g.add_node(HwOp::kAdd, {m});     // 1 cycle
  g.add_node(HwOp::kCompare, {a});                  // 1 cycle
  EXPECT_EQ(g.schedule_asap().latency_cycles, 5u);
}

TEST(Dataflow, ParallelOpsShareCriticalPath) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  std::vector<NodeId> muls;
  for (int i = 0; i < 16; ++i) muls.push_back(g.add_node(HwOp::kMul, {in}));
  // 16 parallel multiplies: still just one mul latency.
  EXPECT_EQ(g.schedule_asap().latency_cycles, hw_op_latency(HwOp::kMul));
  EXPECT_EQ(g.count_ops(HwOp::kMul), 16u);
}

TEST(Dataflow, ResourcesSumOverOps) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  g.add_node(HwOp::kMul, {in});
  g.add_node(HwOp::kMul, {in});
  g.add_node(HwOp::kAdd, {in});
  const ResourceCost total = g.total_resources();
  EXPECT_EQ(total.dsps, 2 * hw_op_cost(HwOp::kMul).dsps);
  EXPECT_EQ(total.luts,
            2 * hw_op_cost(HwOp::kMul).luts + hw_op_cost(HwOp::kAdd).luts);
}

TEST(Dataflow, EnergySumsOverOps) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  g.add_node(HwOp::kMul, {in});
  g.add_node(HwOp::kAdd, {in});
  EXPECT_DOUBLE_EQ(
      g.total_energy_pj(),
      hw_op_energy_pj(HwOp::kMul) + hw_op_energy_pj(HwOp::kAdd));
}

TEST(Dataflow, UnknownDependencyThrows) {
  DataflowGraph g;
  EXPECT_THROW(g.add_node(HwOp::kAdd, {42}), hmd::PreconditionError);
}

TEST(Dataflow, ConstrainedScheduleNoWorseThanSerial) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  for (int i = 0; i < 8; ++i) g.add_node(HwOp::kMul, {in});
  const auto unconstrained = g.schedule_asap();
  OperatorAllocation alloc{.multipliers = 1};
  const auto constrained = g.schedule_constrained(alloc);
  // One multiplier for 8 ops: roughly serialized.
  EXPECT_GE(constrained.latency_cycles,
            8 * hw_op_latency(HwOp::kMul));
  EXPECT_GT(constrained.latency_cycles, unconstrained.latency_cycles);
}

TEST(Dataflow, MoreOperatorsReduceLatency) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  std::vector<NodeId> muls;
  for (int i = 0; i < 12; ++i) muls.push_back(g.add_node(HwOp::kMul, {in}));
  const auto one = g.schedule_constrained({.multipliers = 1});
  const auto four = g.schedule_constrained({.multipliers = 4});
  const auto twelve = g.schedule_constrained({.multipliers = 12});
  EXPECT_GT(one.latency_cycles, four.latency_cycles);
  EXPECT_GE(four.latency_cycles, twelve.latency_cycles);
  EXPECT_EQ(twelve.latency_cycles, g.schedule_asap().latency_cycles);
}

TEST(Dataflow, ConstrainedRespectsDependencies) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  const NodeId m1 = g.add_node(HwOp::kMul, {in});
  const NodeId m2 = g.add_node(HwOp::kMul, {m1});
  const auto sched = g.schedule_constrained({.multipliers = 2});
  EXPECT_GE(sched.start_cycle[m2],
            sched.start_cycle[m1] + hw_op_latency(HwOp::kMul));
}

TEST(Dataflow, UnlimitedPoolsMatchAsap) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  const NodeId m = g.add_node(HwOp::kMul, {in});
  const NodeId s = g.add_node(HwOp::kSigmoidLut, {m});
  g.add_node(HwOp::kAdd, {s});
  const auto asap = g.schedule_asap();
  const auto constrained = g.schedule_constrained({});
  EXPECT_EQ(asap.latency_cycles, constrained.latency_cycles);
}

TEST(Dataflow, ZeroAllocationThrows) {
  DataflowGraph g;
  const NodeId in = g.add_input();
  g.add_node(HwOp::kMul, {in});
  EXPECT_THROW((void)g.schedule_constrained({.multipliers = 0}),
               hmd::PreconditionError);
}

}  // namespace
}  // namespace hmd::hw
