#include "hw/resource.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hmd::hw {
namespace {

TEST(ResourceCost, AdditionAccumulates) {
  ResourceCost a{.luts = 10, .ffs = 20, .dsps = 1, .brams = 0};
  ResourceCost b{.luts = 5, .ffs = 5, .dsps = 2, .brams = 1};
  a += b;
  EXPECT_EQ(a.luts, 15u);
  EXPECT_EQ(a.ffs, 25u);
  EXPECT_EQ(a.dsps, 3u);
  EXPECT_EQ(a.brams, 1u);
}

TEST(ResourceCost, ScalingMultiplies) {
  const ResourceCost c = ResourceCost{.luts = 3, .ffs = 2}.scaled(4);
  EXPECT_EQ(c.luts, 12u);
  EXPECT_EQ(c.ffs, 8u);
}

TEST(ResourceCost, SliceEquivalentWeighsDspsAndBrams) {
  const ResourceCost logic{.luts = 400, .ffs = 0};
  const ResourceCost dsp{.luts = 0, .ffs = 0, .dsps = 2};
  const ResourceCost bram{.luts = 0, .ffs = 0, .dsps = 0, .brams = 1};
  EXPECT_DOUBLE_EQ(logic.equivalent_slices(), 100.0);
  EXPECT_DOUBLE_EQ(dsp.equivalent_slices(), 100.0);
  EXPECT_DOUBLE_EQ(bram.equivalent_slices(), 100.0);
}

TEST(ResourceCost, SliceEquivalentUsesMaxOfLutFf) {
  const ResourceCost ff_heavy{.luts = 4, .ffs = 80};
  EXPECT_DOUBLE_EQ(ff_heavy.equivalent_slices(), 10.0);
}

TEST(OpTable, AllOpsHaveNamesAndCosts) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(HwOp::kCount); ++i) {
    const auto op = static_cast<HwOp>(i);
    EXPECT_FALSE(hw_op_name(op).empty());
    EXPECT_GE(hw_op_energy_pj(op), 0.0);
  }
}

TEST(OpTable, MultiplierIsDspMapped) {
  EXPECT_GT(hw_op_cost(HwOp::kMul).dsps, 0u);
  EXPECT_GT(hw_op_cost(HwOp::kMac).dsps, 0u);
  EXPECT_EQ(hw_op_cost(HwOp::kCompare).dsps, 0u);
}

TEST(OpTable, LutOpsAreBramBacked) {
  EXPECT_GT(hw_op_cost(HwOp::kSigmoidLut).brams, 0u);
  EXPECT_GT(hw_op_cost(HwOp::kGaussianLut).brams, 0u);
}

TEST(OpTable, MultiplierCostsMoreThanComparator) {
  EXPECT_GT(hw_op_cost(HwOp::kMul).equivalent_slices(),
            hw_op_cost(HwOp::kCompare).equivalent_slices() * 10);
  EXPECT_GT(hw_op_latency(HwOp::kMul), hw_op_latency(HwOp::kCompare));
  EXPECT_GT(hw_op_energy_pj(HwOp::kMul), hw_op_energy_pj(HwOp::kCompare));
}

TEST(OpTable, MuxIsOneRegisteredCycle) {
  // Selection chains (trees, rule lists) are pipelined one level per cycle,
  // so decision depth translates into latency.
  EXPECT_EQ(hw_op_latency(HwOp::kMux2), 1u);
}

}  // namespace
}  // namespace hmd::hw
