#include "hw/netlist_sim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "ml/quantized.hpp"
#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::hw {
namespace {

/// Non-owning shared_ptr over a stack classifier (aliasing-ctor idiom).
std::shared_ptr<const ml::Classifier> borrow(const ml::Classifier& clf) {
  return {std::shared_ptr<void>(), &clf};
}

/// The acceptance gate: for every instance of `data` the simulator's class
/// decision must be bit-identical to (a) the q16 serving tier / fixed-point
/// reference (ml::QuantizedModel kQ16Input over the same calibration —
/// exactly what hw::evaluate_fixed_point scores with) and (b) the C++
/// model's own predict() over the explicitly quantized feature vector.
void expect_three_way_identity(const std::string& scheme,
                               const ml::Dataset& data) {
  auto clf = ml::make_classifier(scheme);
  clf->train(data);

  const std::vector<double> absmax = calibrate_feature_absmax(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.feature_absmax = absmax;
  const CompiledDesign design = compile(*clf, std::move(opts));
  NetlistSimulator sim(design);

  const ml::QuantizedModel q16(borrow(*clf),
                               ml::QuantizedModel::Mode::kQ16Input, absmax);
  const std::vector<double>& scales = design.feature_scales();
  ASSERT_EQ(scales.size(), data.num_features()) << scheme;

  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    const auto row = data.features_of(i);
    std::vector<double> quantized(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
      quantized[f] = quantize_input(row[f], scales[f]);

    const std::size_t sim_pred = sim.run(row);
    const std::size_t q16_pred = q16.predict(row);
    const std::size_t model_pred = clf->predict(quantized);
    ASSERT_EQ(sim_pred, q16_pred)
        << scheme << ": simulator vs fixed-point reference, instance " << i;
    ASSERT_EQ(sim_pred, model_pred)
        << scheme << ": simulator vs model-on-quantized-grid, instance " << i;
  }
}

TEST(NetlistSim, ExactSchemesBitIdenticalOnBinaryData) {
  for (const std::string& scheme : ml::rtl_exact_schemes()) {
    SCOPED_TRACE(scheme);
    for (const std::uint64_t seed : {5u, 21u, 47u})
      expect_three_way_identity(scheme,
                                ml::testdata::separable_binary(80, seed));
  }
}

TEST(NetlistSim, ExactSchemesBitIdenticalOnOverlappingData) {
  // Overlapping classes put instances near the decision surface — the
  // regime where a mis-rounded threshold or weight would flip a decision.
  for (const std::string& scheme : ml::rtl_exact_schemes()) {
    SCOPED_TRACE(scheme);
    for (const std::uint64_t seed : {6u, 33u})
      expect_three_way_identity(scheme,
                                ml::testdata::overlapping_binary(120, seed));
  }
}

TEST(NetlistSim, ExactSchemesBitIdenticalOnMulticlassData) {
  for (const std::string& scheme : ml::rtl_exact_schemes()) {
    SCOPED_TRACE(scheme);
    for (const std::uint64_t seed : {8u, 91u})
      expect_three_way_identity(scheme, ml::testdata::three_class(60, seed));
  }
}

TEST(NetlistSim, ExactSchemesBitIdenticalOnLargeMagnitudeFeatures) {
  // HPC counter values reach 1e6+; the input grid's pre-scale must keep
  // the compiled thresholds and the float reference on the same grid.
  std::vector<ml::Attribute> attrs;
  attrs.emplace_back("big");
  attrs.emplace_back("small");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  ml::Dataset d(std::move(attrs));
  Rng rng(13);
  for (int i = 0; i < 160; ++i) {
    const bool hi = i % 2 == 1;
    d.add({{(hi ? 5e6 : 1e6) + rng.normal(0.0, 1e5), rng.normal(0.0, 1e-3),
            hi ? 1.0 : 0.0}});
  }
  for (const std::string& scheme : ml::rtl_exact_schemes()) {
    SCOPED_TRACE(scheme);
    expect_three_way_identity(scheme, d);
  }
}

TEST(NetlistSim, LutSchemesTrackTheFloatModel) {
  // NaiveBayes / MLP lower through LUT-ROMs: faithful up to the ROM
  // quantization step, so decisions agree with the float model on nearly
  // every instance of a well-separated problem (measured, not bit-gated).
  const auto data = ml::testdata::three_class(80);
  const std::vector<double> absmax = calibrate_feature_absmax(data);
  for (const std::string& scheme : {"NaiveBayes", "MLP"}) {
    SCOPED_TRACE(scheme);
    auto clf = ml::make_classifier(scheme);
    clf->train(data);
    CompileOptions opts;
    opts.num_features = data.num_features();
    opts.feature_absmax = absmax;
    const CompiledDesign design = compile(*clf, std::move(opts));
    NetlistSimulator sim(design);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < data.num_instances(); ++i)
      if (sim.run(data.features_of(i)) == clf->predict(data.features_of(i)))
        ++agree;
    const double rate =
        static_cast<double>(agree) /
        static_cast<double>(data.num_instances());
    EXPECT_GT(rate, 0.97) << scheme;
  }
}

TEST(NetlistSim, CyclesPerWindowIsPositiveAndSchemeDependent) {
  const auto data = ml::testdata::separable_binary(80);
  CompileOptions stump_opts;
  stump_opts.num_features = data.num_features();
  auto stump = ml::make_classifier("DecisionStump");
  stump->train(data);
  const CompiledDesign stump_design = compile(*stump, std::move(stump_opts));
  NetlistSimulator stump_sim(stump_design);
  EXPECT_GT(stump_sim.cycles_per_window(), 0u);

  CompileOptions mlr_opts;
  mlr_opts.num_features = data.num_features();
  auto mlr = ml::make_classifier("MLR");
  mlr->train(data);
  const CompiledDesign mlr_design = compile(*mlr, std::move(mlr_opts));
  NetlistSimulator mlr_sim(mlr_design);
  // A linear model's adder tree + multipliers run deeper than one compare.
  EXPECT_GT(mlr_sim.cycles_per_window(), stump_sim.cycles_per_window());
}

TEST(NetlistSim, WindowsPerSecondScalesWithClock) {
  const auto data = ml::testdata::separable_binary(60);
  auto clf = ml::make_classifier("J48");
  clf->train(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  const CompiledDesign design = compile(*clf, std::move(opts));
  NetlistSimulator sim(design);
  EXPECT_DOUBLE_EQ(sim.windows_per_second(200.0),
                   2.0 * sim.windows_per_second(100.0));
  EXPECT_GT(sim.windows_per_second(100.0), 0.0);
}

TEST(NetlistSim, RunRawMatchesRunOnTheQuantizedGrid) {
  const auto data = ml::testdata::single_feature_rule();
  auto clf = ml::make_classifier("OneR");
  clf->train(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  opts.feature_absmax = calibrate_feature_absmax(data);
  const CompiledDesign design = compile(*clf, std::move(opts));
  NetlistSimulator sim(design);
  const std::vector<double>& scales = design.feature_scales();
  for (std::size_t i = 0; i < 50; ++i) {
    const auto row = data.features_of(i);
    std::vector<std::int64_t> raws(row.size());
    for (std::size_t f = 0; f < row.size(); ++f)
      raws[f] = quantize_input_raw(row[f], scales[f]);
    EXPECT_EQ(sim.run_raw(raws), sim.run(row)) << "instance " << i;
  }
}

TEST(NetlistSim, RejectsShortFeatureVector) {
  const auto data = ml::testdata::separable_binary(60);
  auto clf = ml::make_classifier("SVM");
  clf->train(data);
  CompileOptions opts;
  opts.num_features = data.num_features();
  const CompiledDesign design = compile(*clf, std::move(opts));
  NetlistSimulator sim(design);
  const std::vector<double> short_row(data.num_features() - 1, 0.0);
  EXPECT_THROW((void)sim.run(short_row), PreconditionError);
}

}  // namespace
}  // namespace hmd::hw
