// Tests for the extension modules: cross-validation, ensembles (AdaBoost,
// Bagging), the Mahalanobis anomaly detector, and Matrix::inverse.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/anomaly.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_stump.hpp"
#include "ml/ensemble.hpp"
#include "ml/evaluation.hpp"
#include "ml/j48.hpp"
#include "ml/matrix.hpp"
#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

// ---------------------------------------------------------------- inverse

TEST(MatrixInverse, IdentityIsItsOwnInverse) {
  const Matrix i3 = Matrix::identity(3);
  const Matrix inv = i3.inverse();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(inv(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(MatrixInverse, KnownTwoByTwo) {
  Matrix m(2, 2);
  m(0, 0) = 4; m(0, 1) = 7; m(1, 0) = 2; m(1, 1) = 6;
  const Matrix inv = m.inverse();
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(MatrixInverse, ProductIsIdentity) {
  Rng rng(7);
  const std::size_t n = 6;
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.normal();
  for (std::size_t d = 0; d < n; ++d) m(d, d) += 5.0;  // well-conditioned
  const Matrix prod = m * m.inverse();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(MatrixInverse, SingularThrows) {
  Matrix m(2, 2);
  m(0, 0) = 1; m(0, 1) = 2; m(1, 0) = 2; m(1, 1) = 4;
  EXPECT_THROW((void)m.inverse(), PreconditionError);
  EXPECT_THROW((void)Matrix(2, 3).inverse(), PreconditionError);
}

// ------------------------------------------------------- cross-validation

TEST(CrossValidation, PooledCoversEveryInstanceOnce) {
  const Dataset d = separable_binary(100);
  Rng rng(3);
  const auto result = cross_validate(
      [] { return make_classifier("OneR"); }, d, 5, rng);
  EXPECT_EQ(result.pooled.total(), d.num_instances());
  EXPECT_EQ(result.fold_accuracies.size(), 5u);
}

TEST(CrossValidation, AccurateOnSeparableData) {
  const Dataset d = separable_binary(150);
  Rng rng(5);
  const auto result = cross_validate(
      [] { return make_classifier("J48"); }, d, 10, rng);
  EXPECT_GT(result.pooled.accuracy(), 0.93);
  EXPECT_GT(result.mean_accuracy(), 0.9);
  EXPECT_LT(result.stddev_accuracy(), 0.15);
}

TEST(CrossValidation, MeanMatchesFoldAverage) {
  const Dataset d = overlapping_binary(200);
  Rng rng(9);
  const auto result = cross_validate(
      [] { return make_classifier("NaiveBayes"); }, d, 4, rng);
  double mean = 0.0;
  for (double a : result.fold_accuracies) mean += a;
  mean /= 4.0;
  EXPECT_NEAR(result.mean_accuracy(), mean, 1e-12);
}

TEST(CrossValidation, DeterministicInRngState) {
  const Dataset d = overlapping_binary(120);
  Rng a(11), b(11);
  const auto ra = cross_validate([] { return make_classifier("OneR"); },
                                 d, 3, a);
  const auto rb = cross_validate([] { return make_classifier("OneR"); },
                                 d, 3, b);
  EXPECT_EQ(ra.pooled.correct(), rb.pooled.correct());
}

TEST(CrossValidation, RejectsBadInput) {
  const Dataset d = separable_binary(20);
  Rng rng(1);
  EXPECT_THROW(cross_validate([] { return make_classifier("OneR"); },
                              d, 1, rng),
               PreconditionError);
  EXPECT_THROW(cross_validate([] { return make_classifier("OneR"); },
                              d, 1000, rng),
               PreconditionError);
}

// ---------------------------------------------------------------- boosting

/// A band problem one threshold cannot express: positive inside (-1, 1).
Dataset band_problem(std::size_t n, std::uint64_t seed) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("x");
  attrs.emplace_back("class", std::vector<std::string>{"out", "in"});
  Dataset d(std::move(attrs));
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    d.add({{x, (x > -1.0 && x < 1.0) ? 1.0 : 0.0}});
  }
  return d;
}

TEST(AdaBoost, BoostedStumpsCarveABand) {
  // A single threshold cannot express "inside (-1, 1)"; a boosted stump
  // committee can.
  const Dataset d = band_problem(600, 21);
  DecisionStump stump;
  stump.train(d);
  const double stump_acc = evaluate(stump, d).accuracy();

  AdaBoostM1 boost([] { return std::make_unique<DecisionStump>(); },
                   {.iterations = 40});
  boost.train(d);
  const double boost_acc = evaluate(boost, d).accuracy();
  EXPECT_LT(stump_acc, 0.9);
  EXPECT_GT(boost_acc, stump_acc + 0.05);
}

TEST(AdaBoost, CommitteeGrows) {
  const Dataset d = overlapping_binary(300);
  AdaBoostM1 boost([] { return std::make_unique<DecisionStump>(); },
                   {.iterations = 20});
  boost.train(d);
  EXPECT_GE(boost.committee_size(), 2u);
  EXPECT_EQ(boost.member_weights().size(), boost.committee_size());
  for (double alpha : boost.member_weights()) EXPECT_GT(alpha, 0.0);
}

TEST(AdaBoost, StopsEarlyOnPerfectMember) {
  const Dataset d = single_feature_rule(200);
  AdaBoostM1 boost([] { return std::make_unique<J48>(); },
                   {.iterations = 25});
  boost.train(d);
  // J48 nails this dataset immediately; the committee stays tiny.
  EXPECT_LE(boost.committee_size(), 3u);
  EXPECT_GT(evaluate(boost, d).accuracy(), 0.97);
}

TEST(AdaBoost, DistributionIsNormalized) {
  const Dataset d = three_class();
  AdaBoostM1 boost([] { return std::make_unique<DecisionStump>(); },
                   {.iterations = 15});
  boost.train(d);
  const auto dist = boost.distribution(d.features_of(0));
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdaBoost, PredictBeforeTrainThrows) {
  AdaBoostM1 boost([] { return std::make_unique<DecisionStump>(); });
  EXPECT_THROW((void)boost.predict(std::vector<double>{1.0}),
               PreconditionError);
}

// ----------------------------------------------------------------- bagging

TEST(Bagging, TrainsRequestedBags) {
  const Dataset d = overlapping_binary(200);
  Bagging bag([]() -> std::unique_ptr<Classifier> {
    return std::make_unique<J48>();
  }, {.bags = 7});
  bag.train(d);
  EXPECT_EQ(bag.committee_size(), 7u);
}

TEST(Bagging, AtLeastAsGoodAsWorstMemberOnHeldOut) {
  Dataset d = overlapping_binary(500);
  Rng rng(13);
  const auto [train, test] = d.stratified_split(0.7, rng);
  Bagging bag([]() -> std::unique_ptr<Classifier> {
    return std::make_unique<J48>(J48::Params{.min_leaf = 2, .prune = false});
  }, {.bags = 15});
  bag.train(train);
  J48 single({.min_leaf = 2, .prune = false});
  single.train(train);
  // Variance reduction: the bagged committee shouldn't do meaningfully
  // worse than a single overfit tree, and usually does better.
  EXPECT_GE(evaluate(bag, test).accuracy(),
            evaluate(single, test).accuracy() - 0.02);
}

TEST(Bagging, VoteSharesAreFractions) {
  const Dataset d = three_class(80);
  Bagging bag([]() -> std::unique_ptr<Classifier> {
    return std::make_unique<J48>();
  }, {.bags = 5});
  bag.train(d);
  const auto dist = bag.distribution(d.features_of(3));
  double total = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Bagging, RegistrySchemesWork) {
  const Dataset d = separable_binary(100);
  for (const auto& scheme : {"AdaBoostM1", "Bagging"}) {
    auto clf = make_classifier(scheme);
    clf->train(d);
    EXPECT_GT(evaluate(*clf, d).accuracy(), 0.9) << scheme;
  }
}

// ----------------------------------------------------------------- anomaly

/// Benign cluster at origin; anomalies far away.
Dataset anomaly_dataset(std::size_t n_benign, std::size_t n_malware,
                        double distance, std::uint64_t seed) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f0");
  attrs.emplace_back("f1");
  attrs.emplace_back("f2");
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  Dataset d(std::move(attrs));
  Rng rng(seed);
  for (std::size_t i = 0; i < n_benign; ++i)
    d.add({{rng.normal(), rng.normal(), rng.normal(), 0.0}});
  for (std::size_t i = 0; i < n_malware; ++i)
    d.add({{rng.normal(distance, 1.0), rng.normal(distance, 1.0),
            rng.normal(), 1.0}});
  return d;
}

TEST(Mahalanobis, ScoresAnomaliesHigher) {
  const Dataset d = anomaly_dataset(300, 0, 0.0, 3);
  std::vector<std::vector<double>> benign;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto x = d.features_of(i);
    benign.emplace_back(x.begin(), x.end());
  }
  MahalanobisDetector det;
  det.fit(benign);
  EXPECT_LT(det.score(std::vector<double>{0, 0, 0}),
            det.score(std::vector<double>{8, 8, 0}));
}

TEST(Mahalanobis, ThresholdCalibratedToPercentile) {
  const Dataset d = anomaly_dataset(1000, 0, 0.0, 5);
  std::vector<std::vector<double>> benign;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto x = d.features_of(i);
    benign.emplace_back(x.begin(), x.end());
  }
  MahalanobisDetector det({.threshold_percentile = 95.0});
  det.fit(benign);
  int alarms = 0;
  for (const auto& row : benign) alarms += det.is_anomalous(row);
  // ~5% of training benign rows sit above the 95th percentile.
  EXPECT_NEAR(alarms, 50, 25);
}

TEST(Mahalanobis, DetectsDistantMalware) {
  const Dataset d = anomaly_dataset(400, 100, 6.0, 7);
  AnomalyClassifier clf;
  clf.train(d);
  const auto ev = evaluate(clf, d);
  EXPECT_GT(ev.recall(1), 0.95);  // malware flagged
  EXPECT_GT(ev.recall(0), 0.9);   // benign mostly clean
}

TEST(Mahalanobis, TrainsOnBenignOnly) {
  // Moving the malware cluster must not change the fitted model.
  const Dataset near = anomaly_dataset(300, 50, 4.0, 9);
  const Dataset far = anomaly_dataset(300, 50, 40.0, 9);
  AnomalyClassifier a, b;
  a.train(near);
  b.train(far);
  EXPECT_DOUBLE_EQ(a.detector().threshold(), b.detector().threshold());
}

TEST(Mahalanobis, HandlesCorrelatedFeatures) {
  // Two nearly-duplicate features: covariance is near-singular; the ridge
  // must keep the precision matrix finite.
  std::vector<Attribute> attrs;
  attrs.emplace_back("a");
  attrs.emplace_back("b");
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  Dataset d(std::move(attrs));
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.normal();
    d.add({{v, v + rng.normal(0.0, 1e-6), 0.0}});
  }
  AnomalyClassifier clf;
  clf.train(d);
  EXPECT_TRUE(std::isfinite(
      clf.detector().score(std::vector<double>{1.0, 1.0})));
}

TEST(Mahalanobis, RequiresBinaryDatasetAndBenignRows) {
  AnomalyClassifier clf;
  EXPECT_THROW(clf.train(three_class()), PreconditionError);
  const Dataset no_benign = anomaly_dataset(2, 50, 5.0, 13);
  EXPECT_THROW(clf.train(no_benign), PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
