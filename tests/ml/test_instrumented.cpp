#include "ml/instrumented.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ml/registry.hpp"
#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace hmd::ml {
namespace {

using testdata::separable_binary;

/// Flattens every feature row of `d` into one row-major buffer.
std::vector<double> flatten(const Dataset& d) {
  std::vector<double> flat;
  flat.reserve(d.num_instances() * d.num_features());
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto row = d.features_of(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

/// distribution_batch must agree with per-row distribution() for `scheme`.
void expect_batch_matches_per_row(const std::string& scheme) {
  const Dataset d = separable_binary(80);
  const auto clf = make_classifier(scheme);
  clf->train(d);
  const std::vector<double> flat = flatten(d);
  std::vector<double> batched(d.num_instances() * clf->num_classes());
  clf->distribution_batch(flat, d.num_features(), batched);
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto row = clf->distribution(d.features_of(i));
    for (std::size_t c = 0; c < row.size(); ++c)
      EXPECT_DOUBLE_EQ(batched[i * row.size() + c], row[c])
          << scheme << " row " << i << " class " << c;
  }
}

TEST(DistributionBatch, DefaultLoopMatchesPerRow) {
  expect_batch_matches_per_row("NaiveBayes");  // uses the base-class loop
}

TEST(DistributionBatch, LogisticOverrideMatchesPerRow) {
  expect_batch_matches_per_row("MLR");  // buffer-reusing override
}

TEST(DistributionBatch, RejectsMalformedArguments) {
  const Dataset d = separable_binary(10);
  const auto clf = make_classifier("ZeroR");
  clf->train(d);
  const std::vector<double> flat = flatten(d);
  std::vector<double> out(d.num_instances() * clf->num_classes());
  EXPECT_THROW(clf->distribution_batch(flat, 0, out), PreconditionError);
  // Input not a whole number of rows.
  EXPECT_THROW(clf->distribution_batch(flat, d.num_features() + 1, out),
               PreconditionError);
  // Output size mismatch.
  std::vector<double> short_out(2);
  EXPECT_THROW(clf->distribution_batch(flat, d.num_features(), short_out),
               PreconditionError);
}

TEST(Instrumented, ForwardsSchemeBehaviorUnchanged) {
  const Dataset d = separable_binary(60);
  auto plain = make_classifier("J48");
  plain->train(d);
  auto wrapped = instrument(make_classifier("J48"));
  wrapped->train(d);
  EXPECT_EQ(wrapped->name(), "J48");
  EXPECT_EQ(wrapped->num_classes(), plain->num_classes());
  for (std::size_t i = 0; i < d.num_instances(); ++i)
    EXPECT_EQ(wrapped->predict(d.features_of(i)),
              plain->predict(d.features_of(i)));
}

TEST(Instrumented, UnwrapExposesConcreteScheme) {
  auto wrapped = instrument(std::make_unique<ZeroR>());
  EXPECT_NE(dynamic_cast<const ZeroR*>(&wrapped->unwrap()), nullptr);
  // A bare scheme unwraps to itself.
  ZeroR plain;
  EXPECT_EQ(&plain.unwrap(), &plain);
}

TEST(Instrumented, RecordsTrainAndBatchInstruments) {
  const Dataset d = separable_binary(40);
  MetricsRegistry& reg = metrics();
  Histogram& train_ms =
      reg.histogram("ml.train_ms.ZeroR", default_latency_buckets_us());
  Counter& batch_rows = reg.counter("ml.batch_rows.ZeroR");
  const std::uint64_t trains_before = train_ms.count();
  const std::uint64_t rows_before = batch_rows.value();

  auto wrapped = instrument(std::make_unique<ZeroR>());
  wrapped->train(d);
  std::vector<double> out(d.num_instances() * wrapped->num_classes());
  wrapped->distribution_batch(flatten(d), d.num_features(), out);

  EXPECT_EQ(train_ms.count(), trains_before + 1);
  EXPECT_EQ(batch_rows.value(), rows_before + d.num_instances());
}

TEST(Instrumented, ReleaseReturnsInner) {
  auto wrapped = std::make_unique<InstrumentedClassifier>(
      std::make_unique<ZeroR>());
  auto inner = wrapped->release();
  EXPECT_NE(dynamic_cast<ZeroR*>(inner.get()), nullptr);
}

}  // namespace
}  // namespace hmd::ml
