// The KD-tree index is an accelerator, not an approximation: every IBk
// verdict (distributions included, ties included) must be bit-identical
// to the brute-force reference scan. This suite drives both paths over
// the same stores — including tie-heavy integer-lattice data where the
// k-th distance is massively degenerate — and pins the equivalence.
#include "ml/knn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "ml/kernels.hpp"
#include "ml/serialization.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/rng.hpp"

namespace hmd::ml {
namespace {

/// FNV-1a over argmax + full distributions — any bit flip shows up.
std::uint64_t fingerprint(std::span<const double> dists,
                          std::size_t num_classes) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t r = 0; r * num_classes < dists.size(); ++r) {
    std::size_t arg = 0;
    for (std::size_t c = 1; c < num_classes; ++c)
      if (dists[r * num_classes + c] > dists[r * num_classes + arg]) arg = c;
    mix(arg);
    for (std::size_t c = 0; c < num_classes; ++c) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &dists[r * num_classes + c], sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

/// Scores `queries` through all three paths — KD-tree index, screened
/// scan, and the plain unscreened scan (the reference "brute path") —
/// and asserts they agree to the last bit.
void expect_paths_identical(Knn& model, const std::vector<double>& queries,
                            std::size_t width) {
  const std::size_t rows = queries.size() / width;
  const std::size_t k = model.num_classes();
  std::vector<double> with_index(rows * k), screened(rows * k),
      brute(rows * k);
  model.set_index_enabled(true);
  model.distribution_batch(queries, width, with_index);
  model.set_index_enabled(false);
  model.distribution_batch(queries, width, screened);
  model.set_screen_enabled(false);
  model.distribution_batch(queries, width, brute);
  model.set_screen_enabled(true);
  model.set_index_enabled(true);
  for (std::size_t i = 0; i < brute.size(); ++i) {
    ASSERT_EQ(with_index[i], brute[i]) << "index vs brute, flat " << i;
    ASSERT_EQ(screened[i], brute[i]) << "screen vs brute, flat " << i;
  }
  EXPECT_EQ(fingerprint(with_index, k), fingerprint(brute, k));
}

/// Gaussian store big enough to clear the index-build threshold.
Dataset big_blobs(std::size_t per_class, std::uint64_t seed) {
  return testdata::blobs(4, 8, per_class, 2.0, 1.5, seed);
}

std::vector<double> random_queries(std::size_t rows, std::size_t d,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(rows * d);
  for (double& v : q) v = rng.normal(3.0, 3.0);
  return q;
}

TEST(KnnIndex, SmallStoreStaysBruteForce) {
  Knn model(3);
  model.train(testdata::three_class(40));
  EXPECT_FALSE(model.has_index());
}

TEST(KnnIndex, BigStoreBuildsIndexAndMatchesBruteBitForBit) {
  const std::size_t per_class =
      kernels::kLeafBlock;  // 4 classes: ~2x the build threshold
  Knn model(5);
  const auto data = big_blobs(per_class, 17);
  model.train(data);
  ASSERT_TRUE(model.has_index());
  expect_paths_identical(model, random_queries(300, 8, 18), 8);
}

TEST(KnnIndex, TieHeavyIntegerLatticeMatchesBruteBitForBit) {
  // Every coordinate on a small integer lattice: huge numbers of exactly
  // equal distances, so the k-th distance is massively degenerate and any
  // deviation in tie handling (order of equal-distance candidates) breaks
  // bit-identity of the label histogram.
  std::vector<Attribute> attrs;
  for (std::size_t f = 0; f < 3; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"a", "b", "c"});
  Dataset data(std::move(attrs), "lattice");
  Rng rng(21);
  const std::size_t n = 4 * kernels::kLeafBlock;
  for (std::size_t i = 0; i < n; ++i) {
    Instance row;
    for (std::size_t f = 0; f < 3; ++f)
      row.values.push_back(static_cast<double>(rng.uniform_int(0, 3)));
    row.values.push_back(static_cast<double>(rng.uniform_int(0, 2)));
    data.add(std::move(row));
  }
  Knn model(7);
  model.train(data);
  ASSERT_TRUE(model.has_index());
  // Queries on the same lattice maximise exact-tie collisions.
  std::vector<double> queries;
  Rng qrng(22);
  for (std::size_t i = 0; i < 400; ++i)
    for (std::size_t f = 0; f < 3; ++f)
      queries.push_back(static_cast<double>(qrng.uniform_int(0, 3)));
  expect_paths_identical(model, queries, 3);
}

TEST(KnnIndex, NonFiniteQueriesMatchBruteForce) {
  Knn model(5);
  const auto data = big_blobs(kernels::kLeafBlock, 23);
  model.train(data);
  ASSERT_TRUE(model.has_index());
  std::vector<double> queries = random_queries(8, 8, 24);
  queries[3] = std::numeric_limits<double>::quiet_NaN();
  queries[8 + 5] = std::numeric_limits<double>::infinity();
  queries[2 * 8 + 1] = -std::numeric_limits<double>::infinity();
  expect_paths_identical(model, queries, 8);
}

TEST(KnnIndex, SerializationRoundTripRebuildsIndexAndVerdicts) {
  Knn model(5);
  const auto data = big_blobs(kernels::kLeafBlock, 29);
  model.train(data);
  ASSERT_TRUE(model.has_index());

  std::stringstream buf;
  save_model(buf, model);
  const auto loaded = load_model(buf);
  ASSERT_NE(loaded, nullptr);
  auto* knn = dynamic_cast<Knn*>(loaded.get());
  ASSERT_NE(knn, nullptr);
  EXPECT_TRUE(knn->has_index());

  const auto queries = random_queries(200, 8, 30);
  const std::size_t k = model.num_classes();
  std::vector<double> before(200 * k), after(200 * k);
  model.distribution_batch(queries, 8, before);
  knn->distribution_batch(queries, 8, after);
  for (std::size_t i = 0; i < before.size(); ++i)
    ASSERT_EQ(before[i], after[i]) << "flat index " << i;
  expect_paths_identical(*knn, queries, 8);
}

TEST(KnnIndex, BatchMatchesPerRowDistribution) {
  // The locality-sorted batch must return rows in caller order: compare
  // against one-row-at-a-time distribution() calls.
  Knn model(5);
  const auto data = big_blobs(kernels::kLeafBlock, 31);
  model.train(data);
  ASSERT_TRUE(model.has_index());
  const std::size_t rows = 64, d = 8;
  const auto queries = random_queries(rows, d, 32);
  const std::size_t k = model.num_classes();
  std::vector<double> batch(rows * k);
  model.distribution_batch(queries, d, batch);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto one = model.distribution(
        std::span<const double>(queries.data() + r * d, d));
    for (std::size_t c = 0; c < k; ++c)
      ASSERT_EQ(batch[r * k + c], one[c]) << "r=" << r << " c=" << c;
  }
}

TEST(KnnIndex, ExactnessHoldsOnEveryIsa) {
  Knn model(5);
  const auto data = big_blobs(kernels::kLeafBlock, 37);
  model.train(data);
  ASSERT_TRUE(model.has_index());
  const auto queries = random_queries(120, 8, 38);
  const kernels::Isa saved = kernels::active_isa();
  for (kernels::Isa isa :
       {kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (!kernels::isa_supported(isa)) continue;
    kernels::force_isa(isa);
    expect_paths_identical(model, queries, 8);
  }
  kernels::force_isa(saved);
}

}  // namespace
}  // namespace hmd::ml
