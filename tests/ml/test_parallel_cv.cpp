// Determinism regression tests for the parallel experiment engine: k-fold
// cross-validation fanned across N threads must be bit-identical to the
// serial run — same pooled confusion matrix, same fold accuracies, same
// final rng state — for every classifier the study sweeps.
#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

/// Full bit-level comparison of two cross-validation results.
void expect_identical(const CrossValidationResult& a,
                      const CrossValidationResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.pooled.num_classes(), b.pooled.num_classes()) << label;
  for (std::size_t actual = 0; actual < a.pooled.num_classes(); ++actual)
    for (std::size_t pred = 0; pred < a.pooled.num_classes(); ++pred)
      EXPECT_EQ(a.pooled.confusion(actual, pred),
                b.pooled.confusion(actual, pred))
          << label << " confusion[" << actual << "][" << pred << "]";
  ASSERT_EQ(a.fold_accuracies.size(), b.fold_accuracies.size()) << label;
  for (std::size_t f = 0; f < a.fold_accuracies.size(); ++f)
    EXPECT_EQ(a.fold_accuracies[f], b.fold_accuracies[f])
        << label << " fold " << f;  // EQ, not NEAR: bit-identical
}

class ParallelCvSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelCvSweep, SerialAndParallelBitIdenticalBinary) {
  const std::string scheme = GetParam();
  const Dataset d = overlapping_binary(200);
  const auto factory = [&scheme] { return make_classifier(scheme); };

  Rng serial_rng(42);
  const auto serial = cross_validate(factory, d, 8, serial_rng);
  const std::uint64_t state_after = serial_rng.next_u64();

  for (std::size_t threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    Rng parallel_rng(42);
    const auto parallel =
        cross_validate(factory, d, 8, parallel_rng,
                       {.num_threads = threads, .pool = &pool});
    expect_identical(serial, parallel,
                     scheme + " x" + std::to_string(threads));
    // The engine must also leave the caller's rng in the same state.
    EXPECT_EQ(parallel_rng.next_u64(), state_after)
        << scheme << " rng state diverged at " << threads << " threads";
  }
}

TEST_P(ParallelCvSweep, SerialAndParallelBitIdenticalMulticlass) {
  const std::string scheme = GetParam();
  const Dataset d = three_class(100);
  const auto factory = [&scheme] { return make_classifier(scheme); };

  Rng serial_rng(7);
  const auto serial = cross_validate(factory, d, 5, serial_rng);

  ThreadPool pool(4);
  Rng parallel_rng(7);
  const auto parallel = cross_validate(
      factory, d, 5, parallel_rng, {.num_threads = 4, .pool = &pool});
  expect_identical(serial, parallel, scheme + " multiclass");
}

INSTANTIATE_TEST_SUITE_P(Schemes, ParallelCvSweep,
                         ::testing::Values("J48", "MLR", "NaiveBayes"));

TEST(ParallelCv, DefaultPoolPathMatchesSerial) {
  const Dataset d = separable_binary(120);
  const auto factory = [] { return make_classifier("OneR"); };
  Rng a(3), b(3);
  const auto serial = cross_validate(factory, d, 6, a);
  // num_threads = 0 resolves to default_jobs() on the global pool.
  const auto parallel = cross_validate(factory, d, 6, b, {.num_threads = 0});
  expect_identical(serial, parallel, "OneR global pool");
}

TEST(ParallelCv, SeededFactoryGetsIndependentFoldStreams) {
  const Dataset d = overlapping_binary(150);
  // Record each fold's first draw; re-running must reproduce them exactly,
  // in any thread configuration (fold seeds depend only on rng + index).
  const auto collect = [&](std::size_t threads) {
    std::vector<std::uint64_t> draws(5, 0);
    std::mutex m;
    std::size_t fold_counter = 0;
    Rng rng(99);
    ThreadPool pool(threads);
    (void)cross_validate(
        [&](Rng& fold_rng) -> std::unique_ptr<Classifier> {
          std::lock_guard<std::mutex> lock(m);
          draws[fold_counter++ % 5] = fold_rng.next_u64();
          return make_classifier("ZeroR");
        },
        d, 5, rng, {.num_threads = threads, .pool = &pool});
    std::sort(draws.begin(), draws.end());
    return draws;
  };
  const auto serial = collect(1);
  const auto parallel = collect(4);
  EXPECT_EQ(serial, parallel);
  // All five streams are distinct (splitmix64 sub-seeding).
  for (std::size_t i = 1; i < serial.size(); ++i)
    EXPECT_NE(serial[i - 1], serial[i]);
}

TEST(ParallelCv, ExceptionFromFoldPropagates) {
  const Dataset d = separable_binary(80);
  ThreadPool pool(4);
  Rng rng(1);
  EXPECT_THROW(
      (void)cross_validate([]() -> std::unique_ptr<Classifier> { return nullptr; },
                           d, 4, rng, {.num_threads = 4, .pool = &pool}),
      PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
