#include "ml/evaluation.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

EvaluationResult two_class_result() {
  EvaluationResult r(2, {"neg", "pos"});
  // Confusion: actual neg: 8 correct, 2 as pos; actual pos: 1 as neg, 9 ok.
  for (int i = 0; i < 8; ++i) r.record(0, 0);
  for (int i = 0; i < 2; ++i) r.record(0, 1);
  for (int i = 0; i < 1; ++i) r.record(1, 0);
  for (int i = 0; i < 9; ++i) r.record(1, 1);
  return r;
}

TEST(Evaluation, AccuracyComputation) {
  const auto r = two_class_result();
  EXPECT_EQ(r.total(), 20u);
  EXPECT_EQ(r.correct(), 17u);
  EXPECT_DOUBLE_EQ(r.accuracy(), 0.85);
}

TEST(Evaluation, ConfusionMatrixEntries) {
  const auto r = two_class_result();
  EXPECT_EQ(r.confusion(0, 0), 8u);
  EXPECT_EQ(r.confusion(0, 1), 2u);
  EXPECT_EQ(r.confusion(1, 0), 1u);
  EXPECT_EQ(r.confusion(1, 1), 9u);
}

TEST(Evaluation, RecallPerClass) {
  const auto r = two_class_result();
  EXPECT_DOUBLE_EQ(r.recall(0), 0.8);
  EXPECT_DOUBLE_EQ(r.recall(1), 0.9);
  EXPECT_DOUBLE_EQ(r.macro_recall(), 0.85);
}

TEST(Evaluation, PrecisionPerClass) {
  const auto r = two_class_result();
  EXPECT_NEAR(r.precision(0), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(r.precision(1), 9.0 / 11.0, 1e-12);
}

TEST(Evaluation, F1IsHarmonicMean) {
  const auto r = two_class_result();
  const double p = r.precision(1);
  const double rec = r.recall(1);
  EXPECT_NEAR(r.f1(1), 2 * p * rec / (p + rec), 1e-12);
}

TEST(Evaluation, KappaForPerfectClassifier) {
  EvaluationResult r(2, {"a", "b"});
  for (int i = 0; i < 10; ++i) {
    r.record(0, 0);
    r.record(1, 1);
  }
  EXPECT_NEAR(r.kappa(), 1.0, 1e-12);
}

TEST(Evaluation, KappaForChanceClassifier) {
  EvaluationResult r(2, {"a", "b"});
  // Predictions independent of truth.
  for (int i = 0; i < 25; ++i) {
    r.record(0, 0);
    r.record(0, 1);
    r.record(1, 0);
    r.record(1, 1);
  }
  EXPECT_NEAR(r.kappa(), 0.0, 1e-12);
}

TEST(Evaluation, EmptyResultIsZero) {
  EvaluationResult r(2, {"a", "b"});
  EXPECT_EQ(r.accuracy(), 0.0);
  EXPECT_EQ(r.kappa(), 0.0);
  EXPECT_EQ(r.recall(0), 0.0);
  EXPECT_EQ(r.precision(0), 0.0);
}

TEST(Evaluation, RecordRejectsOutOfRange) {
  EvaluationResult r(2, {"a", "b"});
  EXPECT_THROW(r.record(2, 0), PreconditionError);
  EXPECT_THROW(r.record(0, 2), PreconditionError);
}

TEST(Evaluation, MismatchedNamesThrow) {
  EXPECT_THROW(EvaluationResult(3, {"a", "b"}), PreconditionError);
  EXPECT_THROW(EvaluationResult(1, {"a"}), PreconditionError);
}

TEST(Evaluation, ToStringMentionsAccuracyAndClasses) {
  const auto r = two_class_result();
  const std::string s = r.to_string();
  EXPECT_NE(s.find("accuracy"), std::string::npos);
  EXPECT_NE(s.find("neg"), std::string::npos);
  EXPECT_NE(s.find("pos"), std::string::npos);
}

TEST(EvaluationReport, ForwardsToEmbeddedResult) {
  EvaluationReport report;
  report.scheme = "Stub";
  report.result = two_class_result();
  EXPECT_DOUBLE_EQ(report.accuracy(), 0.85);
  EXPECT_EQ(report.total(), 20u);
  EXPECT_EQ(report.correct(), 17u);
  EXPECT_EQ(report.confusion(0, 1), 2u);
  EXPECT_EQ(report.num_classes(), 2u);
  EXPECT_DOUBLE_EQ(report.macro_recall(), 0.85);
  EXPECT_DOUBLE_EQ(report.recall(1), report.result.recall(1));
  EXPECT_DOUBLE_EQ(report.f1(0), report.result.f1(0));
  report.record(1, 1);
  EXPECT_EQ(report.total(), 21u);
}

TEST(EvaluationReport, PerClassRowsMatchScalarAccessors) {
  EvaluationReport report;
  report.result = two_class_result();
  const auto rows = report.per_class();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "neg");
  EXPECT_EQ(rows[1].name, "pos");
  for (std::size_t c = 0; c < rows.size(); ++c) {
    EXPECT_DOUBLE_EQ(rows[c].precision, report.precision(c));
    EXPECT_DOUBLE_EQ(rows[c].recall, report.recall(c));
    EXPECT_DOUBLE_EQ(rows[c].f1, report.f1(c));
  }
}

TEST(EvaluationReport, ToStringIncludesTimingLine) {
  EvaluationReport report;
  report.result = two_class_result();
  report.train_seconds = 0.25;
  report.predict_seconds = 0.5;
  const std::string s = report.to_string();
  EXPECT_NE(s.find("accuracy"), std::string::npos);
  EXPECT_NE(s.find("train"), std::string::npos);
  EXPECT_NE(s.find("predict"), std::string::npos);
}

TEST(EvaluationReport, WriteJsonHasSchemeAndConfusion) {
  EvaluationReport report;
  report.scheme = "Na\"ive";  // name needing escaping
  report.result = two_class_result();
  std::ostringstream out;
  report.write_json(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"scheme\": \"Na\\\"ive\""), std::string::npos);
  EXPECT_NE(s.find("\"accuracy\""), std::string::npos);
  EXPECT_NE(s.find("\"confusion\""), std::string::npos);
  EXPECT_NE(s.find("\"classes\""), std::string::npos);
  EXPECT_NE(s.find("\"train_seconds\""), std::string::npos);
}

TEST(Evaluate, RunsClassifierOverTestSet) {
  const Dataset d = testdata::separable_binary(50);
  ZeroR z;
  z.train(d);
  const auto r = evaluate(z, d);
  EXPECT_EQ(r.total(), d.num_instances());
  EXPECT_DOUBLE_EQ(r.accuracy(), 0.5);  // balanced blobs
  EXPECT_EQ(r.scheme, "ZeroR");
  EXPECT_GE(r.predict_seconds, 0.0);
  EXPECT_EQ(r.train_seconds, 0.0);  // evaluate() does not train
}

TEST(Evaluate, EmptyTestSetThrows) {
  const Dataset d = testdata::separable_binary(10);
  ZeroR z;
  z.train(d);
  std::vector<Attribute> attrs;
  attrs.emplace_back("f0");
  attrs.emplace_back("f1");
  attrs.emplace_back("f2");
  attrs.emplace_back("f3");
  attrs.emplace_back("class", std::vector<std::string>{"c0", "c1"});
  const Dataset empty(std::move(attrs));
  EXPECT_THROW((void)evaluate(z, empty), PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
