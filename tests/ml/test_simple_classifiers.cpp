#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_stump.hpp"
#include "ml/evaluation.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_r.hpp"
#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

TEST(ZeroR, PredictsMajority) {
  Dataset d = separable_binary();
  d.add({{0, 0, 0, 0, 1.0}});  // tip the balance to class 1
  ZeroR z;
  z.train(d);
  EXPECT_EQ(z.predict(std::vector<double>{9, 9, 9, 9}), 1u);
}

TEST(ZeroR, PriorsSumToOne) {
  ZeroR z;
  z.train(three_class());
  double total = 0.0;
  for (double p : z.priors()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(z.num_classes(), 3u);
}

TEST(ZeroR, PredictBeforeTrainThrows) {
  ZeroR z;
  EXPECT_THROW((void)z.predict(std::vector<double>{1.0}), PreconditionError);
}

TEST(ZeroR, AccuracyEqualsMajorityShare) {
  const Dataset d = blobs(2, 2, 100, 0.0, 1.0, 3);
  ZeroR z;
  z.train(d);
  const auto ev = evaluate(z, d);
  EXPECT_DOUBLE_EQ(ev.accuracy(), 0.5);
}

TEST(OneR, FindsTheSignalFeature) {
  OneR r;
  r.train(single_feature_rule());
  EXPECT_EQ(r.chosen_feature(), 1u);  // "signal"
  EXPECT_LT(r.training_error(), 0.05);
}

TEST(OneR, AccurateOnSingleFeatureProblem) {
  const Dataset d = single_feature_rule();
  OneR r;
  r.train(d);
  EXPECT_GT(evaluate(r, d).accuracy(), 0.95);
}

TEST(OneR, IntervalsAreOrdered) {
  OneR r;
  r.train(separable_binary());
  const auto& intervals = r.intervals();
  ASSERT_GE(intervals.size(), 1u);
  for (std::size_t i = 1; i < intervals.size(); ++i)
    EXPECT_LT(intervals[i - 1].upper_bound, intervals[i].upper_bound);
  EXPECT_TRUE(std::isinf(intervals.back().upper_bound));
}

TEST(OneR, BeatsZeroROnSeparableData) {
  const Dataset d = separable_binary();
  OneR r;
  ZeroR z;
  r.train(d);
  z.train(d);
  EXPECT_GT(evaluate(r, d).accuracy(), evaluate(z, d).accuracy());
}

TEST(OneR, MinBucketControlsGranularity) {
  const Dataset d = single_feature_rule();
  OneR fine(2), coarse(50);
  fine.train(d);
  coarse.train(d);
  EXPECT_GE(fine.intervals().size(), coarse.intervals().size());
}

TEST(OneR, HandlesConstantFeature) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("c");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 20; ++i)
    d.add({{1.0, static_cast<double>(i % 2)}});
  OneR r;
  r.train(d);  // must not crash; rule degenerates to majority
  EXPECT_LT(r.predict(std::vector<double>{1.0}), 2u);
}

TEST(DecisionStump, FindsInformativeSplit) {
  DecisionStump s;
  s.train(single_feature_rule());
  EXPECT_EQ(s.split_feature(), 1u);
  EXPECT_GT(s.split_threshold(), 1.0);
  EXPECT_LT(s.split_threshold(), 4.0);
  EXPECT_NE(s.left_class(), s.right_class());
}

TEST(DecisionStump, AccurateOnSeparableData) {
  const Dataset d = single_feature_rule();
  DecisionStump s;
  s.train(d);
  EXPECT_GT(evaluate(s, d).accuracy(), 0.95);
}

TEST(DecisionStump, HandlesDegenerateData) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("c");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 10; ++i) d.add({{5.0, 0.0}});
  for (int i = 0; i < 4; ++i) d.add({{5.0, 1.0}});
  DecisionStump s;
  s.train(d);
  EXPECT_EQ(s.predict(std::vector<double>{5.0}), 0u);
}

TEST(EntropyOfCounts, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy_of_counts({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_of_counts({5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(entropy_of_counts({}), 0.0);
  EXPECT_NEAR(entropy_of_counts({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(NaiveBayes, LearnsClassMeans) {
  NaiveBayes nb;
  nb.train(separable_binary());
  EXPECT_NEAR(nb.means()[0][0], 0.0, 0.3);
  EXPECT_NEAR(nb.means()[1][0], 4.0, 0.3);
}

TEST(NaiveBayes, AccurateOnSeparableBlobs) {
  const Dataset d = separable_binary();
  NaiveBayes nb;
  nb.train(d);
  EXPECT_GT(evaluate(nb, d).accuracy(), 0.97);
}

TEST(NaiveBayes, DistributionSumsToOne) {
  NaiveBayes nb;
  nb.train(three_class());
  const auto dist = nb.distribution(std::vector<double>{1, 1, 1, 1, 1});
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NaiveBayes, VarianceFloorPreventsDegeneracy) {
  // A constant feature must not produce NaNs/infinities.
  std::vector<Attribute> attrs;
  attrs.emplace_back("const");
  attrs.emplace_back("useful");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    const bool b = i % 2 == 1;
    d.add({{3.0, b ? 5.0 + rng.normal() : rng.normal(),
            b ? 1.0 : 0.0}});
  }
  NaiveBayes nb;
  nb.train(d);
  const auto dist = nb.distribution(std::vector<double>{3.0, 5.0});
  EXPECT_TRUE(std::isfinite(dist[0]));
  EXPECT_GT(dist[1], dist[0]);
}

TEST(NaiveBayes, PriorsReflectImbalance) {
  Dataset d = blobs(2, 2, 10, 3.0, 0.5, 4);
  for (int i = 0; i < 30; ++i) d.add({{0.0, 0.0, 0.0}});
  NaiveBayes nb;
  nb.train(d);
  EXPECT_GT(nb.priors()[0], nb.priors()[1]);
}

TEST(Classifiers, RejectEmptyDataset) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  const Dataset empty(std::move(attrs));
  ZeroR z;
  OneR r;
  DecisionStump s;
  NaiveBayes nb;
  EXPECT_THROW(z.train(empty), PreconditionError);
  EXPECT_THROW(r.train(empty), PreconditionError);
  EXPECT_THROW(s.train(empty), PreconditionError);
  EXPECT_THROW(nb.train(empty), PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
