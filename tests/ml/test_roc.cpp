#include "ml/roc.hpp"

#include <gtest/gtest.h>

#include "ml/naive_bayes.hpp"
#include "ml/registry.hpp"
#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

TEST(Roc, CurveSpansUnitSquare) {
  const Dataset d = overlapping_binary(300);
  NaiveBayes nb;
  nb.train(d);
  const auto curve = roc_curve(nb, d);
  ASSERT_GE(curve.size(), 3u);
  EXPECT_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
}

TEST(Roc, CurveIsMonotone) {
  const Dataset d = overlapping_binary(300);
  auto clf = make_classifier("MLR");
  clf->train(d);
  const auto curve = roc_curve(*clf, d);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_GE(curve[i].false_positive_rate,
              curve[i - 1].false_positive_rate);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(Roc, PerfectSeparationGivesUnitAuc) {
  const Dataset d = blobs(2, 3, 150, 8.0, 0.5, 3);  // hugely separated
  auto clf = make_classifier("MLR");
  clf->train(d);
  EXPECT_GT(auc_of(*clf, d), 0.999);
}

TEST(Roc, ChanceClassifierGivesHalfAuc) {
  const Dataset d = overlapping_binary(400);
  ZeroR z;  // constant prior scores → a single diagonal segment
  z.train(d);
  EXPECT_NEAR(auc_of(z, d), 0.5, 1e-9);
}

TEST(Roc, AucOrdersDetectorsSensibly) {
  Dataset d = blobs(2, 4, 400, 2.0, 1.2, 9);
  Rng rng(4);
  const auto [train, test] = d.stratified_split(0.7, rng);
  auto good = make_classifier("MLR");
  good->train(train);
  ZeroR chance;
  chance.train(train);
  EXPECT_GT(auc_of(*good, test), auc_of(chance, test) + 0.2);
}

TEST(Roc, BestYoudenPointBeatsExtremes) {
  const Dataset d = overlapping_binary(400);
  NaiveBayes nb;
  nb.train(d);
  const auto curve = roc_curve(nb, d);
  const RocPoint best = best_youden_point(curve);
  const double j = best.true_positive_rate - best.false_positive_rate;
  EXPECT_GT(j, 0.2);
  // No point on the curve beats it.
  for (const auto& p : curve)
    EXPECT_LE(p.true_positive_rate - p.false_positive_rate, j + 1e-12);
}

TEST(Roc, RejectsBadInput) {
  const Dataset multi = three_class();
  NaiveBayes nb;
  nb.train(multi);
  EXPECT_THROW((void)roc_curve(nb, multi), PreconditionError);
  EXPECT_THROW((void)auc({}), PreconditionError);
  EXPECT_THROW((void)best_youden_point({}), PreconditionError);
}

TEST(Roc, SingleClassTestSetThrows) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 10; ++i) d.add({{static_cast<double>(i), 0.0}});
  NaiveBayes nb;
  nb.train(overlapping_binary(50));
  // Width mismatch aside, a one-class test set must be rejected.
  std::vector<Attribute> attrs2;
  attrs2.emplace_back("f0");
  attrs2.emplace_back("f1");
  attrs2.emplace_back("f2");
  attrs2.emplace_back("f3");
  attrs2.emplace_back("class", std::vector<std::string>{"c0", "c1"});
  Dataset d2(std::move(attrs2));
  for (int i = 0; i < 10; ++i) d2.add({{1.0, 2.0, 3.0, 4.0, 0.0}});
  EXPECT_THROW((void)roc_curve(nb, d2), PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
