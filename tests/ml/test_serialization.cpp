#include "ml/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/registry.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

/// Round-trip a trained model and check bit-identical predictions.
void expect_roundtrip(const std::string& scheme, const Dataset& train,
                      const Dataset& check) {
  auto original = make_classifier(scheme);
  original->train(train);

  std::ostringstream out;
  save_model(out, *original);
  std::istringstream in(out.str());
  const auto loaded = load_model(in);

  ASSERT_NE(loaded, nullptr) << scheme;
  EXPECT_EQ(loaded->name(), original->name());
  EXPECT_EQ(loaded->num_classes(), original->num_classes());
  for (std::size_t i = 0; i < check.num_instances(); ++i) {
    EXPECT_EQ(loaded->predict(check.features_of(i)),
              original->predict(check.features_of(i)))
        << scheme << " row " << i;
  }
}

class RoundTripSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripSweep, BinaryPredictionsIdentical) {
  const Dataset d = overlapping_binary(250);
  expect_roundtrip(GetParam(), d, d);
}

TEST_P(RoundTripSweep, MulticlassPredictionsIdentical) {
  if (is_one_class_scheme(GetParam()))
    GTEST_SKIP() << "benign-only detectors are binary by construction";
  const Dataset d = three_class(120);
  expect_roundtrip(GetParam(), d, d);
}

// Every scheme the registry can construct must round-trip through the
// model format — registry.hpp is the source of truth for this list.
INSTANTIATE_TEST_SUITE_P(Schemes, RoundTripSweep,
                         ::testing::Values("ZeroR", "OneR", "DecisionStump",
                                           "J48", "JRip", "NaiveBayes",
                                           "MLR", "SVM", "MLP", "IBk",
                                           "AdaBoostM1", "Bagging",
                                           "Mahalanobis", "OneClassSvm",
                                           "KdeAnomaly",
                                           "MahalanobisThreshold"));

// The sweep list above must track the registry exactly — a new scheme that
// is registered but left out of the sweep silently loses round-trip
// coverage. Compare against known_schemes() so that drift fails loudly.
TEST(Serialization, RoundTripSweepCoversEveryRegisteredScheme) {
  const std::vector<std::string> sweep = {
      "ZeroR", "OneR", "DecisionStump", "J48", "JRip", "NaiveBayes",
      "MLR", "SVM", "MLP", "IBk", "AdaBoostM1", "Bagging",
      "Mahalanobis", "OneClassSvm", "KdeAnomaly", "MahalanobisThreshold"};
  EXPECT_EQ(sweep, known_schemes());
}

TEST(Serialization, DistributionsAlsoRoundTrip) {
  const Dataset d = three_class(100);
  auto original = make_classifier("MLP");
  original->train(d);
  std::ostringstream out;
  save_model(out, *original);
  std::istringstream in(out.str());
  const auto loaded = load_model(in);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto a = original->distribution(d.features_of(i));
    const auto b = loaded->distribution(d.features_of(i));
    for (std::size_t c = 0; c < a.size(); ++c)
      EXPECT_DOUBLE_EQ(a[c], b[c]);
  }
}

TEST(Serialization, HeaderContainsSchemeAndVersion) {
  const Dataset d = separable_binary(50);
  auto clf = make_classifier("OneR");
  clf->train(d);
  std::ostringstream out;
  save_model(out, *clf);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("hmd-model v1\n", 0), 0u);
  EXPECT_NE(text.find("scheme OneR"), std::string::npos);
  EXPECT_NE(text.find("\nend\n"), std::string::npos);
}

TEST(Serialization, UntrainedModelThrows) {
  auto clf = make_classifier("J48");
  std::ostringstream out;
  EXPECT_THROW(save_model(out, *clf), PreconditionError);
}

/// A trained classifier the model format knows nothing about.
class Unserializable final : public Classifier {
 public:
  void train(const DatasetView&) override {}
  std::size_t predict(std::span<const double>) const override { return 0; }
  std::string name() const override { return "Unserializable"; }
  std::size_t num_classes() const override { return 2; }
};

TEST(Serialization, UnsupportedSchemeThrows) {
  Unserializable clf;
  std::ostringstream out;
  EXPECT_THROW(save_model(out, clf), PreconditionError);
}

TEST(Serialization, RejectsBadHeader) {
  std::istringstream in("not-a-model v9\n");
  EXPECT_THROW((void)load_model(in), ParseError);
}

TEST(Serialization, RejectsTruncatedInput) {
  const Dataset d = separable_binary(50);
  auto clf = make_classifier("JRip");
  clf->train(d);
  std::ostringstream out;
  save_model(out, *clf);
  const std::string text = out.str();
  std::istringstream in(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)load_model(in), ParseError);
}

TEST(Serialization, RejectsUnknownScheme) {
  std::istringstream in("hmd-model v1\nscheme Quantum\nclasses 2\nend\n");
  EXPECT_THROW((void)load_model(in), ParseError);
}

TEST(Serialization, RejectsCorruptedNumbers) {
  std::istringstream in(
      "hmd-model v1\nscheme DecisionStump\nclasses 2\n"
      "split 0 not-a-number 0 1\nend\n");
  EXPECT_THROW((void)load_model(in), ParseError);
}

TEST(Serialization, LoadedModelSavesIdentically) {
  const Dataset d = overlapping_binary(150);
  auto original = make_classifier("J48");
  original->train(d);
  std::ostringstream first;
  save_model(first, *original);
  std::istringstream in(first.str());
  const auto loaded = load_model(in);
  std::ostringstream second;
  save_model(second, *loaded);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace hmd::ml
