// Dispatch-parity suite for the runtime-SIMD kernel library: every
// dispatched kernel must produce BIT-IDENTICAL output on every ISA this
// CPU supports (the exactness contract in kernels.hpp), except the
// documented bound_squared_l2 exemption which is checked with tolerance.
#include "ml/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml::kernels {
namespace {

/// ISAs this machine can actually run (kScalar is always first).
std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512})
    if (isa_supported(isa)) out.push_back(isa);
  return out;
}

/// Restores the pre-test dispatch choice even if the test throws.
class IsaGuard {
 public:
  IsaGuard() : saved_(active_isa()) {}
  ~IsaGuard() { force_isa(saved_); }

 private:
  Isa saved_;
};

TEST(KernelsDispatch, IsaNamesRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    const auto parsed = isa_from_name(to_string(isa));
    ASSERT_TRUE(parsed.has_value()) << to_string(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(isa_from_name("sse9").has_value());
  EXPECT_FALSE(isa_from_name("").has_value());
  EXPECT_FALSE(isa_from_name("AVX2 ").has_value());
}

TEST(KernelsDispatch, ScalarAlwaysSupportedAndForcible) {
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  IsaGuard guard;
  force_isa(Isa::kScalar);
  EXPECT_EQ(active_isa(), Isa::kScalar);
}

TEST(KernelsDispatch, ForceIsaByNameRejectsUnknownName) {
  EXPECT_THROW(force_isa_by_name("mmx"), Error);
  EXPECT_THROW(force_isa_by_name(""), Error);
}

TEST(KernelsDispatch, ResolveIsaRequestClampsToSupportedTier) {
  // The HMD_KERNEL_ISA resolver: names parse to their tier, but a request
  // above what this CPU supports clamps to the best supported tier
  // (fleet-wide env settings must not abort weaker runners). Unknown
  // names still fail fast.
  const Isa best = supported_isas().back();
  EXPECT_EQ(resolve_isa_request("scalar"), Isa::kScalar);
  for (const char* name : {"avx2", "avx512"}) {
    const Isa requested = *isa_from_name(name);
    const Isa resolved = resolve_isa_request(name);
    EXPECT_EQ(resolved, std::min(requested, best)) << name;
    EXPECT_TRUE(isa_supported(resolved)) << name;
  }
  EXPECT_THROW(resolve_isa_request("sse9"), Error);
  EXPECT_THROW(resolve_isa_request(""), Error);
}

TEST(KernelsDispatch, AffineBatchBitIdenticalAcrossIsasAndToPerRowForm) {
  Rng rng(41);
  // Odd d and k exercise vector tails; rows has no alignment contract.
  for (const auto [rows, d, k] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{17, 13, 7},
        {64, 16, 6},
        {3, 1, 1},
        {33, 24, 9}}) {
    std::vector<std::vector<double>> w(k, std::vector<double>(d + 1));
    for (auto& row : w)
      for (double& v : row) v = rng.normal(0.0, 1.0);
    std::vector<double> a(rows * d);
    for (double& v : a) v = rng.normal(0.0, 2.0);
    const std::vector<double> packed = pack_weights_feature_major(w);

    std::vector<double> ref(rows * k);
    affine_batch_as(Isa::kScalar, a.data(), rows, d, packed.data(), k,
                    ref.data());
    // The scalar batch form must match the per-row accumulation exactly.
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < k; ++c) {
        const double per_row = affine_bias_last(
            w[c], std::span<const double>(a.data() + r * d, d));
        ASSERT_EQ(ref[r * k + c], per_row) << "r=" << r << " c=" << c;
      }
    for (Isa isa : supported_isas()) {
      std::vector<double> out(rows * k, std::numeric_limits<double>::quiet_NaN());
      affine_batch_as(isa, a.data(), rows, d, packed.data(), k, out.data());
      for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(ref[i], out[i]) << to_string(isa) << " i=" << i;
    }
  }
}

TEST(KernelsDispatch, ScreenBitIdenticalAcrossIsasAndToDirectSum) {
  Rng rng(42);
  for (const std::size_t dims : {std::size_t{5}, std::size_t{16}}) {
    const std::size_t rows = 48;  // multiple-of-16 contract
    std::vector<std::int16_t> block(screen_block_entries(rows, dims), 0);
    std::vector<std::vector<std::int16_t>> pts(rows,
                                               std::vector<std::int16_t>(dims));
    for (std::size_t b = 0; b < rows; ++b)
      for (std::size_t j = 0; j < dims; ++j) {
        pts[b][j] = static_cast<std::int16_t>(rng.uniform_int(-2047, 2047));
        block[screen_block_index(rows, b, j)] = pts[b][j];
      }
    // Odd dims: the padded dimension stays 0 in both block and query.
    std::vector<std::int16_t> qx(dims + (dims % 2), 0);
    for (std::size_t j = 0; j < dims; ++j)
      qx[j] = static_cast<std::int16_t>(rng.uniform_int(-2047, 2047));

    std::vector<std::int32_t> ref(rows);
    screen_squared_l2_i16_as(Isa::kScalar, block.data(), qx.data(), dims, rows,
                             ref.data());
    for (std::size_t b = 0; b < rows; ++b) {
      std::int64_t want = 0;
      for (std::size_t j = 0; j < dims; ++j) {
        const std::int64_t t = std::int64_t{qx[j]} - pts[b][j];
        want += t * t;
      }
      ASSERT_EQ(ref[b], want) << "b=" << b;
    }
    for (Isa isa : supported_isas()) {
      std::vector<std::int32_t> acc(rows, -1);
      screen_squared_l2_i16_as(isa, block.data(), qx.data(), dims, rows,
                               acc.data());
      ASSERT_EQ(acc, ref) << to_string(isa);
    }
  }
}

TEST(KernelsDispatch, MaskBitIdenticalAcrossIsas) {
  Rng rng(43);
  const std::size_t n = 192;
  std::vector<std::int32_t> acc(n);
  const std::int32_t thr = 1000;
  for (auto& v : acc)  // cluster around thr so both mask outcomes occur
    v = thr + static_cast<std::int32_t>(rng.uniform_int(-20, 20));
  acc[0] = thr;  // boundary: <= keeps the exact threshold
  std::vector<std::uint64_t> ref((n + 63) / 64, 0);
  mask_le_i32_as(Isa::kScalar, acc.data(), n, thr, ref.data());
  for (std::size_t b = 0; b < n; ++b) {
    const bool bit = (ref[b / 64] >> (b % 64)) & 1u;
    ASSERT_EQ(bit, acc[b] <= thr) << "b=" << b;
  }
  for (Isa isa : supported_isas()) {
    std::vector<std::uint64_t> mask((n + 63) / 64, ~std::uint64_t{0});
    mask_le_i32_as(isa, acc.data(), n, thr, mask.data());
    ASSERT_EQ(mask, ref) << to_string(isa);
  }
}

TEST(KernelsDispatch, GemmInt8BitIdenticalAcrossIsasAndToInt64Sum) {
  Rng rng(44);
  for (const auto [rows, d, k] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{9, 15, 5},
        {32, 16, 6},
        {1, 1, 1}}) {
    std::vector<std::int8_t> a(rows * d), w(k * d);
    for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    std::vector<std::int32_t> ref(rows * k);
    gemm_i8_i32_as(Isa::kScalar, a.data(), rows, d, w.data(), k, ref.data());
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < k; ++c) {
        std::int64_t want = 0;
        for (std::size_t f = 0; f < d; ++f)
          want += std::int64_t{a[r * d + f]} * w[c * d + f];
        ASSERT_EQ(ref[r * k + c], want);
      }
    for (Isa isa : supported_isas()) {
      std::vector<std::int32_t> out(rows * k, -1);
      gemm_i8_i32_as(isa, a.data(), rows, d, w.data(), k, out.data());
      ASSERT_EQ(out, ref) << to_string(isa);
    }
  }
}

TEST(KernelsDispatch, BoundIsValidLowerBoundWithinDocumentedSlack) {
  // bound_squared_l2 is EXEMPT from bit-parity (reassociated reduction);
  // the contract is: every ISA's value is within a tiny relative rounding
  // of the exact sum, and after the caller-side 1e-12 shrink it never
  // exceeds the true squared distance to any point of the box.
  Rng rng(45);
  for (const std::size_t d : {std::size_t{3}, std::size_t{16}, std::size_t{33}}) {
    std::vector<double> lo(d), hi(d), x(d), clamped(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double a = rng.normal(0.0, 1.0);
      const double b = a + std::abs(rng.normal(0.0, 1.0));
      lo[j] = a;
      hi[j] = b;
      x[j] = rng.normal(0.0, 3.0);
      clamped[j] = std::min(std::max(x[j], lo[j]), hi[j]);
    }
    const double exact = squared_l2(x, clamped);
    for (Isa isa : supported_isas()) {
      const double bound = bound_squared_l2_as(isa, lo.data(), hi.data(),
                                               x.data(), d);
      EXPECT_NEAR(bound, exact, 1e-9 * std::max(1.0, exact))
          << to_string(isa) << " d=" << d;
      EXPECT_LE(bound * (1.0 - 1e-12), exact) << to_string(isa);
    }
    // A point inside the box has bound exactly 0 on every ISA.
    for (Isa isa : supported_isas())
      EXPECT_EQ(bound_squared_l2_as(isa, lo.data(), hi.data(), clamped.data(),
                                    d),
                0.0)
          << to_string(isa);
  }
}

// -- Golden fingerprints: FNV-1a over the output bit patterns of each
//    bit-exact kernel on fixed seeded inputs. Unlike the pairwise parity
//    tests above, these pin the results ACROSS BUILDS: an accidental
//    accumulation-order change (or a -ffast-math / -ffp-contract leak
//    into kernels.cpp) changes the constant even if every ISA clone
//    changes in lockstep.

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t fnv_doubles(std::uint64_t h, const std::vector<double>& vs) {
  for (const double d : vs) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    __builtin_memcpy(&bits, &d, sizeof bits);
    h = fnv_mix(h, bits);
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

TEST(KernelsDispatch, GoldenFingerprintAffineBatch) {
  Rng rng(4242);
  const std::size_t rows = 37, d = 19, k = 5;
  std::vector<std::vector<double>> w(k, std::vector<double>(d + 1));
  for (auto& row : w)
    for (double& v : row) v = rng.normal(0.0, 1.0);
  const std::vector<double> packed = pack_weights_feature_major(w);
  std::vector<double> a(rows * d);
  for (double& v : a) v = rng.normal(0.0, 2.0);
  for (Isa isa : supported_isas()) {
    std::vector<double> out(rows * k);
    affine_batch_as(isa, a.data(), rows, d, packed.data(), k, out.data());
    EXPECT_EQ(fnv_doubles(kFnvOffset, out), 0x0c193662d62e30cdull)
        << to_string(isa);
  }
}

TEST(KernelsDispatch, GoldenFingerprintIntegerKernels) {
  Rng rng(4243);
  // screen: one 48-row block of 9 dims (odd width exercises the pad).
  const std::size_t rows = 48, dims = 9;
  std::vector<std::int16_t> block(screen_block_entries(rows, dims), 0);
  for (std::size_t b = 0; b < rows; ++b)
    for (std::size_t j = 0; j < dims; ++j)
      block[screen_block_index(rows, b, j)] =
          static_cast<std::int16_t>(rng.uniform_int(-2047, 2047));
  std::vector<std::int16_t> qx(dims + 1, 0);
  for (std::size_t j = 0; j < dims; ++j)
    qx[j] = static_cast<std::int16_t>(rng.uniform_int(-2047, 2047));
  // gemm: 11x13 inputs against 6 outputs.
  const std::size_t gr = 11, gd = 13, gk = 6;
  std::vector<std::int8_t> ga(gr * gd), gw(gk * gd);
  for (auto& v : ga) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : gw) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (Isa isa : supported_isas()) {
    std::vector<std::int32_t> acc(rows);
    screen_squared_l2_i16_as(isa, block.data(), qx.data(), dims, rows,
                             acc.data());
    std::vector<std::int32_t> gout(gr * gk);
    gemm_i8_i32_as(isa, ga.data(), gr, gd, gw.data(), gk, gout.data());
    std::uint64_t h = kFnvOffset;
    for (const std::int32_t v : acc)
      h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
    for (const std::int32_t v : gout)
      h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
    EXPECT_EQ(h, 0x74100ffa15b3f7f8ull) << to_string(isa);
  }
}

TEST(KernelsDispatch, DispatchedEntryPointsFollowForcedIsa) {
  // The un-suffixed entry points must route through active_isa(): forcing
  // scalar and forcing the best ISA must agree bit-for-bit (affine) and
  // exactly (gemm) on the same inputs.
  IsaGuard guard;
  Rng rng(46);
  const std::size_t rows = 19, d = 11, k = 4;
  std::vector<std::vector<double>> w(k, std::vector<double>(d + 1));
  for (auto& row : w)
    for (double& v : row) v = rng.normal(0.0, 1.0);
  const std::vector<double> packed = pack_weights_feature_major(w);
  std::vector<double> a(rows * d);
  for (double& v : a) v = rng.normal(0.0, 1.0);

  std::vector<double> out_scalar(rows * k), out_best(rows * k);
  force_isa(Isa::kScalar);
  affine_batch(a.data(), rows, d, packed.data(), k, out_scalar.data());
  const auto isas = supported_isas();
  force_isa(isas.back());
  affine_batch(a.data(), rows, d, packed.data(), k, out_best.data());
  for (std::size_t i = 0; i < out_scalar.size(); ++i)
    ASSERT_EQ(out_scalar[i], out_best[i]) << "i=" << i;
}

}  // namespace
}  // namespace hmd::ml::kernels
