#include "ml/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <vector>

#include "ml/evaluation.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

TEST(Registry, KnownSchemesListsSixteenCanonicalNames) {
  const auto schemes = known_schemes();
  EXPECT_EQ(schemes.size(), 16u);
  // No duplicates, no aliases.
  auto sorted = schemes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(std::count(schemes.begin(), schemes.end(), "Logistic"), 0);
  // Every listed scheme constructs.
  for (const auto& name : schemes) {
    const auto clf = make_classifier(name);
    ASSERT_NE(clf, nullptr) << name;
    EXPECT_EQ(clf->name(), name);
  }
}

TEST(Registry, IsKnownSchemeAcceptsCanonicalAndAlias) {
  EXPECT_TRUE(is_known_scheme("MLR"));
  EXPECT_TRUE(is_known_scheme("Logistic"));  // alias of MLR
  EXPECT_TRUE(is_known_scheme("J48"));
  EXPECT_FALSE(is_known_scheme("RandomForest"));
  EXPECT_FALSE(is_known_scheme(""));
}

TEST(Registry, AliasConstructsSameSchemeAsCanonicalName) {
  const auto canonical = make_classifier("MLR");
  const auto alias = make_classifier("Logistic");
  EXPECT_EQ(canonical->name(), alias->name());
}

TEST(Registry, DescriptionsExistForEveryScheme) {
  for (const auto& name : known_schemes())
    EXPECT_FALSE(scheme_description(name).empty()) << name;
  EXPECT_TRUE(scheme_description("NotAScheme").empty());
}

TEST(Registry, UnknownSchemeErrorListsAllKnownNames) {
  try {
    (void)make_classifier("Bogus");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Bogus"), std::string::npos);
    for (const auto& name : known_schemes())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(Registry, UnknownSchemeErrorEnumeratesExactlyTheRegistry) {
  // Completeness cross-check: the "(known: ...)" list in the error message
  // must be exactly known_schemes() — a scheme added to the table but
  // missed in the error (or vice versa) fails here, not in a user report.
  std::string what;
  try {
    (void)make_classifier("Bogus");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    what = e.what();
  }
  const auto open = what.find("known:");
  ASSERT_NE(open, std::string::npos) << what;
  const auto close = what.find(')', open);
  ASSERT_NE(close, std::string::npos) << what;
  const std::string list = what.substr(open + 6, close - open - 6);
  std::vector<std::string> advertised;
  std::istringstream words(list);
  std::string word;
  while (words >> word) advertised.push_back(word);
  EXPECT_EQ(advertised, known_schemes());
}

TEST(Registry, OneClassSchemesAreFlaggedAndConstructible) {
  // Mahalanobis (the thesis anomaly detector) is benign-only too, so it
  // rides the same flag as the dedicated one-class family.
  const std::vector<std::string> expected = {
      "Mahalanobis", "OneClassSvm", "KdeAnomaly", "MahalanobisThreshold"};
  EXPECT_EQ(one_class_schemes(), expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(is_one_class_scheme(name)) << name;
    EXPECT_TRUE(is_known_scheme(name)) << name;
    const auto clf = make_classifier(name);
    ASSERT_NE(clf, nullptr) << name;
    EXPECT_EQ(clf->name(), name);
    EXPECT_FALSE(scheme_description(name).empty()) << name;
  }
  EXPECT_FALSE(is_one_class_scheme("MLR"));
  EXPECT_FALSE(is_one_class_scheme("SVM"));
  EXPECT_FALSE(is_one_class_scheme("NotAScheme"));
}

TEST(Registry, StudyListsAreSubsetsOfKnownSchemes) {
  const auto schemes = known_schemes();
  for (const auto& name : binary_study_classifiers())
    EXPECT_TRUE(std::count(schemes.begin(), schemes.end(), name)) << name;
  for (const auto& name : multiclass_study_classifiers())
    EXPECT_TRUE(std::count(schemes.begin(), schemes.end(), name)) << name;
}

TEST(Registry, EverySchemeReportsThroughEvaluationReport) {
  // The unified evaluation artifact must work for all 13 schemes, not just
  // the study subsets (Mahalanobis trains on the benign class only, the
  // ensembles resample — evaluate() must not care).
  const Dataset d = testdata::separable_binary(60);
  for (const auto& name : known_schemes()) {
    auto clf = make_classifier(name);
    clf->train(d);
    const EvaluationReport report = evaluate(*clf, d);
    EXPECT_EQ(report.scheme, name);
    EXPECT_EQ(report.total(), d.num_instances()) << name;
    EXPECT_GE(report.predict_seconds, 0.0) << name;
    EXPECT_EQ(report.num_classes(), 2u) << name;
  }
}

TEST(Registry, BatchOverridesMatchPerRowScoringForEveryScheme) {
  // Several schemes override distribution_batch with buffer-reusing or
  // GEMM paths; the contract across ALL sixteen is bit-identity with the
  // per-row distribution() loop, whatever path the scheme takes.
  // Binary data: the one-class anomaly schemes refuse multiclass sets.
  const auto data = testdata::separable_binary(80);
  const std::size_t d = data.num_features();
  const std::size_t rows = 60;
  std::vector<double> flat;
  for (std::size_t r = 0; r < rows; ++r) {
    const auto f = data.features_of(r % data.num_instances());
    flat.insert(flat.end(), f.begin(), f.end());
  }
  for (const auto& name : known_schemes()) {
    const auto clf = make_classifier(name);
    clf->train(data);
    const std::size_t k = clf->num_classes();
    std::vector<double> batch(rows * k);
    clf->distribution_batch(flat, d, batch);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto one = clf->distribution(
          std::span<const double>(flat.data() + r * d, d));
      ASSERT_EQ(one.size(), k) << name;
      for (std::size_t c = 0; c < k; ++c)
        ASSERT_EQ(batch[r * k + c], one[c])
            << name << " row " << r << " class " << c;
    }
  }
}

TEST(Registry, StudyListsPreserveThesisOrdering) {
  // Figs. 13-16 compare these schemes in this order; the multiclass study
  // (Figs. 17-19) uses MLR, MLP, SVM.
  const std::vector<std::string> binary = {
      "OneR", "JRip", "J48", "NaiveBayes", "MLR", "SVM", "MLP"};
  EXPECT_EQ(binary_study_classifiers(), binary);
  const std::vector<std::string> multi = {"MLR", "MLP", "SVM"};
  EXPECT_EQ(multiclass_study_classifiers(), multi);
}

}  // namespace
}  // namespace hmd::ml
