// Property-style sweeps over the whole classifier registry: invariants that
// every scheme must satisfy regardless of algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/evaluation.hpp"
#include "ml/registry.hpp"
#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

class SchemeSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeSweep, ConstructsWithCorrectName) {
  const auto clf = make_classifier(GetParam());
  ASSERT_NE(clf, nullptr);
  // Logistic is surfaced as MLR (the thesis's name).
  EXPECT_EQ(clf->name(), GetParam() == "Logistic" ? "MLR" : GetParam());
}

TEST_P(SchemeSweep, PredictionsAreValidClassIndices) {
  const Dataset d = testdata::three_class(60);
  auto clf = make_classifier(GetParam());
  clf->train(d);
  EXPECT_EQ(clf->num_classes(), 3u);
  for (std::size_t i = 0; i < d.num_instances(); ++i)
    EXPECT_LT(clf->predict(d.features_of(i)), 3u);
}

TEST_P(SchemeSweep, DistributionIsAProbabilityVector) {
  const Dataset d = testdata::three_class(60);
  auto clf = make_classifier(GetParam());
  clf->train(d);
  const auto dist = clf->distribution(d.features_of(0));
  ASSERT_EQ(dist.size(), 3u);
  double total = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_P(SchemeSweep, BeatsChanceOnSeparableData) {
  const Dataset d = testdata::separable_binary(150);
  auto clf = make_classifier(GetParam());
  clf->train(d);
  const double acc = evaluate(*clf, d).accuracy();
  if (GetParam() == "ZeroR")
    EXPECT_NEAR(acc, 0.5, 1e-9);
  else
    EXPECT_GT(acc, 0.9) << GetParam();
}

TEST_P(SchemeSweep, RetrainReplacesModel) {
  // Train on one problem, retrain on its label-flipped twin: predictions
  // must flip too (the old model must not leak through).
  Dataset d = testdata::single_feature_rule(200);
  auto clf = make_classifier(GetParam());
  clf->train(d);
  Dataset flipped = d.relabel_binary({0}, "x", "y");  // class 0 ↔ 1
  clf->train(flipped);
  const auto ev = evaluate(*clf, flipped);
  if (GetParam() != "ZeroR") EXPECT_GT(ev.accuracy(), 0.9) << GetParam();
}

TEST_P(SchemeSweep, DeterministicAcrossIdenticalRuns) {
  const Dataset d = testdata::overlapping_binary(120);
  auto a = make_classifier(GetParam());
  auto b = make_classifier(GetParam());
  a->train(d);
  b->train(d);
  for (std::size_t i = 0; i < d.num_instances(); ++i)
    EXPECT_EQ(a->predict(d.features_of(i)), b->predict(d.features_of(i)))
        << GetParam() << " row " << i;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweep,
                         ::testing::Values("ZeroR", "OneR", "DecisionStump",
                                           "J48", "JRip", "NaiveBayes", "MLR",
                                           "SVM", "MLP", "IBk"));

TEST(Registry, UnknownSchemeThrows) {
  EXPECT_THROW(make_classifier("RandomForest"), PreconditionError);
}

TEST(Registry, StudySetsAreConsistent) {
  for (const auto& name : binary_study_classifiers())
    EXPECT_NE(make_classifier(name), nullptr);
  for (const auto& name : multiclass_study_classifiers())
    EXPECT_NE(make_classifier(name), nullptr);
  EXPECT_EQ(multiclass_study_classifiers().size(), 3u);  // MLR, MLP, SVM
}

}  // namespace
}  // namespace hmd::ml
