#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace hmd::ml {
namespace {

Dataset make_dataset() {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f0");
  attrs.emplace_back("f1");
  attrs.emplace_back("class", std::vector<std::string>{"neg", "pos"});
  Dataset d(std::move(attrs), "test");
  d.add({{1.0, 10.0, 0.0}});
  d.add({{2.0, 20.0, 1.0}});
  d.add({{3.0, 30.0, 1.0}});
  return d;
}

TEST(Attribute, NominalValueLookup) {
  Attribute a("cls", {"x", "y", "z"});
  EXPECT_TRUE(a.is_nominal());
  EXPECT_EQ(a.value_index("y"), 1u);
  EXPECT_THROW((void)a.value_index("w"), PreconditionError);
}

TEST(Attribute, NumericHasNoValues) {
  Attribute a("f");
  EXPECT_FALSE(a.is_nominal());
  EXPECT_EQ(a.num_values(), 0u);
  EXPECT_THROW((void)a.value_index("x"), PreconditionError);
}

TEST(Attribute, EmptyNominalThrows) {
  EXPECT_THROW(Attribute("c", std::vector<std::string>{}), PreconditionError);
}

TEST(Dataset, BasicAccessors) {
  const Dataset d = make_dataset();
  EXPECT_EQ(d.num_attributes(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_instances(), 3u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.relation(), "test");
  EXPECT_EQ(d.class_of(1), 1u);
  EXPECT_EQ(d.features_of(2)[1], 30.0);
}

TEST(Dataset, RequiresNominalClassLast) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f0");
  attrs.emplace_back("f1");
  EXPECT_THROW((void)Dataset(attrs), PreconditionError);
}

TEST(Dataset, RejectsWrongWidthRows) {
  Dataset d = make_dataset();
  EXPECT_THROW(d.add({{1.0, 2.0}}), PreconditionError);
}

TEST(Dataset, RejectsOutOfRangeClassValue) {
  Dataset d = make_dataset();
  EXPECT_THROW(d.add({{1.0, 2.0, 5.0}}), PreconditionError);
  EXPECT_THROW(d.add({{1.0, 2.0, 0.5}}), PreconditionError);
}

TEST(Dataset, ClassCountsAndMajority) {
  const Dataset d = make_dataset();
  const auto counts = d.class_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(d.majority_class(), 1u);
}

TEST(Dataset, FeatureIndexByName) {
  const Dataset d = make_dataset();
  EXPECT_EQ(d.feature_index("f1"), 1u);
  EXPECT_THROW((void)d.feature_index("class"), PreconditionError);
  EXPECT_THROW((void)d.feature_index("nope"), PreconditionError);
}

TEST(Dataset, ProjectKeepsSelectedFeatures) {
  const Dataset d = make_dataset();
  const Dataset p = d.project({1});
  EXPECT_EQ(p.num_features(), 1u);
  EXPECT_EQ(p.attribute(0).name(), "f1");
  EXPECT_EQ(p.num_instances(), 3u);
  EXPECT_EQ(p.features_of(0)[0], 10.0);
  EXPECT_EQ(p.class_of(0), 0u);
}

TEST(Dataset, ProjectReordersFeatures) {
  const Dataset d = make_dataset();
  const Dataset p = d.project({1, 0});
  EXPECT_EQ(p.attribute(0).name(), "f1");
  EXPECT_EQ(p.attribute(1).name(), "f0");
  EXPECT_EQ(p.features_of(2)[0], 30.0);
  EXPECT_EQ(p.features_of(2)[1], 3.0);
}

TEST(Dataset, ProjectRejectsClassColumn) {
  const Dataset d = make_dataset();
  EXPECT_THROW((void)d.project({2}), PreconditionError);
  EXPECT_THROW((void)d.project({}), PreconditionError);
}

TEST(Dataset, FilterClassesKeepsAndRemaps) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b", "c"});
  Dataset d(std::move(attrs));
  d.add({{1.0, 0.0}});
  d.add({{2.0, 1.0}});
  d.add({{3.0, 2.0}});
  const Dataset f = d.filter_classes({2, 0});
  EXPECT_EQ(f.num_instances(), 2u);
  EXPECT_EQ(f.num_classes(), 2u);
  EXPECT_EQ(f.class_attribute().values()[0], "c");
  // Row with class "c" (3.0) is now class 0.
  EXPECT_EQ(f.class_of(1), 0u);
  EXPECT_EQ(f.features_of(1)[0], 3.0);
}

TEST(Dataset, RelabelBinary) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b", "c"});
  Dataset d(std::move(attrs));
  d.add({{1.0, 0.0}});
  d.add({{2.0, 1.0}});
  d.add({{3.0, 2.0}});
  const Dataset b = d.relabel_binary({1, 2}, "clean", "dirty");
  EXPECT_EQ(b.num_classes(), 2u);
  EXPECT_EQ(b.class_of(0), 0u);
  EXPECT_EQ(b.class_of(1), 1u);
  EXPECT_EQ(b.class_of(2), 1u);
  EXPECT_EQ(b.class_attribute().values()[1], "dirty");
  EXPECT_EQ(b.num_instances(), 3u);
}

TEST(Dataset, StratifiedSplitPreservesClassShares) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 100; ++i) d.add({{static_cast<double>(i), 0.0}});
  for (int i = 0; i < 50; ++i) d.add({{static_cast<double>(i), 1.0}});
  Rng rng(3);
  const auto [train, test] = d.stratified_split(0.7, rng);
  EXPECT_EQ(train.num_instances() + test.num_instances(), 150u);
  EXPECT_EQ(train.class_counts()[0], 70u);
  EXPECT_EQ(train.class_counts()[1], 35u);
  EXPECT_EQ(test.class_counts()[0], 30u);
  EXPECT_EQ(test.class_counts()[1], 15u);
}

TEST(Dataset, StratifiedSplitIsDisjoint) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 40; ++i)
    d.add({{static_cast<double>(i), static_cast<double>(i % 2)}});
  Rng rng(5);
  const auto [train, test] = d.stratified_split(0.5, rng);
  std::set<double> train_ids;
  for (std::size_t i = 0; i < train.num_instances(); ++i)
    train_ids.insert(train.features_of(i)[0]);
  for (std::size_t i = 0; i < test.num_instances(); ++i)
    EXPECT_EQ(train_ids.count(test.features_of(i)[0]), 0u);
}

TEST(Dataset, SplitRejectsDegenerateFractions) {
  Dataset d = make_dataset();
  Rng rng(1);
  EXPECT_THROW((void)d.stratified_split(0.0, rng), PreconditionError);
  EXPECT_THROW((void)d.stratified_split(1.0, rng), PreconditionError);
}

TEST(Dataset, FeatureStatistics) {
  const Dataset d = make_dataset();
  EXPECT_DOUBLE_EQ(d.feature_mean(0), 2.0);
  EXPECT_NEAR(d.feature_stddev(0), 1.0, 1e-12);
  EXPECT_THROW((void)d.feature_mean(2), PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
