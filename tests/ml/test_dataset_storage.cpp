// Storage-layer tests for the contiguous Dataset block, the lazy
// column-major mirror, and zero-copy DatasetView selections. Also pins the
// end-to-end numeric behaviour of the hot-path rewrite: the fingerprint
// suite hashes every split/model output bit-for-bit against values recorded
// from the pre-refactor row-of-vectors implementation, so any accidental
// reassociation or reordering in the shared kernels shows up as a hash
// mismatch here rather than as a silent accuracy drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/ensemble.hpp"
#include "ml/j48.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "tests/ml/synthetic_data.hpp"

namespace {

using namespace hmd;

// --- Contiguous layout invariants ------------------------------------------

TEST(DatasetStorage, RowsShareOneContiguousBlock) {
  const ml::Dataset data = ml::testdata::blobs(3, 4, 20, 2.0, 1.0, 11);
  const std::size_t stride = data.num_attributes();
  const double* base = data.row(0).data();
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    EXPECT_EQ(data.row(i).data(), base + i * stride);
    EXPECT_EQ(data.row(i).size(), stride);
    // features_of and instance() alias the same storage, no copies.
    EXPECT_EQ(data.features_of(i).data(), data.row(i).data());
    EXPECT_EQ(data.instance(i).values.data(), data.row(i).data());
    EXPECT_EQ(data.features_of(i).size(), stride - 1);
  }
}

TEST(DatasetStorage, ColumnMirrorMatchesRows) {
  const ml::Dataset data = ml::testdata::blobs(3, 5, 17, 2.0, 1.0, 12);
  const std::size_t rows = data.num_instances();
  for (std::size_t a = 0; a < data.num_attributes(); ++a) {
    const auto col = data.column(a);
    ASSERT_EQ(col.size(), rows);
    for (std::size_t i = 0; i < rows; ++i) EXPECT_EQ(col[i], data.row(i)[a]);
  }
  // The feature block is column-contiguous: column f starts at f * rows.
  const auto block = data.feature_columns();
  ASSERT_EQ(block.size(), data.num_features() * rows);
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    EXPECT_EQ(data.column(f).data(), block.data() + f * rows);
  }
}

TEST(DatasetStorage, ColumnMirrorRebuiltAfterAdd) {
  ml::Dataset data = ml::testdata::blobs(2, 3, 8, 3.0, 1.0, 13);
  const auto before = data.column(1);
  ASSERT_EQ(before.size(), 8u * 2);
  ml::Instance extra;
  extra.values = {1.5, -2.5, 3.5, 0.0};
  data.add(std::move(extra));
  const auto after = data.column(1);
  ASSERT_EQ(after.size(), 8u * 2 + 1);
  EXPECT_EQ(after[after.size() - 1], -2.5);
  for (std::size_t i = 0; i + 1 < after.size(); ++i)
    EXPECT_EQ(after[i], data.row(i)[1]);
}

// --- View vs materialized equivalence --------------------------------------

void expect_same_rows(const ml::DatasetView& view, const ml::Dataset& mat) {
  ASSERT_EQ(view.num_instances(), mat.num_instances());
  for (std::size_t i = 0; i < mat.num_instances(); ++i) {
    const auto a = view.row(i);
    const auto b = mat.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(DatasetStorage, SplitViewsMatchMaterializedSplit) {
  const ml::Dataset data = ml::testdata::blobs(3, 4, 40, 2.0, 1.2, 21);
  Rng rng_a(404);
  Rng rng_b(404);
  const auto [train, test] = data.stratified_split(0.7, rng_a);
  const auto [train_v, test_v] = data.stratified_split_views(0.7, rng_b);
  expect_same_rows(train_v, train);
  expect_same_rows(test_v, test);
  // Both flavours consume the RNG identically.
  EXPECT_EQ(rng_a.uniform(), rng_b.uniform());
}

TEST(DatasetStorage, SelectComposesToParentIndices) {
  const ml::Dataset data = ml::testdata::blobs(2, 3, 10, 3.0, 1.0, 22);
  const ml::DatasetView odd(data, {1, 3, 5, 7, 9, 11, 13});
  const ml::DatasetView picked = odd.select({0, 2, 2, 6});
  const std::vector<std::size_t> expected = {1, 5, 5, 13};
  ASSERT_EQ(picked.num_instances(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(picked.row_index(i), expected[i]);
    EXPECT_EQ(picked.row(i).data(), data.row(expected[i]).data());
  }
  expect_same_rows(picked, picked.materialize());
}

TEST(DatasetStorage, TrainOnViewMatchesTrainOnMaterialized) {
  const ml::Dataset data = ml::testdata::blobs(3, 5, 60, 2.0, 1.2, 23);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < data.num_instances(); i += 2) rows.push_back(i);
  const ml::DatasetView view(data, rows);
  const ml::Dataset mat = view.materialize();

  ml::J48 from_view;
  from_view.train(view);
  ml::J48 from_mat;
  from_mat.train(mat);
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    EXPECT_EQ(from_view.predict(data.features_of(i)),
              from_mat.predict(data.features_of(i)));
    EXPECT_EQ(from_view.distribution(data.features_of(i)),
              from_mat.distribution(data.features_of(i)));
  }
}

// --- Fingerprint regression vs the pre-refactor implementation -------------
//
// FNV-1a over raw double bit patterns. The expected constants were produced
// by this exact harness running against the row-of-vectors storage and the
// per-classifier (pre-kernels) inner loops, so they certify bit-identical
// splits, training and prediction across the storage rewrite.

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t fnv_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv_mix(h, bits);
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::uint64_t hash_dataset(const ml::Dataset& data) {
  std::uint64_t h = kFnvSeed;
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    for (double v : data.features_of(i)) h = fnv_double(h, v);
    h = fnv_mix(h, data.class_of(i));
  }
  return h;
}

std::uint64_t hash_predictions(const ml::Classifier& clf,
                               const ml::Dataset& test) {
  std::uint64_t h = kFnvSeed;
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    h = fnv_mix(h, clf.predict(test.features_of(i)));
    for (double p : clf.distribution(test.features_of(i)))
      h = fnv_double(h, p);
  }
  return h;
}

class FingerprintRegression : public ::testing::Test {
 protected:
  FingerprintRegression()
      : data_(ml::testdata::blobs(3, 6, 400, 2.0, 1.2, 123)), rng_(99) {
    auto split = data_.stratified_split(0.7, rng_);
    train_ = std::move(split.first);
    test_ = std::move(split.second);
  }

  ml::Dataset data_;
  Rng rng_;
  ml::Dataset train_;
  ml::Dataset test_;
};

TEST_F(FingerprintRegression, DatasetTransforms) {
  EXPECT_EQ(hash_dataset(train_), 0x55af81293bf7d768ull);
  EXPECT_EQ(hash_dataset(test_), 0xbf73cbac9db0d0f9ull);
  EXPECT_EQ(hash_dataset(data_.project({0, 2, 4})), 0xbf876446a6dca93eull);
  EXPECT_EQ(hash_dataset(data_.relabel_binary({1, 2}, "benign", "malware")),
            0x3826e9beea9900b8ull);
}

TEST_F(FingerprintRegression, J48Predictions) {
  ml::J48 clf;
  clf.train(train_);
  EXPECT_EQ(hash_predictions(clf, test_), 0x7c1c0273e4e33c63ull);
}

TEST_F(FingerprintRegression, LogisticPredictions) {
  ml::Logistic clf;
  clf.train(train_);
  EXPECT_EQ(hash_predictions(clf, test_), 0xc7f7f272eda895b8ull);
}

TEST_F(FingerprintRegression, KnnPredictions) {
  ml::Knn clf(5);
  clf.train(train_);
  EXPECT_EQ(hash_predictions(clf, test_), 0xd89a9d2f3636f2e9ull);
}

TEST_F(FingerprintRegression, BaggingPredictions) {
  ml::Bagging clf([] { return std::make_unique<ml::J48>(); });
  clf.train(train_);
  EXPECT_EQ(hash_predictions(clf, test_), 0x1b795e827d5f244bull);
}

TEST_F(FingerprintRegression, CrossValidation) {
  Rng cv_rng(7);
  const auto cv = ml::cross_validate(
      [] { return std::make_unique<ml::J48>(); }, data_, 5, cv_rng);
  std::uint64_t h = kFnvSeed;
  h = fnv_double(h, cv.pooled.accuracy());
  for (double a : cv.fold_accuracies) h = fnv_double(h, a);
  EXPECT_EQ(h, 0x3bc0e8e63cdc2d97ull);
}

// --- Concurrent fold access over one shared parent --------------------------
//
// Named to match the TSan CI job's -R filter ('ParallelCv'): the lazy
// column-mirror build uses double-checked locking, and parallel CV folds
// share one parent Dataset, so racing first readers is exactly the shape
// the sanitizer needs to see.

TEST(ParallelCvSharedStorage, ConcurrentFoldTrainingIsRaceFree) {
  const ml::Dataset data = ml::testdata::blobs(3, 4, 60, 2.0, 1.2, 31);
  const std::size_t n = data.num_instances();
  constexpr std::size_t kFolds = 4;
  std::vector<std::thread> workers;
  std::vector<std::size_t> first_predictions(kFolds);
  for (std::size_t f = 0; f < kFolds; ++f) {
    workers.emplace_back([&, f] {
      std::vector<std::size_t> rows;
      for (std::size_t i = 0; i < n; ++i) {
        if (i % kFolds != f) rows.push_back(i);
      }
      const ml::DatasetView fold(data, std::move(rows));
      // Both mirror consumers: J48 presorts from column spans, and the
      // direct column() read races the lazy build if locking is wrong.
      (void)data.column(f % data.num_attributes());
      ml::J48 clf;
      clf.train(fold);
      first_predictions[f] = clf.predict(data.features_of(f));
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t f = 0; f < kFolds; ++f) {
    // Deterministic sanity: each fold's model predicts a valid class.
    EXPECT_LT(first_predictions[f], data.num_classes());
  }
}

}  // namespace
