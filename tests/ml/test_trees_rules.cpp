#include <gtest/gtest.h>

#include <cmath>

#include "ml/evaluation.hpp"
#include "ml/j48.hpp"
#include "ml/jrip.hpp"
#include "ml/zero_r.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

TEST(J48, AccurateOnSeparableBlobs) {
  const Dataset d = separable_binary();
  J48 tree;
  tree.train(d);
  EXPECT_GT(evaluate(tree, d).accuracy(), 0.97);
}

TEST(J48, SolvesXor) {
  const Dataset d = xor_problem();
  J48 tree;
  tree.train(d);
  EXPECT_GT(evaluate(tree, d).accuracy(), 0.95);
}

TEST(J48, GeneralizesOnHeldOutData) {
  Dataset d = separable_binary(400);
  Rng rng(3);
  const auto [train, test] = d.stratified_split(0.7, rng);
  J48 tree;
  tree.train(train);
  EXPECT_GT(evaluate(tree, test).accuracy(), 0.95);
}

TEST(J48, PruningShrinksTree) {
  const Dataset d = overlapping_binary(400);
  J48 pruned({.min_leaf = 2, .prune = true});
  J48 unpruned({.min_leaf = 2, .prune = false});
  pruned.train(d);
  unpruned.train(d);
  EXPECT_LE(pruned.num_leaves(), unpruned.num_leaves());
}

TEST(J48, MinLeafLimitsGrowth) {
  const Dataset d = overlapping_binary(400);
  J48 fine({.min_leaf = 2, .prune = false});
  J48 coarse({.min_leaf = 50, .prune = false});
  fine.train(d);
  coarse.train(d);
  EXPECT_LT(coarse.num_leaves(), fine.num_leaves());
}

TEST(J48, MaxDepthRespected) {
  const Dataset d = overlapping_binary(400);
  J48 shallow({.min_leaf = 2, .max_depth = 3, .prune = false});
  shallow.train(d);
  EXPECT_LE(shallow.depth(), 3u);
}

TEST(J48, PureDataGivesSingleLeaf) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 30; ++i) d.add({{static_cast<double>(i), 0.0}});
  J48 tree;
  tree.train(d);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.root().is_leaf());
}

TEST(J48, NodeCountConsistency) {
  const Dataset d = separable_binary();
  J48 tree;
  tree.train(d);
  // Binary tree: nodes = 2*leaves - 1.
  EXPECT_EQ(tree.num_nodes(), 2 * tree.num_leaves() - 1);
}

TEST(J48, MulticlassWorks) {
  const Dataset d = three_class();
  J48 tree;
  tree.train(d);
  EXPECT_GT(evaluate(tree, d).accuracy(), 0.95);
}

TEST(J48, PredictBeforeTrainThrows) {
  J48 tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}),
               PreconditionError);
}

TEST(PessimisticError, UpperBoundExceedsObserved) {
  EXPECT_GT(pessimistic_error_count(100, 10, 0.25), 10.0);
  EXPECT_GT(pessimistic_error_count(10, 0, 0.25), 0.0);
}

TEST(PessimisticError, TightensWithMoreData) {
  const double small = pessimistic_error_count(10, 1, 0.25) / 10.0;
  const double large = pessimistic_error_count(1000, 100, 0.25) / 1000.0;
  EXPECT_GT(small, large);
}

TEST(PessimisticError, ZeroInstancesIsZero) {
  EXPECT_EQ(pessimistic_error_count(0, 0, 0.25), 0.0);
}

TEST(JRip, AccurateOnSeparableBlobs) {
  const Dataset d = separable_binary();
  JRip rip;
  rip.train(d);
  EXPECT_GT(evaluate(rip, d).accuracy(), 0.95);
}

TEST(JRip, ProducesCompactRuleList) {
  const Dataset d = separable_binary();
  JRip rip;
  rip.train(d);
  EXPECT_GE(rip.rules().size(), 1u);
  EXPECT_LE(rip.rules().size(), 6u);
  EXPECT_LE(rip.total_conditions(), 20u);
}

TEST(JRip, RulesTargetMinorityClassesFirst) {
  // RIPPER learns classes in ascending frequency; the most frequent class
  // becomes the default.
  Dataset d = blobs(2, 3, 50, 4.0, 0.8, 12);
  for (int i = 0; i < 150; ++i) d.add({{0.0, 0.0, 0.0, 0.0}});  // bulk class 0
  JRip rip;
  rip.train(d);
  EXPECT_EQ(rip.default_class(), 0u);
  for (const auto& rule : rip.rules()) EXPECT_EQ(rule.cls, 1u);
}

TEST(JRip, GeneralizesOnHeldOutData) {
  Dataset d = separable_binary(400);
  Rng rng(7);
  const auto [train, test] = d.stratified_split(0.7, rng);
  JRip rip;
  rip.train(train);
  EXPECT_GT(evaluate(rip, test).accuracy(), 0.93);
}

TEST(JRip, SolvesXor) {
  // Rules with two conditions each can box the XOR quadrants.
  const Dataset d = xor_problem();
  JRip rip;
  rip.train(d);
  EXPECT_GT(evaluate(rip, d).accuracy(), 0.9);
}

TEST(JRip, MulticlassRuleLists) {
  const Dataset d = three_class();
  JRip rip;
  rip.train(d);
  EXPECT_GT(evaluate(rip, d).accuracy(), 0.9);
}

TEST(JRip, ConditionMatchSemantics) {
  JRip::Condition le{.feature = 0, .greater = false, .threshold = 5.0};
  JRip::Condition gt{.feature = 0, .greater = true, .threshold = 5.0};
  const std::vector<double> low = {4.0};
  const std::vector<double> high = {6.0};
  EXPECT_TRUE(le.matches(low));
  EXPECT_FALSE(le.matches(high));
  EXPECT_FALSE(gt.matches(low));
  EXPECT_TRUE(gt.matches(high));
}

TEST(JRip, RuleConjunctionSemantics) {
  JRip::Rule rule;
  rule.cls = 1;
  rule.conditions = {{.feature = 0, .greater = true, .threshold = 1.0},
                     {.feature = 1, .greater = false, .threshold = 3.0}};
  EXPECT_TRUE(rule.matches(std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{0.5, 2.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{2.0, 4.0}));
}

TEST(JRip, PredictBeforeTrainThrows) {
  JRip rip;
  EXPECT_THROW((void)rip.predict(std::vector<double>{1.0}),
               PreconditionError);
}

TEST(JRip, BeatsZeroROnImbalancedSeparableData) {
  Dataset d = blobs(2, 3, 60, 5.0, 0.5, 9);
  for (int i = 0; i < 240; ++i) d.add({{0.0, 0.0, 0.0, 0.0}});
  JRip rip;
  ZeroR z;
  rip.train(d);
  z.train(d);
  EXPECT_GT(evaluate(rip, d).accuracy(), evaluate(z, d).accuracy());
}

// Both tree/rule learners stay sane across class counts.
class TreeRuleClassCountSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(TreeRuleClassCountSweep, J48AndJRipHandleKClasses) {
  const std::size_t k = GetParam();
  const Dataset d = blobs(k, 4, 60, 4.0, 0.8, k);
  J48 tree;
  tree.train(d);
  JRip rip;
  rip.train(d);
  EXPECT_GT(evaluate(tree, d).accuracy(), 0.9);
  EXPECT_GT(evaluate(rip, d).accuracy(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, TreeRuleClassCountSweep,
                         ::testing::Values(2u, 3u, 4u, 6u));

}  // namespace
}  // namespace hmd::ml
