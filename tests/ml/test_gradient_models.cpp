#include <gtest/gtest.h>

#include <cmath>

#include "ml/evaluation.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

TEST(Softmax, NormalizesAndOrders) {
  std::vector<double> logits = {1.0, 3.0, 2.0};
  softmax_inplace(logits);
  double total = 0.0;
  for (double p : logits) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(logits[1], logits[2]);
  EXPECT_GT(logits[2], logits[0]);
}

TEST(Softmax, StableForLargeLogits) {
  std::vector<double> logits = {1000.0, 1001.0};
  softmax_inplace(logits);
  EXPECT_TRUE(std::isfinite(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0, 1e-12);
}

TEST(Logistic, AccurateOnSeparableBinary) {
  const Dataset d = separable_binary();
  Logistic lr;
  lr.train(d);
  EXPECT_GT(evaluate(lr, d).accuracy(), 0.98);
}

TEST(Logistic, MulticlassSoftmax) {
  const Dataset d = three_class();
  Logistic lr;
  lr.train(d);
  EXPECT_GT(evaluate(lr, d).accuracy(), 0.95);
  EXPECT_EQ(lr.num_classes(), 3u);
}

TEST(Logistic, DistributionSumsToOne) {
  Logistic lr;
  lr.train(three_class());
  const auto dist = lr.distribution(std::vector<double>{1, 1, 1, 1, 1});
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Logistic, CannotSolveXor) {
  const Dataset d = xor_problem();
  Logistic lr;
  lr.train(d);
  EXPECT_LT(evaluate(lr, d).accuracy(), 0.7);  // linear ceiling ≈ 0.5
}

TEST(Logistic, GeneralizesOnHeldOutData) {
  Dataset d = blobs(2, 6, 300, 2.0, 1.0, 21);
  Rng rng(4);
  const auto [train, test] = d.stratified_split(0.7, rng);
  Logistic lr;
  lr.train(train);
  EXPECT_GT(evaluate(lr, test).accuracy(), 0.85);
}

TEST(Logistic, WeightsExposeModel) {
  Logistic lr;
  lr.train(separable_binary());
  ASSERT_EQ(lr.weights().size(), 2u);
  EXPECT_EQ(lr.weights()[0].size(), 5u);  // 4 features + bias
}

TEST(Svm, AccurateOnSeparableBinary) {
  const Dataset d = separable_binary();
  LinearSvm svm;
  svm.train(d);
  EXPECT_GT(evaluate(svm, d).accuracy(), 0.97);
}

TEST(Svm, MulticlassOneVsRest) {
  const Dataset d = three_class();
  LinearSvm svm;
  svm.train(d);
  EXPECT_GT(evaluate(svm, d).accuracy(), 0.85);
}

TEST(Svm, CannotSolveXor) {
  const Dataset d = xor_problem();
  LinearSvm svm;
  svm.train(d);
  EXPECT_LT(evaluate(svm, d).accuracy(), 0.7);
}

TEST(Svm, DistributionIsNormalized) {
  LinearSvm svm;
  svm.train(three_class());
  const auto dist = svm.distribution(std::vector<double>{0, 0, 0, 0, 0});
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Svm, RegularizationControlsMarginFit) {
  const Dataset d = overlapping_binary();
  LinearSvm tight({.lambda = 1e-5, .epochs = 20});
  LinearSvm loose({.lambda = 1.0, .epochs = 20});
  tight.train(d);
  loose.train(d);
  // Heavy regularization shrinks weights toward zero.
  double tight_norm = 0.0, loose_norm = 0.0;
  for (std::size_t f = 0; f < 4; ++f) {
    tight_norm += tight.weights()[1][f] * tight.weights()[1][f];
    loose_norm += loose.weights()[1][f] * loose.weights()[1][f];
  }
  EXPECT_GT(tight_norm, loose_norm);
}

TEST(Mlp, AccurateOnSeparableBinary) {
  const Dataset d = separable_binary();
  Mlp mlp({.epochs = 60});
  mlp.train(d);
  EXPECT_GT(evaluate(mlp, d).accuracy(), 0.97);
}

TEST(Mlp, SolvesXor) {
  const Dataset d = xor_problem();
  Mlp mlp({.hidden_units = 8, .epochs = 200});
  mlp.train(d);
  EXPECT_GT(evaluate(mlp, d).accuracy(), 0.95);
}

TEST(Mlp, DefaultHiddenUnitsFollowWekaRule) {
  Mlp mlp({.epochs = 5});
  mlp.train(three_class());  // 5 features + 3 classes → (5+3)/2 = 4
  EXPECT_EQ(mlp.hidden_units(), 4u);
}

TEST(Mlp, ExplicitHiddenUnitsRespected) {
  Mlp mlp({.hidden_units = 9, .epochs = 5});
  mlp.train(three_class());
  EXPECT_EQ(mlp.hidden_units(), 9u);
}

TEST(Mlp, DistributionSumsToOne) {
  Mlp mlp({.epochs = 20});
  mlp.train(three_class());
  const auto dist = mlp.distribution(std::vector<double>{0, 1, 2, 3, 4});
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Mlp, DeterministicInSeed) {
  const Dataset d = separable_binary(100);
  Mlp a({.epochs = 10, .seed = 3});
  Mlp b({.epochs = 10, .seed = 3});
  a.train(d);
  b.train(d);
  for (std::size_t j = 0; j < a.w1().size(); ++j)
    for (std::size_t f = 0; f < a.w1()[j].size(); ++f)
      EXPECT_DOUBLE_EQ(a.w1()[j][f], b.w1()[j][f]);
}

TEST(Mlp, MulticlassAccuracy) {
  const Dataset d = three_class();
  Mlp mlp({.epochs = 80});
  mlp.train(d);
  EXPECT_GT(evaluate(mlp, d).accuracy(), 0.95);
}

TEST(Knn, AccurateOnSeparableData) {
  const Dataset d = separable_binary();
  Knn knn(3);
  knn.train(d);
  EXPECT_GT(evaluate(knn, d).accuracy(), 0.97);
}

TEST(Knn, SolvesXor) {
  const Dataset d = xor_problem();
  Knn knn(5);
  knn.train(d);
  EXPECT_GT(evaluate(knn, d).accuracy(), 0.95);
}

TEST(Knn, OneNearestMemorizesTraining) {
  const Dataset d = overlapping_binary(100);
  Knn knn(1);
  knn.train(d);
  EXPECT_DOUBLE_EQ(evaluate(knn, d).accuracy(), 1.0);
}

TEST(GradientModels, PredictBeforeTrainThrows) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)Logistic().predict(x), PreconditionError);
  EXPECT_THROW((void)LinearSvm().predict(x), PreconditionError);
  EXPECT_THROW((void)Mlp().predict(x), PreconditionError);
  EXPECT_THROW((void)Knn().predict(x), PreconditionError);
}

// All gradient models learn any blob separation at or above 3 sigma.
class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, LogisticTracksSeparability) {
  const Dataset d = blobs(2, 4, 200, GetParam(), 1.0, 31);
  Logistic lr;
  lr.train(d);
  const double acc = evaluate(lr, d).accuracy();
  if (GetParam() >= 3.0)
    EXPECT_GT(acc, 0.95);
  else
    EXPECT_GT(acc, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Separations, SeparationSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace hmd::ml
