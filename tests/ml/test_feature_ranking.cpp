#include "ml/feature_ranking.hpp"

#include <gtest/gtest.h>

#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

using namespace testdata;

/// Dataset with one strong feature, one weak, one pure noise.
Dataset graded_signal(std::size_t n = 600, std::uint64_t seed = 5) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("strong");
  attrs.emplace_back("weak");
  attrs.emplace_back("noise");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool b = rng.bernoulli(0.5);
    d.add({{b ? rng.normal(4.0, 0.5) : rng.normal(0.0, 0.5),
            b ? rng.normal(0.6, 1.0) : rng.normal(0.0, 1.0),
            rng.normal(0.0, 1.0), b ? 1.0 : 0.0}});
  }
  return d;
}

TEST(InfoGain, OrdersFeaturesBySignalStrength) {
  const auto ranked = rank_by_info_gain(graded_signal());
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].name, "strong");
  EXPECT_EQ(ranked[2].name, "noise");
  EXPECT_GT(ranked[0].score, ranked[1].score);
  EXPECT_GT(ranked[1].score, ranked[2].score);
}

TEST(InfoGain, NoiseHasNearZeroGain) {
  const auto ranked = rank_by_info_gain(graded_signal(2000));
  EXPECT_LT(ranked.back().score, 0.05);
}

TEST(InfoGain, PerfectFeatureApproachesClassEntropy) {
  const auto ranked = rank_by_info_gain(graded_signal(2000));
  // Balanced binary class → H(class) = 1 bit; "strong" separates cleanly.
  EXPECT_GT(ranked.front().score, 0.9);
}

TEST(InfoGain, ScoresAreNonNegative) {
  const auto ranked = rank_by_info_gain(overlapping_binary(400));
  for (const auto& f : ranked) EXPECT_GE(f.score, -1e-12);
}

TEST(InfoGain, DeterministicAndCompleteRanking) {
  const Dataset d = three_class();
  const auto a = rank_by_info_gain(d);
  const auto b = rank_by_info_gain(d);
  ASSERT_EQ(a.size(), d.num_features());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(InfoGain, TiedValuesShareABin) {
  // A feature with few distinct values must not crash or split ties.
  std::vector<Attribute> attrs;
  attrs.emplace_back("coarse");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 100; ++i)
    d.add({{static_cast<double>(i % 2), static_cast<double>(i % 2)}});
  const auto ranked = rank_by_info_gain(d, 10);
  EXPECT_NEAR(ranked.front().score, 1.0, 1e-9);  // perfectly informative
}

TEST(SymmetricalUncertainty, BoundedByOne) {
  const auto ranked =
      rank_by_symmetrical_uncertainty(graded_signal(1000));
  for (const auto& f : ranked) {
    EXPECT_GE(f.score, 0.0);
    EXPECT_LE(f.score, 1.0 + 1e-9);
  }
  EXPECT_EQ(ranked.front().name, "strong");
}

TEST(FeatureRanking, RejectsBadInput) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("f");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  const Dataset empty(std::move(attrs));
  EXPECT_THROW((void)rank_by_info_gain(empty), PreconditionError);
  EXPECT_THROW((void)rank_by_info_gain(graded_signal(50), 1),
               PreconditionError);
}

}  // namespace
}  // namespace hmd::ml
