// Behaviour, determinism and golden-fingerprint pins for the one-class
// (benign-only) schemes: OneClassSvm, KdeAnomaly, MahalanobisThreshold.
// The sweep runs every scheme through the shared OneClassClassifier
// contract (benign-only training, percentile threshold, calibrated
// sigmoid distribution); the fingerprint suite hashes predictions and
// distributions bit-for-bit so any numeric drift in the fit or scoring
// paths fails loudly rather than as silent accuracy movement.
#include "ml/one_class.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ml/registry.hpp"
#include "ml/serialization.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {
namespace {

/// Construct through the registry and downcast to the one-class contract.
std::unique_ptr<OneClassClassifier> make_one_class(const std::string& name) {
  auto clf = make_classifier(name);
  auto* one_class = dynamic_cast<OneClassClassifier*>(clf.get());
  EXPECT_NE(one_class, nullptr) << name;
  clf.release();
  return std::unique_ptr<OneClassClassifier>(one_class);
}

/// Binary benign/malware dataset from explicit feature rows.
Dataset build_binary(const std::vector<std::vector<double>>& benign,
                     const std::vector<std::vector<double>>& malware) {
  std::vector<Attribute> attrs;
  for (std::size_t f = 0; f < benign.front().size(); ++f)
    attrs.emplace_back("f" + std::to_string(f));
  attrs.emplace_back("class", std::vector<std::string>{"benign", "malware"});
  Dataset data(std::move(attrs), "one-class");
  for (const auto& row : benign) {
    Instance inst;
    inst.values = row;
    inst.values.push_back(0.0);
    data.add(std::move(inst));
  }
  for (const auto& row : malware) {
    Instance inst;
    inst.values = row;
    inst.values.push_back(1.0);
    data.add(std::move(inst));
  }
  return data;
}

/// Gaussian rows around `center` in every feature.
std::vector<std::vector<double>> gaussian_rows(std::size_t n, std::size_t d,
                                               double center, double noise,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (auto& row : rows) {
    row.reserve(d);
    for (std::size_t f = 0; f < d; ++f)
      row.push_back(rng.normal(center, noise));
  }
  return rows;
}

class OneClassSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(OneClassSweep, FlagsFarOutliersAndAcceptsBenign) {
  // Benign mass at 0, malware 6 sigma away: a benign-only detector must
  // keep its benign flag rate near the calibration percentile and still
  // catch the (never seen in training) malware cluster.
  const Dataset d = testdata::blobs(2, 4, 150, 6.0, 1.0, 21);
  auto clf = make_one_class(GetParam());
  clf->train(d);
  ASSERT_TRUE(clf->calibrated());
  std::size_t benign_flagged = 0, malware_flagged = 0, benign = 0,
              malware = 0;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const std::size_t predicted = clf->predict(d.features_of(i));
    if (d.class_of(i) == 0) {
      ++benign;
      benign_flagged += predicted;
    } else {
      ++malware;
      malware_flagged += predicted;
    }
  }
  EXPECT_LE(benign_flagged, benign / 5) << GetParam();
  EXPECT_GE(malware_flagged, malware * 4 / 5) << GetParam();
}

TEST_P(OneClassSweep, AnomalyScoreGrowsAwayFromBenignMass) {
  const Dataset d = testdata::blobs(2, 4, 150, 6.0, 1.0, 22);
  auto clf = make_one_class(GetParam());
  clf->train(d);
  const std::vector<double> at_mean(4, 0.0);
  const std::vector<double> three_sd(4, 3.0);
  const std::vector<double> eight_sd(4, 8.0);
  EXPECT_LT(clf->anomaly_score(at_mean), clf->anomaly_score(three_sd))
      << GetParam();
  EXPECT_LT(clf->anomaly_score(at_mean), clf->anomaly_score(eight_sd))
      << GetParam();
}

TEST_P(OneClassSweep, CalibratedSigmoidIsCenteredAndMonotone) {
  const Dataset d = testdata::blobs(2, 4, 150, 6.0, 1.0, 23);
  auto clf = make_one_class(GetParam());
  clf->train(d);
  const double th = clf->threshold();
  const double s = clf->score_scale();
  ASSERT_GT(s, 0.0);
  EXPECT_DOUBLE_EQ(clf->calibrated_probability(th), 0.5);
  EXPECT_LT(clf->calibrated_probability(th - s), 0.5);
  EXPECT_GT(clf->calibrated_probability(th + s), 0.5);
  EXPECT_GT(clf->calibrated_probability(th - 10.0 * s), 0.0);
  EXPECT_LT(clf->calibrated_probability(th + 10.0 * s), 1.0);
  // distribution() is the calibrated sigmoid, normalized by construction.
  const auto dist = clf->distribution(d.features_of(0));
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0] + dist[1], 1.0);
}

TEST_P(OneClassSweep, DistributionBatchMatchesPerRow) {
  // The serving engine scores through distribution_batch; it must be
  // bit-identical to the per-row path for every scheme.
  const Dataset d = testdata::blobs(2, 4, 100, 4.0, 1.2, 24);
  auto clf = make_one_class(GetParam());
  clf->train(d);
  const std::size_t n = d.num_instances();
  std::vector<double> flat;
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = d.features_of(i);
    flat.insert(flat.end(), x.begin(), x.end());
  }
  std::vector<double> batched(n * 2);
  clf->distribution_batch(flat, 4, batched);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = clf->distribution(d.features_of(i));
    EXPECT_EQ(batched[i * 2], row[0]) << GetParam() << " row " << i;
    EXPECT_EQ(batched[i * 2 + 1], row[1]) << GetParam() << " row " << i;
  }
}

TEST_P(OneClassSweep, TrainingIsDeterministic) {
  // Seeded fits: two trainings on the same view must agree bit-for-bit
  // (the drift retrain loop's determinism contract rests on this).
  const Dataset d = testdata::blobs(2, 5, 200, 5.0, 1.0, 25);
  auto first = make_one_class(GetParam());
  auto second = make_one_class(GetParam());
  first->train(d);
  second->train(d);
  EXPECT_EQ(first->threshold(), second->threshold());
  EXPECT_EQ(first->score_scale(), second->score_scale());
  for (std::size_t i = 0; i < d.num_instances(); i += 7) {
    const auto a = first->distribution(d.features_of(i));
    const auto b = second->distribution(d.features_of(i));
    EXPECT_EQ(a[1], b[1]) << GetParam() << " row " << i;
  }
}

TEST_P(OneClassSweep, MalwareRowsNeverInfluenceTheFit) {
  // Same benign rows, wildly different malware rows: the fitted model
  // must be identical — that is what makes unlabeled-retrain sound.
  const auto benign = gaussian_rows(120, 4, 0.0, 1.0, 31);
  const Dataset a =
      build_binary(benign, gaussian_rows(40, 4, 9.0, 1.0, 32));
  const Dataset b =
      build_binary(benign, gaussian_rows(90, 4, -5.0, 3.0, 33));
  auto on_a = make_one_class(GetParam());
  auto on_b = make_one_class(GetParam());
  on_a->train(a);
  on_b->train(b);
  EXPECT_EQ(on_a->threshold(), on_b->threshold());
  EXPECT_EQ(on_a->score_scale(), on_b->score_scale());
  const auto probes = gaussian_rows(25, 4, 2.0, 2.0, 34);
  for (const auto& probe : probes)
    EXPECT_EQ(on_a->distribution(probe)[1], on_b->distribution(probe)[1])
        << GetParam();
}

TEST_P(OneClassSweep, RetrainInvalidatesAndReplacesTheOldFit) {
  auto clf = make_one_class(GetParam());
  clf->train(testdata::blobs(2, 4, 100, 5.0, 1.0, 41));
  const double first_threshold = clf->threshold();
  clf->train(testdata::blobs(2, 4, 100, 5.0, 2.5, 42));
  EXPECT_TRUE(clf->calibrated());
  EXPECT_NE(clf->threshold(), first_threshold) << GetParam();
}

TEST_P(OneClassSweep, RejectsMulticlassDatasets) {
  auto clf = make_one_class(GetParam());
  EXPECT_THROW(clf->train(testdata::three_class(60)), PreconditionError);
}

TEST_P(OneClassSweep, RejectsTooFewBenignRows) {
  // 4 benign rows is under kMinBenignRows regardless of malware volume.
  const Dataset d = build_binary(gaussian_rows(4, 3, 0.0, 1.0, 51),
                                 gaussian_rows(50, 3, 6.0, 1.0, 52));
  auto clf = make_one_class(GetParam());
  EXPECT_THROW(clf->train(d), PreconditionError);
}

TEST_P(OneClassSweep, ScoringBeforeTrainingThrows) {
  auto clf = make_one_class(GetParam());
  const std::vector<double> probe(4, 0.0);
  EXPECT_FALSE(clf->calibrated());
  EXPECT_THROW((void)clf->predict(probe), PreconditionError);
  EXPECT_THROW((void)clf->distribution(probe), PreconditionError);
  EXPECT_THROW((void)clf->anomaly_score(probe), PreconditionError);
}

INSTANTIATE_TEST_SUITE_P(Schemes, OneClassSweep,
                         ::testing::Values("OneClassSvm", "KdeAnomaly",
                                           "MahalanobisThreshold"));

// --- Golden fingerprints ----------------------------------------------------
//
// FNV-1a over the raw double bit patterns of predictions + distributions,
// exactly as in tests/ml/test_dataset_storage.cpp. The constants pin the
// current fit and scoring paths bit-for-bit; they also certify the
// serialization round trip (the loaded model must reproduce the same
// hash).

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t fnv_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv_mix(h, bits);
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::uint64_t hash_predictions(const Classifier& clf, const Dataset& test) {
  std::uint64_t h = kFnvSeed;
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    h = fnv_mix(h, clf.predict(test.features_of(i)));
    for (double p : clf.distribution(test.features_of(i)))
      h = fnv_double(h, p);
  }
  return h;
}

class OneClassFingerprint : public ::testing::Test {
 protected:
  OneClassFingerprint() : data_(testdata::blobs(2, 6, 200, 5.0, 1.0, 123)) {}

  void expect_fingerprint(const std::string& scheme, std::uint64_t want) {
    auto clf = make_classifier(scheme);
    clf->train(data_);
    EXPECT_EQ(hash_predictions(*clf, data_), want) << scheme;
    // The persisted form must reproduce the fit bit-for-bit.
    std::ostringstream out;
    save_model(out, *clf);
    std::istringstream in(out.str());
    const auto loaded = load_model(in);
    EXPECT_EQ(hash_predictions(*loaded, data_), want)
        << scheme << " after round trip";
  }

  Dataset data_;
};

TEST_F(OneClassFingerprint, OneClassSvm) {
  expect_fingerprint("OneClassSvm", 0x6c89b0b9814d5d68ull);
}

TEST_F(OneClassFingerprint, KdeAnomaly) {
  expect_fingerprint("KdeAnomaly", 0x6a939170551fbbf3ull);
}

TEST_F(OneClassFingerprint, MahalanobisThreshold) {
  expect_fingerprint("MahalanobisThreshold", 0xaccf9eaa892422f4ull);
}

}  // namespace
}  // namespace hmd::ml
