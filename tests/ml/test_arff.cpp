#include "ml/arff.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"

namespace hmd::ml {
namespace {

TEST(Arff, WriteContainsHeaderSections) {
  const Dataset d = testdata::separable_binary(5);
  std::ostringstream out;
  write_arff(out, d);
  const std::string s = out.str();
  EXPECT_NE(s.find("@relation blobs"), std::string::npos);
  EXPECT_NE(s.find("@attribute 'f0' numeric"), std::string::npos);
  EXPECT_NE(s.find("@attribute 'class' {c0,c1}"), std::string::npos);
  EXPECT_NE(s.find("@data"), std::string::npos);
}

TEST(Arff, RoundTripPreservesData) {
  const Dataset d = testdata::three_class(20);
  std::ostringstream out;
  write_arff(out, d);
  std::istringstream in(out.str());
  const Dataset r = read_arff(in);
  ASSERT_EQ(r.num_instances(), d.num_instances());
  ASSERT_EQ(r.num_attributes(), d.num_attributes());
  EXPECT_EQ(r.num_classes(), 3u);
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    EXPECT_EQ(r.class_of(i), d.class_of(i));
    for (std::size_t f = 0; f < d.num_features(); ++f)
      EXPECT_NEAR(r.features_of(i)[f], d.features_of(i)[f], 1e-4);
  }
}

TEST(Arff, ParsesUnquotedAttributeNames) {
  std::istringstream in(
      "@relation t\n"
      "@attribute width numeric\n"
      "@attribute class {yes,no}\n"
      "@data\n"
      "1.5,yes\n");
  const Dataset d = read_arff(in);
  EXPECT_EQ(d.attribute(0).name(), "width");
  EXPECT_EQ(d.class_of(0), 0u);
}

TEST(Arff, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "% a comment\n"
      "@relation t\n"
      "\n"
      "@attribute f numeric\n"
      "@attribute class {a,b}\n"
      "@data\n"
      "% another\n"
      "2.0,b\n");
  const Dataset d = read_arff(in);
  EXPECT_EQ(d.num_instances(), 1u);
  EXPECT_EQ(d.class_of(0), 1u);
}

TEST(Arff, MissingDataSectionThrows) {
  std::istringstream in("@relation t\n@attribute f numeric\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, NumericClassRejected) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute g numeric\n@data\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, WrongFieldCountThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute class {a,b}\n@data\n"
      "1.0,a,extra\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, EmptyDataSectionThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute class {a,b}\n@data\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, CommentsOnlyDataSectionThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute class {a,b}\n@data\n"
      "% no rows here\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, TruncatedFileThrows) {
  // File cut off before the @data marker ever appears.
  std::istringstream in("@relation t\n@attribute f numeric\n@attribute cl");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, TruncatedNominalSpecThrows) {
  std::istringstream in("@relation t\n@attribute class {a,b\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, UnterminatedQuotedAttributeNameThrows) {
  std::istringstream in("@relation t\n@attribute 'oops numeric\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, TooFewFieldsThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute g numeric\n"
      "@attribute class {a,b}\n@data\n"
      "1.0,a\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, NonNumericCellThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute class {a,b}\n@data\n"
      "not_a_number,a\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, StrayHeaderGarbageThrows) {
  std::istringstream in("@relation t\nbogus line\n@data\n");
  EXPECT_THROW(read_arff(in), ParseError);
}

TEST(Arff, UnknownNominalValueThrows) {
  std::istringstream in(
      "@relation t\n@attribute f numeric\n@attribute class {a,b}\n@data\n"
      "1.0,z\n");
  EXPECT_THROW(read_arff(in), Error);
}

TEST(CsvBridge, DatasetFromCsvInfersClasses) {
  CsvTable table;
  table.header = {"f0", "f1", "class"};
  table.rows = {{"1.0", "2.0", "malware"},
                {"3.0", "4.0", "benign"},
                {"5.0", "6.0", "malware"}};
  const Dataset d = dataset_from_csv(table);
  EXPECT_EQ(d.num_classes(), 2u);
  // First-appearance order.
  EXPECT_EQ(d.class_attribute().values()[0], "malware");
  EXPECT_EQ(d.class_of(1), 1u);
  EXPECT_DOUBLE_EQ(d.features_of(2)[0], 5.0);
}

TEST(CsvBridge, ExplicitClassOrderRespected) {
  CsvTable table;
  table.header = {"f", "class"};
  table.rows = {{"1", "x"}};
  const Dataset d = dataset_from_csv(table, {"y", "x"});
  EXPECT_EQ(d.class_of(0), 1u);
}

TEST(CsvBridge, UnknownClassValueThrows) {
  CsvTable table;
  table.header = {"f", "class"};
  table.rows = {{"1", "zzz"}};
  EXPECT_THROW(dataset_from_csv(table, {"a", "b"}), Error);
}

TEST(CsvBridge, RoundTripThroughCsv) {
  const Dataset d = testdata::separable_binary(15);
  std::ostringstream out;
  write_dataset_csv(out, d);
  std::istringstream in(out.str());
  const CsvTable table = read_csv(in);
  const Dataset r = dataset_from_csv(table, {"c0", "c1"});
  ASSERT_EQ(r.num_instances(), d.num_instances());
  for (std::size_t i = 0; i < d.num_instances(); ++i)
    EXPECT_EQ(r.class_of(i), d.class_of(i));
}

TEST(CsvBridge, BadNumericCellThrows) {
  CsvTable table;
  table.header = {"f", "class"};
  table.rows = {{"abc", "a"}};
  EXPECT_THROW(dataset_from_csv(table), ParseError);
}

}  // namespace
}  // namespace hmd::ml
