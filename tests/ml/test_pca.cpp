#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hmd::ml {
namespace {

/// Dataset where feature 0 carries almost all variance, feature 2 is pure
/// small noise, and feature 1 duplicates feature 0.
Dataset variance_structured(std::size_t n = 400, std::uint64_t seed = 3) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("big");
  attrs.emplace_back("copy");
  attrs.emplace_back("noise");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.normal(0.0, 10.0);
    d.add({{v, v + rng.normal(0.0, 0.1), rng.normal(0.0, 1.0),
            static_cast<double>(i % 2)}});
  }
  return d;
}

TEST(Pca, RejectsBadCutoff) {
  EXPECT_THROW(PrincipalComponents(0.0), PreconditionError);
  EXPECT_THROW(PrincipalComponents(1.5), PreconditionError);
}

TEST(Pca, EigenvaluesDescendAndSumToFeatureCount) {
  // Correlation-matrix PCA: eigenvalues sum to d.
  PrincipalComponents pca(1.0);
  const Dataset d = testdata::blobs(2, 5, 200, 2.0, 1.0, 7);
  pca.fit(d);
  double total = 0.0;
  for (std::size_t j = 0; j < pca.eigenvalues().size(); ++j) {
    total += pca.eigenvalues()[j];
    if (j > 0)
      EXPECT_LE(pca.eigenvalues()[j], pca.eigenvalues()[j - 1]);
  }
  EXPECT_NEAR(total, 5.0, 1e-6);
}

TEST(Pca, CorrelatedPairCollapsesToOneComponent) {
  PrincipalComponents pca(0.95);
  pca.fit(variance_structured());
  // "big" and "copy" are nearly identical → their shared component
  // dominates; 95% of variance needs only 2 of 3 components.
  EXPECT_LE(pca.num_components(), 2u);
}

TEST(Pca, ExplainedVarianceRatiosSumToOne) {
  PrincipalComponents pca(1.0);
  pca.fit(testdata::three_class());
  double total = 0.0;
  for (std::size_t j = 0; j < pca.num_input_features(); ++j)
    total += pca.explained_variance_ratio(j);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pca, TransformProducesRetainedComponentCount) {
  PrincipalComponents pca(0.95);
  const Dataset d = testdata::blobs(2, 6, 100, 2.0, 1.0, 9);
  pca.fit(d);
  const auto z = pca.transform(d.features_of(0));
  EXPECT_EQ(z.size(), pca.num_components());
}

TEST(Pca, TransformedComponentsAreUncorrelated) {
  PrincipalComponents pca(1.0);
  const Dataset d = testdata::blobs(2, 4, 500, 1.0, 1.0, 11);
  pca.fit(d);
  std::vector<double> pc0, pc1;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto z = pca.transform(d.features_of(i));
    pc0.push_back(z[0]);
    pc1.push_back(z[1]);
  }
  EXPECT_NEAR(pearson_correlation(pc0, pc1), 0.0, 0.05);
}

TEST(Pca, Project2dMatchesTransform) {
  PrincipalComponents pca(1.0);
  const Dataset d = testdata::blobs(2, 4, 100, 2.0, 1.0, 13);
  pca.fit(d);
  const auto z = pca.transform(d.features_of(5));
  const auto [p0, p1] = pca.project2d(d.features_of(5));
  EXPECT_NEAR(p0, z[0], 1e-12);
  EXPECT_NEAR(p1, z[1], 1e-12);
}

TEST(Pca, Project2dSeparatesSeparableClasses) {
  // The thesis's Figs. 9-12: class clusters visible in PC1/PC2 space.
  PrincipalComponents pca(0.95);
  const Dataset d = testdata::separable_binary(200);
  pca.fit(d);
  RunningStats pc1_a, pc1_b;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    const auto [p0, p1] = pca.project2d(d.features_of(i));
    (d.class_of(i) == 0 ? pc1_a : pc1_b).add(p0);
  }
  const double gap = std::abs(pc1_a.mean() - pc1_b.mean());
  EXPECT_GT(gap, 2.0 * (pc1_a.stddev() + pc1_b.stddev()));
}

TEST(Pca, RankedFeaturesCoverAllInputs) {
  PrincipalComponents pca(0.95);
  const Dataset d = testdata::blobs(3, 6, 100, 2.0, 1.0, 17);
  pca.fit(d);
  const auto ranked = pca.ranked_features();
  EXPECT_EQ(ranked.size(), 6u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
}

TEST(Pca, NoiseRanksBelowSignal) {
  PrincipalComponents pca(0.95);
  pca.fit(variance_structured());
  const auto ranked = pca.ranked_features();
  // "noise" (index 2) must rank last.
  EXPECT_EQ(ranked.back().index, 2u);
  EXPECT_EQ(ranked.back().name, "noise");
}

TEST(Pca, UnfittedQueriesThrow) {
  PrincipalComponents pca;
  EXPECT_THROW((void)pca.transform(std::vector<double>{1.0}),
               PreconditionError);
  EXPECT_THROW((void)pca.ranked_features(), PreconditionError);
  EXPECT_THROW((void)pca.explained_variance_ratio(0), PreconditionError);
}

TEST(Pca, DegenerateDataThrows) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("c1");
  attrs.emplace_back("c2");
  attrs.emplace_back("class", std::vector<std::string>{"a", "b"});
  Dataset d(std::move(attrs));
  for (int i = 0; i < 10; ++i) d.add({{1.0, 2.0, 0.0}});
  PrincipalComponents pca;
  EXPECT_THROW(pca.fit(d), Error);
}

TEST(TopPcaFeatures, ReturnsRequestedCount) {
  const Dataset d = testdata::blobs(2, 8, 150, 2.0, 1.0, 19);
  const auto top3 = top_pca_features(d, 3);
  EXPECT_EQ(top3.size(), 3u);
  const auto top99 = top_pca_features(d, 99);
  EXPECT_EQ(top99.size(), 8u);
}

// Cutoff sweep: more variance retained → at least as many components.
class CutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CutoffSweep, ComponentCountMonotoneInCutoff) {
  const Dataset d = testdata::blobs(3, 8, 200, 1.5, 1.0, 23);
  PrincipalComponents lo(GetParam());
  PrincipalComponents hi(1.0);
  lo.fit(d);
  hi.fit(d);
  EXPECT_LE(lo.num_components(), hi.num_components());
  EXPECT_GE(lo.num_components(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CutoffSweep,
                         ::testing::Values(0.5, 0.75, 0.9, 0.95, 0.99));

}  // namespace
}  // namespace hmd::ml
