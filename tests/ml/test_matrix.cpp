#include "ml/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), PreconditionError);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = 7.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 7.0);
}

TEST(Matrix, Product) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW((void)(a * b), PreconditionError);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const auto y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, SymmetryCheck) {
  Matrix m(2, 2);
  m(0, 1) = 3.0;
  m(1, 0) = 3.0;
  EXPECT_TRUE(m.is_symmetric());
  m(1, 0) = 3.1;
  EXPECT_FALSE(m.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Covariance, KnownValues) {
  // Two perfectly correlated columns.
  Matrix data(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    data(i, 0) = static_cast<double>(i);
    data(i, 1) = 2.0 * static_cast<double>(i);
  }
  const Matrix cov = covariance_matrix(data);
  EXPECT_NEAR(cov(0, 0), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 20.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 10.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cov(0, 1), cov(1, 0));
}

TEST(Correlation, PerfectAndConstant) {
  Matrix data(5, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    data(i, 0) = static_cast<double>(i);
    data(i, 1) = -3.0 * static_cast<double>(i);
    data(i, 2) = 42.0;  // constant
  }
  const Matrix corr = correlation_matrix(data);
  EXPECT_NEAR(corr(0, 1), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(corr(0, 2), 0.0);
}

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-10);
}

TEST(Jacobi, KnownTwoByTwo) {
  // [[2,1],[1,2]] → eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2; m(0, 1) = 1; m(1, 0) = 1; m(1, 1) = 2;
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(eig.eigenvectors(0, 0), eig.eigenvectors(1, 0), 1e-8);
}

TEST(Jacobi, RejectsAsymmetric) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  EXPECT_THROW(jacobi_eigen(m), PreconditionError);
}

TEST(Jacobi, ReconstructsMatrix) {
  // A = V diag(λ) V^T must hold.
  Rng rng(17);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  const auto eig = jacobi_eigen(a);
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = eig.eigenvalues[i];
  const Matrix rec =
      eig.eigenvectors * lambda * eig.eigenvectors.transposed();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
}

TEST(Jacobi, EigenvectorsAreOrthonormal) {
  Rng rng(23);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  const auto eig = jacobi_eigen(a);
  const Matrix vtv = eig.eigenvectors.transposed() * eig.eigenvectors;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(Jacobi, EigenvaluesSortedDescending) {
  Rng rng(29);
  const std::size_t n = 10;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
  const auto eig = jacobi_eigen(a);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
}

// Property sweep: trace preservation across sizes.
class JacobiSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JacobiSizeSweep, TraceEqualsEigenvalueSum) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Matrix a(n, n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.normal();
      a(j, i) = a(i, j);
    }
    trace += a(i, i);
  }
  const auto eig = jacobi_eigen(a);
  double sum = 0.0;
  for (double v : eig.eigenvalues) sum += v;
  EXPECT_NEAR(sum, trace, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSizeSweep,
                         ::testing::Values(2u, 3u, 5u, 8u, 16u));

}  // namespace
}  // namespace hmd::ml
