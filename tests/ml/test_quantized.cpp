// QuantizedModel — the int8/q16 low-latency serving tier. The q16 mode
// must work for every scheme; the int8 mode is limited to the affine
// schemes and must stay close to float accuracy on well-separated data
// (bit-identity is NOT promised — the contract is a measured delta).
#include "ml/quantized.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ml/evaluation.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/registry.hpp"
#include "ml/svm.hpp"
#include "tests/ml/synthetic_data.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hmd::ml {
namespace {

/// Non-owning handle matching the serving-side wrapping convention.
std::shared_ptr<const Classifier> borrow(const Classifier& c) {
  return {std::shared_ptr<void>(), &c};
}

double accuracy_of(const Classifier& clf, const DatasetView& data) {
  std::size_t hits = 0;
  for (std::size_t r = 0; r < data.num_instances(); ++r) {
    if (clf.predict(data.features_of(r)) == data.class_of(r)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(data.num_instances());
}

TEST(Quantized, Int8SupportedExactlyForAffineSchemes) {
  // Binary data: the one-class anomaly schemes in the registry refuse
  // multiclass training sets.
  const auto data = testdata::separable_binary(60);
  for (const auto& scheme : known_schemes()) {
    const auto clf = make_classifier(scheme);
    clf->train(data);
    const bool expect =
        scheme == "MLR" || scheme == "SVM" || scheme == "MLP";
    EXPECT_EQ(QuantizedModel::int8_supported(*clf), expect) << scheme;
  }
}

TEST(Quantized, WrapRequiresTrainedBaseAndRefusesTrain) {
  Logistic untrained;
  EXPECT_THROW(QuantizedModel(borrow(untrained), QuantizedModel::Mode::kInt8),
               Error);
  Logistic trained;
  const auto data = testdata::separable_binary();
  trained.train(data);
  QuantizedModel q(borrow(trained), QuantizedModel::Mode::kInt8);
  EXPECT_THROW(q.train(data), Error);
}

TEST(Quantized, NamesAndUnwrapExposeTierAndScheme) {
  Logistic model;
  model.train(testdata::separable_binary());
  const QuantizedModel int8(borrow(model), QuantizedModel::Mode::kInt8);
  const QuantizedModel q16(borrow(model), QuantizedModel::Mode::kQ16Input);
  EXPECT_EQ(int8.name(), "int8/MLR");
  EXPECT_EQ(q16.name(), "q16/MLR");
  EXPECT_EQ(&int8.unwrap(), &model.unwrap());
  EXPECT_EQ(int8.num_classes(), model.num_classes());
}

TEST(Quantized, Int8StaysCloseToFloatOnSeparableData) {
  const auto data = testdata::blobs(3, 8, 150, 4.0, 1.0, 71);
  Rng rng(72);
  const auto [train, test] = data.stratified_split_views(0.6, rng);
  struct Case {
    const char* name;
    std::unique_ptr<Classifier> model;
  };
  std::vector<Case> cases;
  cases.push_back({"MLR", std::make_unique<Logistic>()});
  cases.push_back({"SVM", std::make_unique<LinearSvm>()});
  cases.push_back({"MLP", std::make_unique<Mlp>()});
  for (auto& c : cases) {
    c.model->train(train);
    const double base = accuracy_of(*c.model, test);
    const QuantizedModel int8(borrow(*c.model), QuantizedModel::Mode::kInt8);
    const QuantizedModel q16(borrow(*c.model),
                             QuantizedModel::Mode::kQ16Input);
    EXPECT_GE(base, 0.85) << c.name;  // the problem is easy by design
    EXPECT_NEAR(accuracy_of(int8, test), base, 0.05) << c.name;
    EXPECT_NEAR(accuracy_of(q16, test), base, 0.02) << c.name;
  }
}

TEST(Quantized, BatchMatchesPerRowBitForBit) {
  // Whatever the tier's rounding does, its batch override must agree with
  // its own per-row path exactly — the bench's bit_identical gate.
  Logistic model;
  const auto data = testdata::blobs(3, 8, 120, 3.0, 1.0, 73);
  model.train(data);
  for (const auto mode :
       {QuantizedModel::Mode::kInt8, QuantizedModel::Mode::kQ16Input}) {
    const QuantizedModel q(borrow(model), mode);
    const std::size_t rows = 50, d = 8, k = q.num_classes();
    std::vector<double> flat;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t f = 0; f < d; ++f)
        flat.push_back(data.instance(r).values[f]);
    std::vector<double> batch(rows * k);
    q.distribution_batch(flat, d, batch);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto one = q.distribution(
          std::span<const double>(flat.data() + r * d, d));
      for (std::size_t c = 0; c < k; ++c)
        ASSERT_EQ(batch[r * k + c], one[c])
            << "mode=" << static_cast<int>(mode) << " r=" << r;
    }
  }
}

TEST(Quantized, ExplicitCalibrationOverridesDerivedGrid) {
  Logistic model;
  model.train(testdata::separable_binary());
  // A wildly oversized grid still predicts (coarser, maybe worse — but it
  // must construct and score), and a per-feature vector of the right
  // length is accepted.
  const std::size_t d = 4;
  const QuantizedModel q(borrow(model), QuantizedModel::Mode::kInt8,
                         std::vector<double>(d, 100.0));
  const std::vector<double> x(d, 0.5);
  const auto dist = q.distribution(x);
  ASSERT_EQ(dist.size(), model.num_classes());
  double total = 0.0;
  for (double v : dist) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace hmd::ml
