// Shared synthetic datasets for classifier tests.
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace hmd::ml::testdata {

/// Gaussian blobs: `k` classes with means spaced `separation` apart along
/// each of `d` features, `per_class` rows each.
inline Dataset blobs(std::size_t k, std::size_t d, std::size_t per_class,
                     double separation, double noise, std::uint64_t seed) {
  std::vector<Attribute> attrs;
  for (std::size_t f = 0; f < d; ++f)
    attrs.emplace_back("f" + std::to_string(f));
  std::vector<std::string> names;
  for (std::size_t c = 0; c < k; ++c) names.push_back("c" + std::to_string(c));
  attrs.emplace_back("class", names);
  Dataset data(std::move(attrs), "blobs");
  Rng rng(seed);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      Instance row;
      for (std::size_t f = 0; f < d; ++f)
        row.values.push_back(
            rng.normal(separation * static_cast<double>(c), noise));
      row.values.push_back(static_cast<double>(c));
      data.add(std::move(row));
    }
  }
  return data;
}

/// Well-separated binary problem (accuracy ceiling ≈ 1).
inline Dataset separable_binary(std::size_t n_per_class = 200,
                                std::uint64_t seed = 5) {
  return blobs(2, 4, n_per_class, 4.0, 1.0, seed);
}

/// Overlapping binary problem (Bayes accuracy well below 1).
inline Dataset overlapping_binary(std::size_t n_per_class = 300,
                                  std::uint64_t seed = 6) {
  return blobs(2, 4, n_per_class, 1.0, 1.5, seed);
}

/// Three-class problem.
inline Dataset three_class(std::size_t n_per_class = 150,
                           std::uint64_t seed = 8) {
  return blobs(3, 5, n_per_class, 3.0, 1.0, seed);
}

/// XOR: not linearly separable; trees/MLP solve it, linear models cannot.
inline Dataset xor_problem(std::size_t n = 400, std::uint64_t seed = 9) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("x");
  attrs.emplace_back("y");
  attrs.emplace_back("class", std::vector<std::string>{"off", "on"});
  Dataset data(std::move(attrs), "xor");
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    Instance row;
    row.values.push_back((a ? 1.0 : -1.0) + rng.normal(0.0, 0.2));
    row.values.push_back((b ? 1.0 : -1.0) + rng.normal(0.0, 0.2));
    row.values.push_back((a != b) ? 1.0 : 0.0);
    data.add(std::move(row));
  }
  return data;
}

/// A problem decided by one feature only (ideal for OneR).
inline Dataset single_feature_rule(std::size_t n = 300,
                                   std::uint64_t seed = 10) {
  std::vector<Attribute> attrs;
  attrs.emplace_back("noise");
  attrs.emplace_back("signal");
  attrs.emplace_back("class", std::vector<std::string>{"lo", "hi"});
  Dataset data(std::move(attrs), "rule");
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hi = rng.bernoulli(0.5);
    Instance row;
    row.values.push_back(rng.normal(0.0, 1.0));
    row.values.push_back(hi ? rng.normal(5.0, 0.5) : rng.normal(0.0, 0.5));
    row.values.push_back(hi ? 1.0 : 0.0);
    data.add(std::move(row));
  }
  return data;
}

}  // namespace hmd::ml::testdata
