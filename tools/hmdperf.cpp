// hmdperf — perf-stat over the simulator, from the command line.
//
// Runs one sandboxed sample (or MiBench kernel) under the HPC collector and
// prints the perf-style interval log, exactly the intermediate artifact the
// thesis's data collection produced per program.
//
// Usage:
//   hmdperf [--class <benign|backdoor|rootkit|trojan|virus|worm>]
//           [--kernel <qsort|dijkstra|crc32|jpeg|susan|sha>]
//           [--seed N] [--windows N] [--ops N] [--ideal-pmu] [--csv]
//           [--metrics-out FILE] [--trace-out FILE]
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "hwsim/core.hpp"
#include "perf/collector.hpp"
#include "perf/perf_log.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"
#include "workload/mibench.hpp"
#include "workload/sandbox.hpp"

namespace {

using namespace hmd;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: hmdperf [--class <name> | --kernel <name>] [--seed N]\n"
      "               [--windows N] [--ops N] [--ideal-pmu] [--csv]\n"
      "  --class    application class to sample (default: virus)\n"
      "  --kernel   MiBench kernel instead of a malware/benign class\n"
      "  --seed     sample seed (default 42)\n"
      "  --windows  10 ms windows to record (default 8)\n"
      "  --ops      simulated ops per window (default 3000)\n"
      "  --ideal-pmu  read exact counts (no 8-register multiplexing)\n"
      "  --csv      emit the combined CSV instead of the text log\n"
      "  --metrics-out FILE  write process metrics JSON on exit\n"
      "  --trace-out FILE    collect spans; write Chrome trace JSON\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_class = "virus";
  std::string kernel;
  std::uint64_t seed = 42;
  perf::CollectorConfig cfg;
  cfg.num_windows = 8;
  cfg.ops_per_window = 3000;
  bool csv = false;
  std::string metrics_path, trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--class") app_class = next();
    else if (arg == "--kernel") kernel = next();
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(hmd::parse_int(next()));
    else if (arg == "--windows") cfg.num_windows = static_cast<std::size_t>(hmd::parse_int(next()));
    else if (arg == "--ops") cfg.ops_per_window = static_cast<std::size_t>(hmd::parse_int(next()));
    else if (arg == "--ideal-pmu") cfg.ideal_pmu = true;
    else if (arg == "--csv") csv = true;
    else if (arg == "--metrics-out") metrics_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else usage();
  }
  if (!trace_path.empty()) hmd::tracer().set_enabled(true);

  try {
    perf::RunLog log;
    log.events = perf::default_feature_events();
    const perf::HpcCollector collector(cfg);
    hwsim::Core core(hwsim::CoreConfig{},
                     hwsim::MemoryHierarchy::miniature());

    if (!kernel.empty()) {
      // A named MiBench kernel, un-jittered.
      workload::TraceGenerator gen(workload::mibench_profile(kernel), seed);
      log.sample_id = "mibench_" + kernel;
      log.label = "benign";
      log.samples = collector.collect(core, gen, seed);
    } else {
      workload::SampleRecord rec{
          .id = hmd::format("sample_%llu",
                            static_cast<unsigned long long>(seed)),
          .label = workload::app_class_from_name(app_class),
          .seed = seed};
      workload::Sandbox sandbox(rec);
      log.sample_id = rec.id;
      log.label = app_class;
      log.samples = collector.collect(core, sandbox, seed);
    }

    if (csv)
      perf::combine_logs_to_csv(std::cout, {log});
    else
      perf::write_perf_log(std::cout, log);

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) throw Error("cannot write " + metrics_path);
      metrics().write_json(out);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) throw Error("cannot write " + trace_path);
      tracer().write_chrome_json(out);
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmdperf: " << e.what() << '\n';
    return 1;
  }
}
