// hmdperf — perf-stat over the simulator, from the command line.
//
// Runs one sandboxed sample (or MiBench kernel) under the HPC collector and
// prints the perf-style interval log, exactly the intermediate artifact the
// thesis's data collection produced per program.
//
// Usage:
//   hmdperf [--class <benign|backdoor|rootkit|trojan|virus|worm>]
//           [--kernel <qsort|dijkstra|crc32|jpeg|susan|sha>]
//           [--seed N] [--windows N] [--ops N] [--ideal-pmu] [--csv]
//           [--metrics-out FILE] [--trace-out FILE]
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "hwsim/core.hpp"
#include "perf/collector.hpp"
#include "perf/perf_log.hpp"
#include "util/cli.hpp"
#include "ml/kernels.hpp"
#include "util/cli_presets.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"
#include "workload/mibench.hpp"
#include "workload/sandbox.hpp"

namespace {

using namespace hmd;

}  // namespace

int main(int argc, char** argv) {
  std::string app_class = "virus";
  std::string kernel;
  std::uint64_t seed = 42;
  perf::CollectorConfig cfg;
  cfg.num_windows = 8;
  cfg.ops_per_window = 3000;
  bool csv = false;
  std::string metrics_path, trace_path;
  std::string isa_name;

  ArgParser parser("hmdperf",
                   "perf-stat over the simulator: one sample's interval log.");
  parser.add_string("--class", &app_class, "NAME",
                    "application class to sample (default: virus)");
  parser.add_string("--kernel", &kernel, "NAME",
                    "MiBench kernel instead of a malware/benign class");
  cli::add_seed_flag(parser, &seed, "sample");
  parser.add_size("--windows", &cfg.num_windows, "N",
                  "10 ms windows to record (default 8)");
  parser.add_size("--ops", &cfg.ops_per_window, "N",
                  "simulated ops per window (default 3000)");
  parser.add_flag("--ideal-pmu", &cfg.ideal_pmu,
                  "read exact counts (no 8-register multiplexing)");
  parser.add_flag("--csv", &csv,
                  "emit the combined CSV instead of the text log");
  cli::add_isa_flag(parser, &isa_name);
  cli::add_observability_flags(parser, &metrics_path, &trace_path);
  parser.parse_or_exit(argc, argv);
  if (!isa_name.empty()) {
    try {
      ml::kernels::force_isa_by_name(isa_name);
    } catch (const hmd::Error& e) {
      std::cerr << "hmdperf: " << e.what() << '\n';
      return 2;
    }
  }
  if (!trace_path.empty()) hmd::tracer().set_enabled(true);

  try {
    perf::RunLog log;
    log.events = perf::default_feature_events();
    const perf::HpcCollector collector(cfg);
    hwsim::Core core(hwsim::CoreConfig{},
                     hwsim::MemoryHierarchy::miniature());

    if (!kernel.empty()) {
      // A named MiBench kernel, un-jittered.
      workload::TraceGenerator gen(workload::mibench_profile(kernel), seed);
      log.sample_id = "mibench_" + kernel;
      log.label = "benign";
      log.samples = collector.collect(core, gen, seed);
    } else {
      workload::SampleRecord rec{
          .id = hmd::format("sample_%llu",
                            static_cast<unsigned long long>(seed)),
          .label = workload::app_class_from_name(app_class),
          .seed = seed};
      workload::Sandbox sandbox(rec);
      log.sample_id = rec.id;
      log.label = app_class;
      log.samples = collector.collect(core, sandbox, seed);
    }

    if (csv)
      perf::combine_logs_to_csv(std::cout, {log});
    else
      perf::write_perf_log(std::cout, log);

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) throw Error("cannot write " + metrics_path);
      metrics().write_json(out);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) throw Error("cannot write " + trace_path);
      tracer().write_chrome_json(out);
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmdperf: " << e.what() << '\n';
    return 1;
  }
}
