// hmd_train — train a detector from a dataset CSV and save the model or a
// full deployment bundle. Completes the CLI workflow:
//
//   hmd_dataset --scale 0.2 --out corpus.csv
//   hmd_train --data corpus.csv --scheme JRip --bundle detector.bundle
//
// Usage:
//   hmd_train --data FILE [--scheme NAME] [--binary] [--top-k N]
//             [--threshold P] [--confirm N] [--seed N] [--jobs N]
//             [--cv K] [--sweep] [--model FILE | --bundle FILE]
#include <fstream>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "core/deployment.hpp"
#include "core/feature_reduction.hpp"
#include "ml/arff.hpp"
#include "ml/cross_validation.hpp"
#include "ml/evaluation.hpp"
#include "ml/registry.hpp"
#include "ml/serialization.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr <<
      "usage: hmd_train --data FILE [options]\n"
      "  --data FILE    dataset CSV (16 counters + class, from hmd_dataset)\n"
      "  --scheme NAME  classifier scheme (default MLR)\n"
      "  --binary       relabel to benign/malware before training\n"
      "  --top-k N      PCA-reduce to the top N counters (0 = all, default)\n"
      "  --threshold P  bundle alarm threshold (default 0.97)\n"
      "  --confirm N    bundle confirmation windows (default 4)\n"
      "  --seed N       split seed (default 7)\n"
      "  --jobs N       experiment threads (default: HMD_JOBS or hardware)\n"
      "  --cv K         report K-fold cross-validation of the scheme\n"
      "  --sweep        compare the full study classifier set in parallel\n"
      "                 (binary study set with --binary, else MLR/MLP/SVM)\n"
      "  --model FILE   save the bare model\n"
      "  --bundle FILE  save a full deployment bundle (binary only)\n";
  std::exit(2);
}

/// Fan the study classifier sweep across the pool and print a table.
void run_sweep(const hmd::ml::Dataset& train, const hmd::ml::Dataset& test,
               bool binary, hmd::ThreadPool& pool) {
  using namespace hmd;
  const std::vector<std::string> schemes =
      binary ? ml::binary_study_classifiers()
             : ml::multiclass_study_classifiers();
  std::cerr << "sweeping " << schemes.size() << " classifiers across "
            << pool.size() << " threads\n";
  const auto evals =
      parallel_map(&pool, schemes, [&](const std::string& scheme) {
        auto clf = ml::make_classifier(scheme);
        clf->train(train);
        return ml::evaluate(*clf, test);
      });
  TextTable table("classifier sweep (test split)");
  table.set_header({"scheme", "accuracy %", "macro recall %", "kappa"});
  for (std::size_t i = 0; i < schemes.size(); ++i)
    table.add_row({schemes[i], format("%.2f", evals[i].accuracy() * 100.0),
                   format("%.2f", evals[i].macro_recall() * 100.0),
                   format("%.3f", evals[i].kappa())});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;

  std::string data_path, scheme = "MLR", model_path, bundle_path;
  bool binary = false, sweep = false;
  std::size_t top_k = 0, cv_folds = 0, jobs = default_jobs();
  core::OnlineDetectorConfig policy;
  std::uint64_t seed = 7;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
      };
      if (arg == "--data") data_path = next();
      else if (arg == "--scheme") scheme = next();
      else if (arg == "--binary") binary = true;
      else if (arg == "--top-k") top_k = static_cast<std::size_t>(parse_int(next()));
      else if (arg == "--threshold") policy.flag_threshold = parse_double(next());
      else if (arg == "--confirm") policy.confirm_windows = static_cast<std::size_t>(parse_int(next()));
      else if (arg == "--seed") seed = static_cast<std::uint64_t>(parse_int(next()));
      else if (arg == "--jobs") jobs = static_cast<std::size_t>(parse_int(next()));
      else if (arg == "--cv") cv_folds = static_cast<std::size_t>(parse_int(next()));
      else if (arg == "--sweep") sweep = true;
      else if (arg == "--model") model_path = next();
      else if (arg == "--bundle") bundle_path = next();
      else usage();
    }
    if (data_path.empty()) usage();

    const ml::Dataset multi =
        core::DatasetBuilder::load_dataset_csv(data_path);
    std::cerr << "loaded " << multi.num_instances() << " rows\n";

    // Feature reduction (needs the 6-class view for per-class rankings).
    core::FeatureSet features;
    if (top_k > 0) {
      const core::FeatureReducer reducer(multi);
      features = reducer.binary_top_features(top_k);
      std::cerr << "reduced to: " << join(features.names, ", ") << '\n';
    }

    ml::Dataset labelled =
        binary ? core::DatasetBuilder::to_binary(multi) : multi;
    if (top_k > 0) labelled = labelled.project(features.indices);

    ThreadPool pool(jobs);

    Rng rng(seed);
    const auto [train, test] = labelled.stratified_split(0.7, rng);

    if (sweep) run_sweep(train, test, binary, pool);

    if (cv_folds >= 2) {
      Rng cv_rng(seed);
      const auto cv = ml::cross_validate(
          [&scheme] { return ml::make_classifier(scheme); }, labelled,
          cv_folds, cv_rng, {.num_threads = pool.size(), .pool = &pool});
      std::cerr << format(
          "%s %zu-fold CV: pooled %.2f%%, fold mean %.2f%% (sd %.3f)\n",
          scheme.c_str(), cv_folds, cv.pooled.accuracy() * 100.0,
          cv.mean_accuracy() * 100.0, cv.stddev_accuracy());
    }

    auto model = ml::make_classifier(scheme);
    model->train(train);
    const auto eval = ml::evaluate(*model, test);
    std::cerr << format("%s test accuracy: %.2f%% (kappa %.3f)\n",
                        scheme.c_str(), eval.accuracy() * 100.0,
                        eval.kappa());

    if (!model_path.empty()) {
      std::ofstream out(model_path);
      if (!out) throw Error("cannot write " + model_path);
      ml::save_model(out, *model);
      std::cerr << "wrote model to " << model_path << '\n';
    }
    if (!bundle_path.empty()) {
      if (!binary)
        throw PreconditionError("--bundle requires --binary labels");
      const core::DeploymentBundle bundle(std::move(model), features,
                                          policy);
      std::ofstream out(bundle_path);
      if (!out) throw Error("cannot write " + bundle_path);
      core::save_bundle(out, bundle);
      std::cerr << "wrote bundle to " << bundle_path << '\n';
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_train: " << e.what() << '\n';
    return 1;
  }
}
