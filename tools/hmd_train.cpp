// hmd_train — train a detector from a dataset CSV and save the model or a
// full deployment bundle. Completes the CLI workflow:
//
//   hmd_dataset --scale 0.2 --out corpus.csv
//   hmd_train --data corpus.csv --scheme JRip --bundle detector.bundle
//
// Usage:
//   hmd_train --data FILE [--scheme NAME] [--binary] [--top-k N]
//             [--threshold P] [--confirm N] [--seed N] [--jobs N]
//             [--cv K] [--sweep] [--model FILE | --bundle FILE]
//             [--fallback NAME] [--emit-rtl LANG]
//             [--metrics-out FILE] [--trace-out FILE]
//   hmd_train --list-classifiers
#include <fstream>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "core/deployment.hpp"
#include "core/feature_reduction.hpp"
#include "core/online_detector.hpp"
#include "hw/backend.hpp"
#include "hw/compile.hpp"
#include "hw/fixed_point_eval.hpp"
#include "ml/arff.hpp"
#include "ml/cross_validation.hpp"
#include "ml/evaluation.hpp"
#include "ml/instrumented.hpp"
#include "ml/registry.hpp"
#include "ml/serialization.hpp"
#include "util/cli.hpp"
#include "ml/kernels.hpp"
#include "util/cli_presets.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

void list_classifiers() {
  using namespace hmd;
  TextTable table("known classifier schemes");
  table.set_header({"scheme", "description"});
  for (const std::string& name : ml::known_schemes())
    table.add_row({name, ml::scheme_description(name)});
  table.print(std::cout);
  std::cout << "alias: Logistic -> MLR\n";
}

/// Fan the study classifier sweep across the pool and print a table.
void run_sweep(const hmd::ml::Dataset& train, const hmd::ml::Dataset& test,
               bool binary, hmd::ThreadPool& pool) {
  using namespace hmd;
  const std::vector<std::string> schemes =
      binary ? ml::binary_study_classifiers()
             : ml::multiclass_study_classifiers();
  std::cerr << "sweeping " << schemes.size() << " classifiers across "
            << pool.size() << " threads\n";
  const auto evals =
      parallel_map(&pool, schemes, [&](const std::string& scheme) {
        auto clf = ml::instrument(ml::make_classifier(scheme));
        TraceSpan timer("");
        clf->train(train);
        const double train_seconds = timer.elapsed_seconds();
        auto report = ml::evaluate(*clf, test);
        report.train_seconds = train_seconds;
        return report;
      });
  TextTable table("classifier sweep (test split)");
  table.set_header({"scheme", "accuracy %", "macro recall %", "kappa",
                    "train ms", "predict ms"});
  for (std::size_t i = 0; i < schemes.size(); ++i)
    table.add_row({schemes[i], format("%.2f", evals[i].accuracy() * 100.0),
                   format("%.2f", evals[i].macro_recall() * 100.0),
                   format("%.3f", evals[i].kappa()),
                   format("%.1f", evals[i].train_seconds * 1e3),
                   format("%.1f", evals[i].predict_seconds * 1e3)});
  table.print(std::cout);
}

/// Replay the held-out binary windows through the runtime monitor, so
/// every training run also reports deployment-side counters (flag rate,
/// alarms) into the metrics registry.
void run_deployment_replay(const hmd::ml::Classifier& model,
                           const hmd::ml::Dataset& test,
                           hmd::core::OnlineDetectorConfig policy,
                           hmd::ThreadPool& pool) {
  using namespace hmd;
  const std::size_t n = test.num_instances();
  const std::size_t d = test.num_features();
  std::vector<double> flat;
  flat.reserve(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = test.features_of(i);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  core::OnlineDetector monitor(model, policy);
  const auto verdicts = monitor.score_windows(flat, d, &pool);
  (void)verdicts;
  std::cerr << format(
      "deployment replay: %zu windows, flag rate %.1f%%, %s\n",
      monitor.windows_seen(), monitor.flag_rate() * 100.0,
      monitor.alarmed()
          ? format("alarm at window %zu", monitor.alarm_window()).c_str()
          : "no alarm");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;

  std::string data_path, scheme = "MLR", model_path, bundle_path;
  std::string fallback_scheme, metrics_path, trace_path;
  std::string isa_name, rtl_lang;
  bool binary = false, sweep = false, list = false;
  std::size_t top_k = 0, cv_folds = 0, jobs = default_jobs();
  core::OnlineDetectorConfig policy;
  std::uint64_t seed = 7;

  ArgParser parser("hmd_train",
                   "Train a detector and save the model or a deployment "
                   "bundle.");
  parser.add_string("--data", &data_path, "FILE",
                    "dataset CSV (16 counters + class, from hmd_dataset)");
  parser.add_string("--scheme", &scheme, "NAME",
                    "classifier scheme (default MLR)");
  parser.add_flag("--binary", &binary,
                  "relabel to benign/malware before training");
  parser.add_size("--top-k", &top_k, "N",
                  "PCA-reduce to the top N counters (0 = all, default)");
  parser.add_double("--threshold", &policy.flag_threshold, "P",
                    "bundle alarm threshold (default 0.97)");
  parser.add_size("--confirm", &policy.confirm_windows, "N",
                  "bundle confirmation windows (default 4)");
  cli::add_seed_flag(parser, &seed, "split");
  parser.add_size("--jobs", &jobs, "N",
                  "experiment threads (default: HMD_JOBS or hardware)");
  parser.add_size("--cv", &cv_folds, "K",
                  "report K-fold cross-validation of the scheme");
  parser.add_flag("--sweep", &sweep,
                  "compare the full study classifier set in parallel");
  cli::add_model_out_flag(parser, &model_path);
  cli::add_bundle_out_flag(parser, &bundle_path);
  parser.add_string("--fallback", &fallback_scheme, "NAME",
                    "also train a degraded-mode fallback for the bundle "
                    "(e.g. OneR; writes a v2 bundle)");
  cli::add_emit_rtl_flag(parser, &rtl_lang);
  cli::add_isa_flag(parser, &isa_name);
  cli::add_observability_flags(parser, &metrics_path, &trace_path);
  parser.add_flag("--list-classifiers", &list,
                  "print every known scheme and exit");
  parser.parse_or_exit(argc, argv);
  if (!isa_name.empty()) {
    try {
      ml::kernels::force_isa_by_name(isa_name);
    } catch (const hmd::Error& e) {
      std::cerr << "hmd_train: " << e.what() << '\n';
      return 2;
    }
  }
  if (list) {
    list_classifiers();
    return 0;
  }

  try {
    if (data_path.empty()) {
      std::cerr << "hmd_train: --data is required\n\n" << parser.help();
      return 2;
    }
    if (!trace_path.empty()) tracer().set_enabled(true);

    const ml::Dataset multi =
        core::DatasetBuilder::load_dataset_csv(data_path);
    std::cerr << "loaded " << multi.num_instances() << " rows\n";

    // Feature reduction (needs the 6-class view for per-class rankings).
    core::FeatureSet features;
    if (top_k > 0) {
      const core::FeatureReducer reducer(multi);
      features = reducer.binary_top_features(top_k);
      std::cerr << "reduced to: " << join(features.names, ", ") << '\n';
    }

    ml::Dataset labelled =
        binary ? core::DatasetBuilder::to_binary(multi) : multi;
    if (top_k > 0) labelled = labelled.project(features.indices);

    ThreadPool pool(jobs);

    Rng rng(seed);
    const auto [train, test] = labelled.stratified_split(0.7, rng);

    if (sweep) run_sweep(train, test, binary, pool);

    if (cv_folds >= 2) {
      Rng cv_rng(seed);
      const auto cv = ml::cross_validate(
          [&scheme] { return ml::make_classifier(scheme); }, labelled,
          cv_folds, cv_rng, {.num_threads = pool.size(), .pool = &pool});
      std::cerr << format(
          "%s %zu-fold CV: pooled %.2f%%, fold mean %.2f%% (sd %.3f)\n",
          scheme.c_str(), cv_folds, cv.pooled.accuracy() * 100.0,
          cv.mean_accuracy() * 100.0, cv.stddev_accuracy());
    }

    auto model = ml::instrument(ml::make_classifier(scheme));
    {
      HMD_TRACE_SPAN("hmd_train/final_model");
      model->train(train);
    }
    const auto eval = ml::evaluate(*model, test);
    std::cerr << format("%s test accuracy: %.2f%% (kappa %.3f)\n",
                        scheme.c_str(), eval.accuracy() * 100.0,
                        eval.kappa());

    // Deployment replay: exercise the OnlineDetector against the held-out
    // windows. With --binary the final model is reused; otherwise a fresh
    // binary view of the data trains a monitor model of the same scheme.
    {
      HMD_TRACE_SPAN("hmd_train/deployment_replay");
      if (binary) {
        run_deployment_replay(*model, test, policy, pool);
      } else if (!ml::is_one_class_scheme(scheme)) {
        // One-class schemes are benign-only detectors; their multiclass
        // run has no meaningful fresh-binary replay.
        Rng replay_rng(seed);
        ml::Dataset bin = core::DatasetBuilder::to_binary(multi);
        if (top_k > 0) bin = bin.project(features.indices);
        const auto [btrain, btest] = bin.stratified_split(0.7, replay_rng);
        auto monitor_model = ml::instrument(ml::make_classifier(scheme));
        monitor_model->train(btrain);
        run_deployment_replay(*monitor_model, btest, policy, pool);
      }
    }

    if (!rtl_lang.empty()) {
      // Render the trained model through the netlist pipeline; the input
      // grid is pinned to the held-out split exactly as the fixed-point
      // evaluation harness calibrates it.
      const hw::Backend& backend = hw::backend_by_name(rtl_lang);
      hw::CompileOptions opts;
      opts.num_features = train.num_features();
      opts.feature_absmax = hw::calibrate_feature_absmax(test);
      Result<hw::CompiledDesign> design = hw::try_compile(*model, std::move(opts));
      if (!design.ok()) {
        std::cerr << "hmd_train: --emit-rtl: " << design.error().to_string()
                  << '\n';
        return 1;
      }
      std::cout << design.value().emit(backend);
      std::cerr << "emitted " << backend.name() << " for scheme " << scheme
                << " (" << design.value().netlist().num_nodes()
                << " nets)\n";
    }

    if (!model_path.empty()) {
      std::ofstream out(model_path);
      if (!out) throw Error("cannot write " + model_path);
      ml::save_model(out, *model);
      std::cerr << "wrote model to " << model_path << '\n';
    }
    if (!bundle_path.empty()) {
      if (!binary)
        throw PreconditionError("--bundle requires --binary labels");
      // A cheap secondary scheme trained on the same split becomes the
      // serving path's degraded-mode model (bundle format v2).
      std::unique_ptr<ml::Classifier> fallback;
      if (!fallback_scheme.empty()) {
        fallback = ml::make_classifier(fallback_scheme);
        fallback->train(train);
        const auto feval = ml::evaluate(*fallback, test);
        std::cerr << format("fallback %s test accuracy: %.2f%%\n",
                            fallback_scheme.c_str(),
                            feval.accuracy() * 100.0);
      }
      const core::DeploymentBundle bundle(std::move(model),
                                          std::move(fallback), features,
                                          policy);
      std::ofstream out(bundle_path);
      if (!out) throw Error("cannot write " + bundle_path);
      core::save_bundle(out, bundle);
      std::cerr << "wrote bundle to " << bundle_path << '\n';
    }

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) throw Error("cannot write " + metrics_path);
      metrics().write_json(out);
      std::cerr << "wrote metrics to " << metrics_path << '\n';
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) throw Error("cannot write " + trace_path);
      tracer().write_chrome_json(out);
      std::cerr << "wrote trace to " << trace_path << '\n';
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_train: " << e.what() << '\n';
    return 1;
  }
}
