// hmd_dataset — generate the labelled HPC dataset from the command line.
//
// Reproduces the thesis's data-collection stage at any scale and writes the
// result as CSV or ARFF (the formats its WEKA stage consumed).
//
// Usage:
//   hmd_dataset [--scale F] [--windows N] [--ops N] [--seed N]
//               [--binary] [--arff] [--out FILE]
#include <fstream>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "ml/arff.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr <<
      "usage: hmd_dataset [--scale F] [--windows N] [--ops N] [--seed N]\n"
      "                   [--binary] [--arff] [--out FILE]\n"
      "  --scale    database scale vs Table 1 (default 0.1; 1.0 = paper)\n"
      "  --windows  sampling windows per sample (default 8)\n"
      "  --ops      simulated ops per 10 ms window (default 3000)\n"
      "  --seed     master seed (default 2018)\n"
      "  --binary   emit benign/malware labels instead of the 6 classes\n"
      "  --arff     emit ARFF instead of CSV\n"
      "  --out      output path (default: stdout)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmd;

  double scale = 0.1;
  core::PipelineConfig cfg;
  cfg.collector.num_windows = 8;
  cfg.collector.ops_per_window = 3000;
  bool binary = false;
  bool arff = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--scale") scale = parse_double(next());
    else if (arg == "--windows") cfg.collector.num_windows = static_cast<std::size_t>(parse_int(next()));
    else if (arg == "--ops") cfg.collector.ops_per_window = static_cast<std::size_t>(parse_int(next()));
    else if (arg == "--seed") cfg.seed = static_cast<std::uint64_t>(parse_int(next()));
    else if (arg == "--binary") binary = true;
    else if (arg == "--arff") arff = true;
    else if (arg == "--out") out_path = next();
    else usage();
  }

  try {
    cfg.composition = workload::DatabaseComposition::scaled(scale);
    core::DatasetBuilder builder(cfg);
    // Per-sample simulation fans across the shared pool (HMD_JOBS jobs;
    // output is bit-identical to a serial build at any thread count).
    std::cerr << "collecting " << cfg.composition.total() << " samples x "
              << cfg.collector.num_windows << " windows ("
              << global_pool().size() << " jobs)...\n";
    std::size_t last_pct = 0;
    ml::Dataset data = builder.build_multiclass_dataset(
        [&last_pct](std::size_t done, std::size_t total) {
          const std::size_t pct = done * 100 / total;
          if (pct >= last_pct + 10) {
            std::cerr << "  " << pct << "%\n";
            last_pct = pct;
          }
        },
        &global_pool());
    if (binary) data = core::DatasetBuilder::to_binary(data);

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) throw Error("cannot open output file: " + out_path);
      out = &file;
    }
    if (arff)
      ml::write_arff(*out, data);
    else
      ml::write_dataset_csv(*out, data);
    std::cerr << "wrote " << data.num_instances() << " rows"
              << (out_path.empty() ? "" : " to " + out_path) << '\n';
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_dataset: " << e.what() << '\n';
    return 1;
  }
}
