// hmd_dataset — generate the labelled HPC dataset from the command line.
//
// Reproduces the thesis's data-collection stage at any scale and writes the
// result as CSV or ARFF (the formats its WEKA stage consumed).
//
// Usage:
//   hmd_dataset [--scale F] [--windows N] [--ops N] [--seed N]
//               [--binary] [--arff] [--out FILE]
#include <fstream>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "ml/arff.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hmd;

  double scale = 0.1;
  core::PipelineConfig cfg;
  cfg.collector.num_windows = 8;
  cfg.collector.ops_per_window = 3000;
  bool binary = false;
  bool arff = false;
  std::string out_path;

  ArgParser parser("hmd_dataset",
                   "Generate the labelled HPC dataset (CSV or ARFF).");
  parser.add_double("--scale", &scale, "F",
                    "database scale vs Table 1 (default 0.1; 1.0 = paper)");
  parser.add_size("--windows", &cfg.collector.num_windows, "N",
                  "sampling windows per sample (default 8)");
  parser.add_size("--ops", &cfg.collector.ops_per_window, "N",
                  "simulated ops per 10 ms window (default 3000)");
  parser.add_uint64("--seed", &cfg.seed, "N", "master seed (default 2018)");
  parser.add_flag("--binary", &binary,
                  "emit benign/malware labels instead of the 6 classes");
  parser.add_flag("--arff", &arff, "emit ARFF instead of CSV");
  parser.add_string("--out", &out_path, "FILE",
                    "output path (default: stdout)");
  parser.parse_or_exit(argc, argv);

  try {
    cfg.composition = workload::DatabaseComposition::scaled(scale);
    core::DatasetBuilder builder(cfg);
    // Per-sample simulation fans across the shared pool (HMD_JOBS jobs;
    // output is bit-identical to a serial build at any thread count).
    std::cerr << "collecting " << cfg.composition.total() << " samples x "
              << cfg.collector.num_windows << " windows ("
              << global_pool().size() << " jobs)...\n";
    std::size_t last_pct = 0;
    ml::Dataset data = builder.build_multiclass_dataset(
        [&last_pct](std::size_t done, std::size_t total) {
          const std::size_t pct = done * 100 / total;
          if (pct >= last_pct + 10) {
            std::cerr << "  " << pct << "%\n";
            last_pct = pct;
          }
        },
        &global_pool());
    if (binary) data = core::DatasetBuilder::to_binary(data);

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) throw Error("cannot open output file: " + out_path);
      out = &file;
    }
    if (arff)
      ml::write_arff(*out, data);
    else
      ml::write_dataset_csv(*out, data);
    std::cerr << "wrote " << data.num_instances() << " rows"
              << (out_path.empty() ? "" : " to " + out_path) << '\n';
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_dataset: " << e.what() << '\n';
    return 1;
  }
}
