// hmd_dataset — generate the labelled HPC dataset from the command line.
//
// Reproduces the thesis's data-collection stage at any scale and writes the
// result as CSV or ARFF (the formats its WEKA stage consumed).
//
// --evade generates the ADVERSARIAL variant (docs/adversarial.md): a
// clean dataset is built first and a surrogate detector trained on it;
// each malware family is then perturbed toward the benign footprint with
// the seeded evasion search (workload/evasion.hpp) and the dataset is
// rebuilt with the perturbations attached. Fixed seeds give a
// byte-identical adversarial dataset across runs.
//
// Usage:
//   hmd_dataset [--scale F] [--windows N] [--ops N] [--seed N]
//               [--binary] [--arff] [--out FILE]
//               [--evade] [--evade-scheme NAME] [--evade-seed N]
//               [--evade-iters N] [--metrics-out FILE] [--trace-out FILE]
#include <fstream>
#include <iostream>
#include <string>

#include "core/dataset_builder.hpp"
#include "ml/arff.hpp"
#include "ml/registry.hpp"
#include "util/cli.hpp"
#include "ml/kernels.hpp"
#include "util/cli_presets.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "workload/app_class.hpp"
#include "workload/evasion.hpp"

int main(int argc, char** argv) {
  using namespace hmd;

  double scale = 0.1;
  core::PipelineConfig cfg;
  cfg.collector.num_windows = 8;
  cfg.collector.ops_per_window = 3000;
  bool binary = false;
  bool arff = false;
  std::string out_path;
  bool evade = false;
  std::string evade_scheme = "MLR";
  workload::EvasionConfig evasion;
  std::string metrics_path, trace_path;
  std::string isa_name;

  ArgParser parser("hmd_dataset",
                   "Generate the labelled HPC dataset (CSV or ARFF).");
  parser.add_double("--scale", &scale, "F",
                    "database scale vs Table 1 (default 0.1; 1.0 = paper)");
  parser.add_size("--windows", &cfg.collector.num_windows, "N",
                  "sampling windows per sample (default 8)");
  parser.add_size("--ops", &cfg.collector.ops_per_window, "N",
                  "simulated ops per 10 ms window (default 3000)");
  cli::add_seed_flag(parser, &cfg.seed, "master");
  parser.add_flag("--binary", &binary,
                  "emit benign/malware labels instead of the 6 classes");
  parser.add_flag("--arff", &arff, "emit ARFF instead of CSV");
  parser.add_string("--out", &out_path, "FILE",
                    "output path (default: stdout)");
  parser.add_flag("--evade", &evade,
                  "perturb each malware family toward the benign footprint "
                  "(adversarial dataset)");
  parser.add_string("--evade-scheme", &evade_scheme, "NAME",
                    "surrogate scheme the evasion search attacks "
                    "(default MLR)");
  parser.add_uint64("--evade-seed", &evasion.seed, "N",
                    "evasion search seed (default 24301)");
  parser.add_size("--evade-iters", &evasion.iterations, "N",
                  "hill-climb iterations per family (default 48)");
  cli::add_isa_flag(parser, &isa_name);
  cli::add_observability_flags(parser, &metrics_path, &trace_path);
  parser.parse_or_exit(argc, argv);
  if (!isa_name.empty()) {
    try {
      ml::kernels::force_isa_by_name(isa_name);
    } catch (const hmd::Error& e) {
      std::cerr << "hmd_dataset: " << e.what() << '\n';
      return 2;
    }
  }
  if (!trace_path.empty()) tracer().set_enabled(true);

  try {
    cfg.composition = workload::DatabaseComposition::scaled(scale);
    const auto build = [&cfg](const char* what) {
      core::DatasetBuilder builder(cfg);
      // Per-sample simulation fans across the shared pool (HMD_JOBS jobs;
      // output is bit-identical to a serial build at any thread count).
      std::cerr << "collecting " << cfg.composition.total() << " " << what
                << " samples x " << cfg.collector.num_windows
                << " windows (" << global_pool().size() << " jobs)...\n";
      std::size_t last_pct = 0;
      return builder.build_multiclass_dataset(
          [&last_pct](std::size_t done, std::size_t total) {
            const std::size_t pct = done * 100 / total;
            if (pct >= last_pct + 10) {
              std::cerr << "  " << pct << "%\n";
              last_pct = pct;
            }
          },
          &global_pool());
    };

    ml::Dataset data = build(evade ? "clean" : "labelled");

    if (evade) {
      // Freeze a surrogate on the clean build, search a within-budget
      // perturbation per malware family, then rebuild with the resulting
      // plan attached — the adversarial counterpart of the same corpus.
      auto surrogate = ml::make_classifier(evade_scheme);
      surrogate->train(core::DatasetBuilder::to_binary(data));
      // Probes keep the per-window op count of the real collection (so
      // counter magnitudes match what the surrogate was trained on) but
      // use the short probe window shape to keep the search cheap.
      const std::size_t probe_windows = evasion.collector.num_windows;
      const std::size_t probe_warmup = evasion.collector.warmup_windows;
      evasion.collector = cfg.collector;
      evasion.collector.num_windows = probe_windows;
      evasion.collector.warmup_windows = probe_warmup;
      const std::uint64_t base_seed = evasion.seed;
      workload::EvasionPlan plan;
      for (workload::AppClass family : workload::malware_classes()) {
        evasion.seed =
            base_seed + static_cast<std::uint64_t>(family);
        const workload::EvasionResult r =
            workload::evade_family(family, *surrogate, evasion);
        std::cerr << "evading " << workload::app_class_name(family)
                  << ": P(malware) " << r.clean_score << " -> "
                  << r.evaded_score << " (" << r.accepted_steps
                  << " accepted steps, perturbation "
                  << hmd::format("%016llx",
                                 static_cast<unsigned long long>(
                                     r.perturbation.fingerprint()))
                  << ")\n";
        plan.set(family, r.perturbation);
      }
      cfg.evasion = plan;
      data = build("adversarial");
    }

    if (binary) data = core::DatasetBuilder::to_binary(data);

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) throw Error("cannot open output file: " + out_path);
      out = &file;
    }
    if (arff)
      ml::write_arff(*out, data);
    else
      ml::write_dataset_csv(*out, data);
    std::cerr << "wrote " << data.num_instances() << " rows"
              << (out_path.empty() ? "" : " to " + out_path) << '\n';

    if (!metrics_path.empty()) {
      std::ofstream mout(metrics_path);
      if (!mout) throw Error("cannot write " + metrics_path);
      metrics().write_json(mout);
    }
    if (!trace_path.empty()) {
      std::ofstream tout(trace_path);
      if (!tout) throw Error("cannot write " + trace_path);
      tracer().write_chrome_json(tout);
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_dataset: " << e.what() << '\n';
    return 1;
  }
}
