// hmd_serve — replay perf logs through the sharded streaming engine.
//
// Loads a deployment bundle (model + feature subset + alarm policy, from
// hmd_train --bundle) and serves one or more perf-stat-style logs (from
// hmdperf) as concurrent monitored streams: each window is projected onto
// the bundle's counter subset and ingested; shard workers score
// cross-stream batches and drive per-stream alarm state. Logs are
// assigned to streams round-robin, so --streams larger than the log count
// replays logs on several streams at once — a cheap way to exercise the
// multi-stream path with real artifacts.
//
// Usage:
//   hmd_serve --bundle FILE --log FILE [--log FILE ...]
//             [--streams N] [--shards N] [--ring N] [--drop-oldest]
//             [--metrics-out FILE] [--trace-out FILE]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/deployment.hpp"
#include "perf/perf_log.hpp"
#include "serve/stream_engine.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: hmd_serve --bundle FILE --log FILE [--log FILE ...]\n"
      "                 [--streams N] [--shards N] [--ring N]\n"
      "                 [--drop-oldest] [--metrics-out FILE]\n"
      "                 [--trace-out FILE]\n"
      "  --bundle FILE  deployment bundle (hmd_train --bundle)\n"
      "  --log FILE     perf log to replay (hmdperf); repeatable\n"
      "  --streams N    concurrent streams (default: one per log)\n"
      "  --shards N     scoring shards (default 2)\n"
      "  --ring N       per-stream ring capacity (default 256)\n"
      "  --drop-oldest  bounded-loss backpressure instead of blocking\n"
      "  --metrics-out FILE  write process metrics JSON (serve.* included)\n"
      "  --trace-out FILE    collect spans; write Chrome trace JSON\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path;
  std::vector<std::string> log_paths;
  std::size_t streams = 0;
  serve::ServeConfig config;
  config.num_shards = 2;
  std::string metrics_path, trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--bundle") bundle_path = next();
    else if (arg == "--log") log_paths.push_back(next());
    else if (arg == "--streams") streams = static_cast<std::size_t>(parse_int(next()));
    else if (arg == "--shards") config.num_shards = static_cast<std::size_t>(parse_int(next()));
    else if (arg == "--ring") config.ring_capacity = static_cast<std::size_t>(parse_int(next()));
    else if (arg == "--drop-oldest") config.backpressure = serve::ServeConfig::Backpressure::kDropOldest;
    else if (arg == "--metrics-out") metrics_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else usage();
  }
  if (bundle_path.empty() || log_paths.empty()) usage();
  if (streams == 0) streams = log_paths.size();
  if (!trace_path.empty()) tracer().set_enabled(true);

  try {
    std::ifstream bundle_in(bundle_path);
    if (!bundle_in) throw Error("cannot open bundle: " + bundle_path);
    const core::DeploymentBundle bundle = core::load_bundle(bundle_in);

    std::vector<perf::RunLog> logs;
    for (const std::string& path : log_paths) {
      std::ifstream in(path);
      if (!in) throw Error("cannot open log: " + path);
      logs.push_back(perf::read_perf_log(in));
    }

    // The engine scores model-width windows; project each full counter
    // vector onto the bundle's feature subset up front.
    const auto& features = bundle.features().indices;
    const std::size_t width = features.empty()
                                  ? serve::kMaxWindowWidth
                                  : features.size();
    std::vector<std::vector<std::vector<double>>> projected(logs.size());
    for (std::size_t l = 0; l < logs.size(); ++l) {
      for (const perf::HpcSample& sample : logs[l].samples) {
        std::vector<double> window;
        window.reserve(width);
        if (features.empty()) {
          window.assign(sample.counts.begin(), sample.counts.end());
        } else {
          for (std::size_t idx : features) {
            HMD_REQUIRE(idx < sample.counts.size(),
                        "hmd_serve: log window narrower than bundle "
                        "feature set");
            window.push_back(sample.counts[idx]);
          }
        }
        projected[l].push_back(std::move(window));
      }
    }

    config.window_size = width;
    config.policy = bundle.policy();
    config.record_verdicts = false;
    serve::StreamEngine engine(bundle.model(), config);

    std::vector<serve::StreamEngine::StreamHandle> handles;
    std::vector<std::size_t> source_log(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      handles.push_back(engine.register_stream(s));
      source_log[s] = s % logs.size();
    }

    const std::size_t feeders =
        std::min<std::size_t>(4, streams);
    TraceSpan replay("hmd_serve/replay");
    std::vector<std::thread> threads;
    for (std::size_t f = 0; f < feeders; ++f)
      threads.emplace_back([&, f] {
        // Feeder f owns streams s % feeders == f; window-by-window
        // round-robin keeps per-stream order (the determinism contract).
        bool more = true;
        for (std::size_t w = 0; more; ++w) {
          more = false;
          for (std::size_t s = f; s < streams; s += feeders) {
            const auto& wins = projected[source_log[s]];
            if (w >= wins.size()) continue;
            engine.ingest(handles[s], wins[w]);
            more = true;
          }
        }
      });
    for (auto& th : threads) th.join();
    engine.drain();
    const double seconds = replay.elapsed_seconds();
    engine.shutdown();

    std::printf("%-8s %-16s %-10s %8s %8s %8s %6s\n", "stream", "sample",
                "label", "windows", "flagged%", "dropped", "alarm");
    for (std::size_t s = 0; s < streams; ++s) {
      const perf::RunLog& log = logs[source_log[s]];
      const core::OnlineDetector& mon = engine.monitor(handles[s]);
      const std::size_t alarm = mon.alarm_window();
      char alarm_buf[16];
      if (alarm == core::OnlineDetector::kNoAlarm)
        std::snprintf(alarm_buf, sizeof alarm_buf, "-");
      else
        std::snprintf(alarm_buf, sizeof alarm_buf, "@%zu", alarm);
      std::printf("%-8zu %-16s %-10s %8zu %8.1f %8llu %6s\n", s,
                  log.sample_id.c_str(), log.label.c_str(),
                  mon.windows_seen(), 100.0 * mon.flag_rate(),
                  static_cast<unsigned long long>(
                      engine.dropped(handles[s])),
                  alarm_buf);
    }
    std::printf("served %llu windows on %zu streams / %zu shards in "
                "%.3f s (%.0f windows/s)\n",
                static_cast<unsigned long long>(engine.total_ingested()),
                streams, engine.num_shards(), seconds,
                static_cast<double>(engine.total_ingested()) / seconds);

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      metrics().write_json(out);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      tracer().write_chrome_json(out);
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_serve: " << e.what() << '\n';
    return 1;
  }
}
