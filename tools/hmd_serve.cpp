// hmd_serve — replay perf logs through the sharded streaming engine.
//
// Loads a deployment bundle (model + feature subset + alarm policy, from
// hmd_train --bundle) and serves one or more perf-stat-style logs (from
// hmdperf) as concurrent monitored streams: each window is projected onto
// the bundle's counter subset and ingested; shard workers score
// cross-stream batches and drive per-stream alarm state. Logs are
// assigned to streams round-robin, so --streams larger than the log count
// replays logs on several streams at once — a cheap way to exercise the
// multi-stream path with real artifacts.
//
// Resilience: the bundle's models are published through a ModelHub (a v2
// bundle's fallback becomes the degraded-mode secondary), --checkpoint
// writes an engine snapshot after the replay drains, and --restore resumes
// stream state from a previous checkpoint (see docs/resilience.md).
//
// Drift (docs/drift.md): --drift arms the per-shard Page–Hinkley + KS
// detectors over the score stream; --retrain additionally keeps a benign
// window log and rebuilds a one-class model when a detector trips,
// hot-swapping it through the hub. --then-log replays a second traffic
// phase after the first drains — point it at a shifted workload to watch
// the trip → retrain → swap loop fire end to end.
//
// Ensemble policies (docs/adversarial.md): --policy majority|stochastic
// scores each window through a ScoringPolicy instead of the primary
// alone; each --member FILE adds a bundle's model to the ensemble
// (member versions are numbered from 1001 so verdict version stamps
// cannot collide with live hub epochs), and --policy-seed seeds the
// stochastic per-window selection.
//
// Usage:
//   hmd_serve --bundle FILE --log FILE [--log FILE ...]
//             [--then-log FILE ...] [--streams N] [--shards N] [--ring N]
//             [--drop-oldest] [--drift] [--retrain] [--retrain-scheme S]
//             [--drift-lambda X] [--policy NAME] [--member FILE ...]
//             [--policy-seed N] [--checkpoint FILE] [--restore FILE]
//             [--metrics-out FILE] [--trace-out FILE]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deployment.hpp"
#include "ml/kernels.hpp"
#include "perf/perf_log.hpp"
#include "serve/ensemble_policy.hpp"
#include "serve/resilience.hpp"
#include "serve/stream_engine.hpp"
#include "util/cli.hpp"
#include "util/cli_presets.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace {

using namespace hmd;

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path;
  std::vector<std::string> log_paths, then_log_paths;
  std::size_t streams = 0;
  serve::ServeConfig config;
  config.num_shards = 2;
  bool drop_oldest = false, drift = false, retrain = false;
  std::string retrain_scheme;
  std::string policy_name;
  std::vector<std::string> member_paths;
  std::string checkpoint_path, restore_path, metrics_path, trace_path;
  std::string isa_name, tier_name;

  ArgParser parser("hmd_serve",
                   "Replay perf logs through the sharded streaming engine.");
  cli::add_bundle_in_flag(parser, &bundle_path);
  parser.add_strings("--log", &log_paths, "FILE",
                     "perf log to replay (hmdperf); repeatable");
  parser.add_strings("--then-log", &then_log_paths, "FILE",
                     "second traffic phase after --log drains (drift "
                     "injection); repeatable");
  parser.add_size("--streams", &streams, "N",
                  "concurrent streams (default: one per log)");
  parser.add_size("--shards", &config.num_shards, "N",
                  "scoring shards (default 2)");
  parser.add_size("--ring", &config.ring_capacity, "N",
                  "per-stream ring capacity (default 256)");
  parser.add_flag("--drop-oldest", &drop_oldest,
                  "bounded-loss backpressure instead of blocking");
  parser.add_flag("--drift", &drift,
                  "watch the score stream with per-shard drift detectors");
  parser.add_flag("--retrain", &retrain,
                  "auto-retrain a one-class model on drift (implies "
                  "--drift)");
  parser.add_string("--retrain-scheme", &retrain_scheme, "NAME",
                    "one-class scheme the retrain rebuilds (default "
                    "MahalanobisThreshold)");
  parser.add_double("--drift-lambda", &config.drift.page_hinkley.lambda,
                    "X", "Page-Hinkley trip threshold (default 25)");
  parser.add_string("--policy", &policy_name, "NAME",
                    "scoring policy: single, majority or stochastic "
                    "(default single)");
  parser.add_strings("--member", &member_paths, "FILE",
                     "ensemble member bundle (same feature subset as "
                     "--bundle); repeatable");
  parser.add_uint64("--policy-seed", &config.ensemble.seed, "N",
                    "stochastic member-selection seed (default 0)");
  parser.add_string("--checkpoint", &checkpoint_path, "FILE",
                    "write an engine snapshot after the replay drains");
  parser.add_string("--restore", &restore_path, "FILE",
                    "resume stream state from a snapshot (--checkpoint)");
  cli::add_tier_flag(parser, &tier_name);
  cli::add_isa_flag(parser, &isa_name);
  cli::add_observability_flags(parser, &metrics_path, &trace_path);
  parser.parse_or_exit(argc, argv);
  if (!isa_name.empty()) {
    try {
      ml::kernels::force_isa_by_name(isa_name);
    } catch (const hmd::Error& e) {
      std::cerr << "hmd_serve: " << e.what() << '\n';
      return 2;
    }
  }
  if (!tier_name.empty()) {
    const auto tier = serve::tier_from_name(tier_name);
    if (!tier.has_value()) {
      std::cerr << "hmd_serve: --tier: unknown tier '" << tier_name
                << "' (known: float int8 q16)\n";
      return 2;
    }
    config.tier = *tier;
  }
  if (drop_oldest)
    config.backpressure = serve::ServeConfig::Backpressure::kDropOldest;
  config.drift.enabled = drift || retrain;
  config.drift.retrain = retrain;
  if (!retrain_scheme.empty()) config.drift.retrain_scheme = retrain_scheme;
  if (bundle_path.empty() || log_paths.empty()) {
    std::cerr << "hmd_serve: --bundle and at least one --log are required\n\n"
              << parser.help();
    return 2;
  }
  if (streams == 0) streams = log_paths.size();
  if (!policy_name.empty()) {
    Result<serve::EnsembleConfig::Kind> kind =
        serve::ensemble_kind_from_name(policy_name);
    if (!kind) {
      std::cerr << "hmd_serve: " << kind.error().to_string() << '\n';
      return 2;
    }
    config.ensemble.kind = kind.value();
  }
  if (!trace_path.empty()) tracer().set_enabled(true);

  try {
    std::ifstream bundle_in(bundle_path);
    if (!bundle_in) throw Error("cannot open bundle: " + bundle_path);
    // Result-based load: a corrupt bundle reports its full error chain
    // (and would be rejected the same way by a live hot-swap).
    Result<core::DeploymentBundle> loaded = core::try_load_bundle(bundle_in);
    if (!loaded) {
      std::cerr << "hmd_serve: " << loaded.error().to_string() << '\n';
      return 1;
    }
    const core::DeploymentBundle bundle = std::move(loaded).value();

    // Ensemble members are frozen models loaded from their own bundles.
    // Each must consume the same feature subset as the primary bundle —
    // the engine projects every window onto that subset once. Versions
    // from 1001 keep member stamps distinct from hub epochs (1, 2, ...).
    std::uint64_t member_version = 1001;
    for (const std::string& path : member_paths) {
      std::ifstream member_in(path);
      if (!member_in) throw Error("cannot open member bundle: " + path);
      Result<core::DeploymentBundle> m = core::try_load_bundle(member_in);
      if (!m) {
        std::cerr << "hmd_serve: " << path << ": " << m.error().to_string()
                  << '\n';
        return 1;
      }
      auto owned = std::make_shared<const core::DeploymentBundle>(
          std::move(m).value());
      serve::PolicyMember member;
      member.name = owned->model().name();
      // Alias the bundle so the model outlives the engine's policy.
      member.model =
          std::shared_ptr<const ml::Classifier>(owned, &owned->model());
      member.version = member_version++;
      config.ensemble.members.push_back(std::move(member));
    }

    if (!restore_path.empty()) {
      std::ifstream snap_in(restore_path);
      if (!snap_in) throw Error("cannot open snapshot: " + restore_path);
      Result<serve::EngineSnapshot> snap =
          serve::EngineSnapshot::read(snap_in);
      if (!snap) {
        std::cerr << "hmd_serve: " << snap.error().to_string() << '\n';
        return 1;
      }
      config.restore_from = std::make_shared<const serve::EngineSnapshot>(
          std::move(snap).value());
      std::cerr << "restoring " << config.restore_from->streams.size()
                << " stream(s) from " << restore_path << '\n';
    }

    const auto read_logs = [](const std::vector<std::string>& paths) {
      std::vector<perf::RunLog> logs;
      for (const std::string& path : paths) {
        std::ifstream in(path);
        if (!in) throw Error("cannot open log: " + path);
        logs.push_back(perf::read_perf_log(in));
      }
      return logs;
    };
    std::vector<perf::RunLog> logs = read_logs(log_paths);
    std::vector<perf::RunLog> then_logs = read_logs(then_log_paths);

    // The engine scores model-width windows; project each full counter
    // vector onto the bundle's feature subset up front.
    const auto& features = bundle.features().indices;
    const std::size_t width = features.empty()
                                  ? serve::kMaxWindowWidth
                                  : features.size();
    const auto project_logs = [&](const std::vector<perf::RunLog>& src) {
      std::vector<std::vector<std::vector<double>>> projected(src.size());
      for (std::size_t l = 0; l < src.size(); ++l) {
        for (const perf::HpcSample& sample : src[l].samples) {
          std::vector<double> window;
          window.reserve(width);
          if (features.empty()) {
            window.assign(sample.counts.begin(), sample.counts.end());
          } else {
            for (std::size_t idx : features) {
              HMD_REQUIRE(idx < sample.counts.size(),
                          "hmd_serve: log window narrower than bundle "
                          "feature set");
              window.push_back(sample.counts[idx]);
            }
          }
          projected[l].push_back(std::move(window));
        }
      }
      return projected;
    };
    const auto projected = project_logs(logs);
    const auto then_projected = project_logs(then_logs);

    config.window_size = width;
    config.policy = bundle.policy();
    config.record_verdicts = false;
    // Publish through a ModelHub so a v2 bundle's fallback is armed for
    // degraded mode (and the epoch/version plumbing is exercised).
    auto hub = std::make_shared<serve::ModelHub>();
    hub->publish_unowned(bundle.model(), bundle.fallback_model());
    serve::StreamEngine engine(hub, config);
    if (bundle.fallback_model() != nullptr)
      std::cerr << "fallback model armed: " << bundle.fallback_model()->name()
                << '\n';
    if (const serve::ScoringPolicy* policy = engine.scoring_policy())
      std::cerr << "scoring policy: " << serve::to_string(config.ensemble.kind)
                << " (" << policy->total_members() << " members, seed "
                << config.ensemble.seed << ")\n";

    std::vector<serve::StreamEngine::StreamHandle> handles;
    std::vector<std::size_t> source_log(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      handles.push_back(engine.register_stream(s));
      source_log[s] = s % logs.size();
    }

    const std::size_t feeders =
        std::min<std::size_t>(4, streams);
    const auto feed_phase =
        [&](const std::vector<std::vector<std::vector<double>>>& phase) {
          std::vector<std::thread> threads;
          for (std::size_t f = 0; f < feeders; ++f)
            threads.emplace_back([&, f] {
              // Feeder f owns streams s % feeders == f; window-by-window
              // round-robin keeps per-stream order (the determinism
              // contract).
              bool more = true;
              for (std::size_t w = 0; more; ++w) {
                more = false;
                for (std::size_t s = f; s < streams; s += feeders) {
                  const auto& wins = phase[s % phase.size()];
                  if (w >= wins.size()) continue;
                  engine.ingest(handles[s], wins[w]);
                  more = true;
                }
              }
            });
          for (auto& th : threads) th.join();
          engine.drain();
        };

    TraceSpan replay("hmd_serve/replay");
    feed_phase(projected);
    std::uint64_t swap_version = 0;
    if (config.drift.enabled) {
      // Pump at the phase boundary: a trip during phase 1 retrains here,
      // and the swap is visible to all of phase 2's batches.
      if (retrain) {
        const std::uint64_t v = engine.await_retrain();
        if (v != 0) swap_version = v;
      } else {
        engine.drift_pump();
      }
    }
    if (!then_projected.empty()) {
      feed_phase(then_projected);
      if (retrain) {
        const std::uint64_t v = engine.await_retrain();
        if (v != 0) swap_version = v;
      } else if (config.drift.enabled) {
        engine.drift_pump();
      }
    }
    const double seconds = replay.elapsed_seconds();

    if (!checkpoint_path.empty()) {
      std::ofstream out(checkpoint_path);
      if (!out) throw Error("cannot write " + checkpoint_path);
      engine.checkpoint(out);
      std::cerr << "wrote checkpoint (" << engine.num_streams()
                << " streams) to " << checkpoint_path << '\n';
    }
    engine.shutdown();

    std::printf("%-8s %-16s %-10s %8s %8s %9s %8s %6s\n", "stream",
                "sample", "label", "windows", "flagged%", "benign-mu",
                "dropped", "alarm");
    for (std::size_t s = 0; s < streams; ++s) {
      const perf::RunLog& log = logs[source_log[s]];
      const core::OnlineDetector& mon = engine.monitor(handles[s]);
      const std::size_t alarm = mon.alarm_window();
      char alarm_buf[16];
      if (alarm == core::OnlineDetector::kNoAlarm)
        std::snprintf(alarm_buf, sizeof alarm_buf, "-");
      else
        std::snprintf(alarm_buf, sizeof alarm_buf, "@%zu", alarm);
      std::printf("%-8zu %-16s %-10s %8zu %8.1f %9.3f %8llu %6s\n", s,
                  log.sample_id.c_str(), log.label.c_str(),
                  mon.windows_seen(), 100.0 * mon.flag_rate(),
                  mon.benign_score_stats().mean(),
                  static_cast<unsigned long long>(
                      engine.dropped(handles[s])),
                  alarm_buf);
    }
    std::printf("served %llu windows on %zu streams / %zu shards in "
                "%.3f s (%.0f windows/s)\n",
                static_cast<unsigned long long>(engine.total_ingested()),
                streams, engine.num_shards(), seconds,
                static_cast<double>(engine.total_ingested()) / seconds);
    if (config.drift.enabled) {
      const auto events = engine.drift_events();
      std::size_t ph_trips = 0, ks_trips = 0;
      for (const auto& e : events)
        (e.detector == serve::DriftEvent::Detector::kPageHinkley
             ? ph_trips
             : ks_trips)++;
      std::printf("drift: %zu trip(s) (%zu page-hinkley, %zu ks)",
                  events.size(), ph_trips, ks_trips);
      if (retrain) {
        if (swap_version != 0)
          std::printf(", retrained %s swapped in as epoch v%llu",
                      config.drift.retrain_scheme.c_str(),
                      static_cast<unsigned long long>(swap_version));
        else
          std::printf(", no model swap");
        if (const auto err = engine.last_retrain_error())
          std::printf(" (last retrain failed: %s)",
                      err->to_string().c_str());
      }
      std::printf("\n");
    }

    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      metrics().write_json(out);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      tracer().write_chrome_json(out);
    }
    return 0;
  } catch (const hmd::Error& e) {
    std::cerr << "hmd_serve: " << e.what() << '\n';
    return 1;
  }
}
