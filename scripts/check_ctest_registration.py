#!/usr/bin/env python3
"""Fail if any built tests/ binary is not registered with ctest.

gtest_discover_tests() registers each TEST as its own ctest entry, but a
test target that is added with plain add_executable (or whose discovery
silently failed, e.g. a DISCOVERY_TIMEOUT) builds fine while contributing
zero ctest entries — `ctest` stays green and the suite never runs. This
audit closes that hole: every executable under <build>/tests must back at
least one test in `ctest --show-only=json-v1`.

Usage: check_ctest_registration.py <build-dir>
"""

import json
import os
import subprocess
import sys


def registered_binaries(build_dir: str) -> set:
    """Basenames of every executable ctest would invoke."""
    out = subprocess.run(
        ["ctest", "--show-only=json-v1"],
        cwd=build_dir,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    model = json.loads(out)
    binaries = set()
    for test in model.get("tests", []):
        command = test.get("command")
        if command:
            binaries.add(os.path.basename(command[0]))
    return binaries


def built_test_binaries(build_dir: str) -> list:
    """Basenames of every test executable the build produced."""
    tests_dir = os.path.join(build_dir, "tests")
    if not os.path.isdir(tests_dir):
        sys.exit(f"error: {tests_dir} does not exist (build first)")
    found = []
    for name in sorted(os.listdir(tests_dir)):
        path = os.path.join(tests_dir, name)
        if (
            name.startswith("test_")
            and os.path.isfile(path)
            and os.access(path, os.X_OK)
        ):
            found.append(name)
    if not found:
        sys.exit(f"error: no test_* executables under {tests_dir}")
    return found


# Binaries that must exist AND be registered — deleting one of these from
# tests/CMakeLists.txt silently shrinks the suite without failing a build,
# so the audit pins the suites that gate numeric exactness contracts.
REQUIRED_BINARIES = {
    "test_ml_kernels_dispatch",  # SIMD clones bit-identical per ISA
    "test_ml_knn_index",         # KD-tree verdicts == brute force
    "test_ml_quantized",         # int8/q16 serving tier
    "test_ml_serialization",
    "test_serve_engine",
}


def main() -> int:
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <build-dir>")
    build_dir = sys.argv[1]

    registered = registered_binaries(build_dir)
    built = built_test_binaries(build_dir)
    unregistered = [name for name in built if name not in registered]
    missing = sorted(REQUIRED_BINARIES - set(built))
    if missing:
        print(
            "error: required test binaries were never built "
            "(removed from tests/CMakeLists.txt?):",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1

    print(
        f"ctest registration audit: {len(built)} test binaries, "
        f"{len(registered)} distinct registered executables"
    )
    if unregistered:
        print(
            "error: built test binaries with no ctest registration "
            "(missing hmd_add_test / failed discovery?):",
            file=sys.stderr,
        )
        for name in unregistered:
            print(f"  {name}", file=sys.stderr)
        return 1
    print("ok: every tests/ binary is registered with ctest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
